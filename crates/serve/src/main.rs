//! `utpr-serve`: stand up a group-commit KV server on a loopback port
//! and serve until killed.
//!
//! ```text
//! utpr-serve [--shards N] [--window N] [--pool BYTES] [--adr] [--seed S]
//! ```
//!
//! Prints `LISTEN <addr>` once the acceptor is live; drive it with the
//! `utpr-serve` crate's [`utpr_serve::Client`] or the load harness.

use utpr_heap::FlushModel;
use utpr_serve::{ServeConfig, Server};

fn parse_u64(args: &mut std::env::Args, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} wants a number"))
}

fn main() {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shards" => cfg.shards = parse_u64(&mut args, "--shards") as u32,
            "--window" => cfg.batch_window = parse_u64(&mut args, "--window") as usize,
            "--pool" => cfg.pool_bytes = parse_u64(&mut args, "--pool"),
            "--seed" => cfg.seed = parse_u64(&mut args, "--seed"),
            "--adr" => cfg.flush_model = FlushModel::Adr,
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: utpr-serve [--shards N] [--window N] \
                     [--pool BYTES] [--adr] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }
    let handle = Server::launch(&cfg).unwrap_or_else(|e| {
        eprintln!("launch failed: {e}");
        std::process::exit(1);
    });
    println!("LISTEN {}", handle.addr());
    println!(
        "shards={} batch_window={} pool={}B model={:?}",
        cfg.shards, cfg.batch_window, cfg.pool_bytes, cfg.flush_model
    );
    let (counters, crashed) = handle.join();
    println!(
        "EXIT crashed={crashed} ops={} fences={} group_commits={}",
        counters.ops(),
        counters.pool_fences,
        counters.pool_group_commits
    );
    std::process::exit(i32::from(crashed));
}
