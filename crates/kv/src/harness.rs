//! Full benchmark harness: builds the machine + environment, loads the
//! workload as warm-up, then measures the operation stream — the procedure
//! behind the paper's Figs. 11–15 and Table V.

use crate::store::KvStore;
use crate::workload::{generate, WorkloadSpec};
use utpr_ds::{AvlTree, BPlusTree, HashMapIndex, Index, IndexCore, LinkedList, RbTree, ScapegoatTree, SplayTree};
use utpr_heap::{AddressSpace, HeapError, TransStats};
use utpr_ptr::{site, ExecEnv, Mode, PtrStats};
use utpr_sim::{Machine, RangeEntry, SimConfig, SimStats};

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

/// The six benchmarks of paper Table III.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Benchmark {
    /// Doubly-linked list traversal.
    Ll,
    /// Chained hash map.
    Hash,
    /// Red-black tree.
    Rb,
    /// Splay tree.
    Splay,
    /// AVL tree.
    Avl,
    /// Scapegoat tree.
    Sg,
    /// B+ tree (extension beyond the paper's Table III).
    Bplus,
}

impl Benchmark {
    /// The paper's six benchmarks, in Table III order.
    pub const ALL: [Benchmark; 6] =
        [Benchmark::Ll, Benchmark::Hash, Benchmark::Rb, Benchmark::Splay, Benchmark::Avl, Benchmark::Sg];

    /// The paper's six plus the B+ tree extension.
    pub const ALL_EXTENDED: [Benchmark; 7] = [
        Benchmark::Ll,
        Benchmark::Hash,
        Benchmark::Rb,
        Benchmark::Splay,
        Benchmark::Avl,
        Benchmark::Sg,
        Benchmark::Bplus,
    ];

    /// Table III name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ll => "LL",
            Benchmark::Hash => "Hash",
            Benchmark::Rb => "RB",
            Benchmark::Splay => "Splay",
            Benchmark::Avl => "AVL",
            Benchmark::Sg => "SG",
            Benchmark::Bplus => "B+",
        }
    }
}

/// Everything one measured run produces.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// Which build variant.
    pub mode: Mode,
    /// Measured cycles (post-warm-up).
    pub cycles: f64,
    /// Machine counters.
    pub sim: SimStats,
    /// Runtime pointer counters (Table V material).
    pub ptr: PtrStats,
    /// Functional checksum, for cross-mode soundness assertion.
    pub checksum: u64,
    /// Bytes materialized by the simulated address space at the end of the
    /// run (DRAM + pool images) — the memory-footprint axis of the report.
    pub resident_bytes: u64,
    /// Software-lookaside (sPOLB/sVALB) hit/miss counters for the run,
    /// including warm-up (host-side cache telemetry, not modelled cycles).
    pub trans: TransStats,
}

fn fresh_env(mode: Mode, sim: SimConfig, pool_mb: u64) -> Result<ExecEnv<Machine>> {
    let mut space = AddressSpace::new(0xBEEF);
    let pool = space.create_pool("bench", pool_mb << 20)?;
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(sim);
    machine.set_pool_ranges(ranges);
    Ok(ExecEnv::builder(space).mode(mode).pool(pool).sink(machine).build())
}

fn finish(benchmark: Benchmark, mode: Mode, env: ExecEnv<Machine>, checksum: u64) -> BenchResult {
    let (space, ptr, machine) = env.into_parts();
    BenchResult {
        benchmark,
        mode,
        cycles: machine.cycles(),
        sim: machine.stats(),
        ptr,
        checksum,
        resident_bytes: space.resident_bytes(),
        trans: space.trans_stats(),
    }
}

/// Runs one of the five map benchmarks under the KV harness.
///
/// # Errors
///
/// Propagates allocation/translation failures.
pub fn run_index_bench<I: Index>(
    benchmark: Benchmark,
    mode: Mode,
    sim: SimConfig,
    spec: &WorkloadSpec,
) -> Result<BenchResult> {
    let mut env = fresh_env(mode, sim, 256)?;
    let w = generate(spec);
    let mut store: KvStore<I> = KvStore::create(&mut env)?;
    store.load(&mut env, &w)?;
    // Warm-up done: measure only the operation stream, with warm caches.
    env.sink_mut().reset_measurement();
    env.reset_stats();
    let summary = store.run(&mut env, &w)?;
    Ok(finish(benchmark, mode, env, summary.checksum))
}

/// Runs the LL benchmark: build `nodes` nodes, then iterate the list
/// `passes` times accumulating the 16-byte values (paper §VII-A).
///
/// # Errors
///
/// Propagates allocation/translation failures.
pub fn run_ll_bench(mode: Mode, sim: SimConfig, nodes: u64, passes: u32) -> Result<BenchResult> {
    let mut env = fresh_env(mode, sim, 256)?;
    let mut list = LinkedList::create(&mut env)?;
    let mut rng = crate::rng::Rng::new(7);
    for _ in 0..nodes {
        list.push_back(&mut env, rng.next_u64(), rng.next_u64())?;
    }
    env.sink_mut().reset_measurement();
    env.reset_stats();
    let mut checksum = 0u64;
    for _ in 0..passes {
        checksum = checksum.wrapping_add(list.iter_sum(&mut env)?);
    }
    Ok(finish(Benchmark::Ll, mode, env, checksum))
}

/// Dispatches a benchmark by name.
///
/// For [`Benchmark::Ll`] the workload spec's `records` field is the node
/// count and `operations / records` the number of passes (min 1).
///
/// # Errors
///
/// Propagates allocation/translation failures.
pub fn run_benchmark(
    benchmark: Benchmark,
    mode: Mode,
    sim: SimConfig,
    spec: &WorkloadSpec,
) -> Result<BenchResult> {
    match benchmark {
        Benchmark::Ll => {
            let passes = (spec.operations / spec.records.max(1)).max(1) as u32;
            run_ll_bench(mode, sim, spec.records, passes)
        }
        Benchmark::Hash => run_index_bench::<HashMapIndex>(benchmark, mode, sim, spec),
        Benchmark::Rb => run_index_bench::<RbTree>(benchmark, mode, sim, spec),
        Benchmark::Splay => run_index_bench::<SplayTree>(benchmark, mode, sim, spec),
        Benchmark::Avl => run_index_bench::<AvlTree>(benchmark, mode, sim, spec),
        Benchmark::Sg => run_index_bench::<ScapegoatTree>(benchmark, mode, sim, spec),
        Benchmark::Bplus => run_index_bench::<BPlusTree>(benchmark, mode, sim, spec),
    }
}

/// Checks that every result of one benchmark computed the same answer (the
/// soundness criterion of §VII-B).
///
/// # Errors
///
/// Returns [`HeapError::ModeDivergence`] listing each mode's checksum when
/// they disagree — an `Err`, not a panic, so a divergence detected inside a
/// parallel worker is reportable instead of tearing the pool down.
pub fn verify_mode_agreement(results: &[BenchResult]) -> Result<()> {
    let Some(first) = results.first() else { return Ok(()) };
    if results.iter().all(|r| r.checksum == first.checksum) {
        return Ok(());
    }
    Err(HeapError::ModeDivergence {
        benchmark: first.benchmark.name(),
        details: results
            .iter()
            .map(|r| format!("{}={:#x}", r.mode.label(), r.checksum))
            .collect::<Vec<_>>()
            .join(", "),
    })
}

/// Convenience: runs one benchmark in all four modes and checks that every
/// mode computed the same answer (the soundness criterion of §VII-B).
///
/// # Errors
///
/// Propagates failures from any run; returns
/// [`HeapError::ModeDivergence`] when the modes' checksums disagree.
pub fn run_all_modes(
    benchmark: Benchmark,
    sim: SimConfig,
    spec: &WorkloadSpec,
) -> Result<Vec<BenchResult>> {
    let mut results = Vec::with_capacity(4);
    for mode in Mode::ALL {
        results.push(run_benchmark(benchmark, mode, sim, spec)?);
    }
    verify_mode_agreement(&results)?;
    Ok(results)
}

/// Builds a persistent KV store, crashes, reopens it, and re-runs reads —
/// the end-to-end recoverability demonstration used by examples and tests.
///
/// # Errors
///
/// Propagates failures.
pub fn crash_and_recover_demo(spec: &WorkloadSpec) -> Result<(u64, u64)> {
    let mut env = fresh_env(Mode::Hw, SimConfig::table_iv(), 256)?;
    let w = generate(spec);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env)?;
    store.load(&mut env, &w)?;
    let before = store.len(&mut env)?;
    env.set_root(site!("harness.save-root", StackLocal), store.index().descriptor())?;

    env.space_mut().restart();
    env.space_mut().open_pool("bench")?;
    let desc = env.root(site!("harness.load-root", KnownReturn))?;
    let mut reopened: KvStore<RbTree> = KvStore::open(desc);
    let after = reopened.len(&mut env)?;
    for k in &w.load_keys {
        assert_eq!(reopened.get(&mut env, *k)?, Some(k ^ 0x5a5a_5a5a_5a5a_5a5a));
    }
    Ok((before, after))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec { records: 300, operations: 1500, read_fraction: 0.95, seed: 4 }
    }

    #[test]
    fn all_modes_agree_for_every_benchmark() {
        for b in Benchmark::ALL {
            let results = run_all_modes(b, SimConfig::table_iv(), &tiny_spec()).unwrap();
            assert_eq!(results.len(), 4);
        }
    }

    #[test]
    fn volatile_is_fastest_hw_close_sw_slowest_on_trees() {
        let results = run_all_modes(Benchmark::Rb, SimConfig::table_iv(), &tiny_spec()).unwrap();
        let by_mode = |m: Mode| results.iter().find(|r| r.mode == m).unwrap().cycles;
        let vol = by_mode(Mode::Volatile);
        let hw = by_mode(Mode::Hw);
        let sw = by_mode(Mode::Sw);
        let explicit = by_mode(Mode::Explicit);
        assert!(hw >= vol, "hw {hw} vs volatile {vol}");
        assert!(sw > hw, "sw {sw} vs hw {hw}");
        assert!(explicit > hw, "explicit {explicit} vs hw {hw}");
    }

    #[test]
    fn hw_uses_fewer_translations_than_explicit() {
        let results = run_all_modes(Benchmark::Avl, SimConfig::table_iv(), &tiny_spec()).unwrap();
        let hw = results.iter().find(|r| r.mode == Mode::Hw).unwrap();
        let ex = results.iter().find(|r| r.mode == Mode::Explicit).unwrap();
        assert!(
            ex.sim.polb_accesses > hw.sim.polb_accesses,
            "explicit {} vs hw {}",
            ex.sim.polb_accesses,
            hw.sim.polb_accesses
        );
    }

    #[test]
    fn sw_executes_dynamic_checks_hw_does_not() {
        let results = run_all_modes(Benchmark::Hash, SimConfig::table_iv(), &tiny_spec()).unwrap();
        let sw = results.iter().find(|r| r.mode == Mode::Sw).unwrap();
        let hw = results.iter().find(|r| r.mode == Mode::Hw).unwrap();
        assert!(sw.ptr.dynamic_checks > 0);
        assert_eq!(hw.ptr.dynamic_checks, 0);
    }

    #[test]
    fn ll_bench_runs_and_checksums_match_across_modes() {
        let mut sums = Vec::new();
        for mode in Mode::ALL {
            let r = run_ll_bench(mode, SimConfig::table_iv(), 500, 3).unwrap();
            sums.push(r.checksum);
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn crash_recovery_demo() {
        let (before, after) = crash_and_recover_demo(&tiny_spec()).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn divergent_checksums_are_an_error_not_a_panic() {
        let mut results =
            run_all_modes(Benchmark::Hash, SimConfig::table_iv(), &tiny_spec()).unwrap();
        assert!(verify_mode_agreement(&results).is_ok());
        results[2].checksum ^= 1;
        match verify_mode_agreement(&results) {
            Err(HeapError::ModeDivergence { benchmark, details }) => {
                assert_eq!(benchmark, "Hash");
                assert!(details.contains("sw="), "{details}");
            }
            other => panic!("expected ModeDivergence, got {other:?}"),
        }
        assert!(verify_mode_agreement(&[]).is_ok());
    }
}
