//! Multicore YCSB harness and seeded-schedule concurrent crash sweeps.
//!
//! Two drivers share one layout — a [`utpr_heap::SharedPool`] split into
//! per-thread partitions, each with its own slab, store, and undo-log
//! slot — but exercise it in opposite regimes:
//!
//! * [`run_mt_ycsb`] spawns **real OS threads**. Each worker owns a
//!   private [`AddressSpace`] shard and a private cycle-level
//!   [`Machine`] (one simulated core), adopts the shared pool, binds its
//!   slab, and runs the YCSB-A load + operation phases over its
//!   partitions. Throughput is modelled as total operations over the
//!   *makespan* — the slowest core's cycle count — which is how the
//!   harness reports scaling on any host, even a single-core one.
//!   Because every partition's allocations come from its own slab cursor
//!   and values never depend on layout, the combined checksum is
//!   bit-identical for a given `seed` across *all* thread counts.
//! * [`mt_crash_sweep`] drives N **logical** threads serially in a
//!   [`utpr_qc::sched::schedule`] interleaving, so an armed crash
//!   boundary ([`FaultPlan::crash_at`]) lands at a reproducible point in
//!   a genuinely interleaved multi-thread history. Recovery adopts the
//!   crashed image in a fresh space and rolls back **every** thread's
//!   undo-log slot ([`UndoLog::recover`] walks the whole slot
//!   directory); the faultsweep oracle battery then runs per thread.
//!   Any failure replays from `(seed, crash point)` alone — the same
//!   `UTPR_QC_SEED` contract as the property runner.
//!
//! Shared pools are eADR-only, so the sweeps here are clean-crash sweeps:
//! the pool-wide gate counts durable writes across all threads like one
//! machine-wide power failure (torn-write sweeps stay single-threaded in
//! [`crate::faultsweep`]).

use crate::faultsweep::SweepFailure;
use crate::store::{KvStore, RunSummary};
use crate::ycsb::{generate_preset, Preset};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use utpr_ds::{IndexCore, RbTree};
use utpr_heap::{
    select_points, AddressSpace, FaultPlan, HeapError, SharedPool, SlabId, TransStats, UndoLog,
};
use utpr_ptr::{site, ExecEnv, Mode, NullSink, PtrStats};
use utpr_qc::sched::{schedule, steps, Policy};
use utpr_sim::{Machine, RangeEntry, SimConfig};

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

/// The pool is split into this many partitions regardless of thread
/// count, so every thread count executes the *same* work set and the
/// combined checksum is comparable across 1/2/4/8/16 threads.
pub const PARTITIONS: u64 = 16;

const POOL_BYTES: u64 = 64 << 20;

/// splitmix64-style finalizer for deriving per-thread / per-op values.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---- multi-threaded YCSB ---------------------------------------------------

/// Shape of one multi-threaded YCSB-A run.
#[derive(Clone, Copy, Debug)]
pub struct MtSpec {
    /// Records loaded across all partitions.
    pub records: u64,
    /// Operations executed across all partitions.
    pub operations: u64,
    /// Worker threads; must divide [`PARTITIONS`].
    pub threads: u32,
    /// Master seed: workloads and shard layouts all derive from it.
    pub seed: u64,
}

impl MtSpec {
    /// A run of `threads` workers at the given scale.
    #[must_use]
    pub fn new(records: u64, operations: u64, threads: u32, seed: u64) -> MtSpec {
        MtSpec { records, operations, threads, seed }
    }
}

/// What a multi-threaded run produced, with per-thread counters merged on
/// join.
#[derive(Clone, Copy, Debug)]
pub struct MtResult {
    /// Worker threads that ran.
    pub threads: u32,
    /// Partition-ordered fold of every partition's value checksum —
    /// bit-identical across thread counts for a fixed seed.
    pub checksum: u64,
    /// Modelled wall-clock: the slowest core's cycle count.
    pub makespan_cycles: f64,
    /// Sum of all cores' cycles (the modelled CPU time).
    pub total_cycles: f64,
    /// GET operations executed.
    pub gets: u64,
    /// GETs that found their key.
    pub hits: u64,
    /// SET operations executed.
    pub sets: u64,
    /// Arena lease refills served by the shared lower layer.
    pub refills: u64,
    /// Central-allocator entries (slab carving, large allocs, fallbacks).
    pub central_allocs: u64,
    /// Times a bound slab was exhausted and a lease fell back to central.
    pub slab_overflows: u64,
    /// Host bytes resident in the shared pool.
    pub resident_bytes: u64,
    /// Per-thread translation-lookaside counters, merged on join.
    pub trans: TransStats,
    /// Per-thread pointer-op counters, merged on join.
    pub ptr: PtrStats,
}

impl MtResult {
    /// Total operations executed.
    pub fn operations(&self) -> u64 {
        self.gets + self.sets
    }
}

struct WorkerOut {
    summaries: Vec<(u64, RunSummary)>,
    cycles: f64,
    trans: TransStats,
    ptr: PtrStats,
}

/// One worker: a private shard + one simulated core over its partitions.
fn bench_worker(
    sp: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: &MtSpec,
    t: u32,
) -> Result<WorkerOut> {
    let mut space = AddressSpace::new(mix(spec.seed, 0x7468_7264 ^ u64::from(t)));
    let pool = space.adopt_shared(sp)?;
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(SimConfig::table_iv());
    machine.set_pool_ranges(ranges);
    let mut env = ExecEnv::builder(space)
        .mode(Mode::Hw)
        .pool(pool)
        .txn_slot(u64::from(t))
        .sink(machine)
        .build();

    let per_records = (spec.records / PARTITIONS).max(1);
    let per_ops = (spec.operations / PARTITIONS).max(1);
    let mut summaries = Vec::new();
    let mut p = u64::from(t);
    while p < PARTITIONS {
        // The partition's slab is the worker's allocation arena: loads in
        // this (parallel) phase refill leases from it without the central
        // lock, and its cursor keeps every offset thread-timing-free.
        env.space_mut().bind_arena_slab(pool, slabs[p as usize])?;
        let mut store: KvStore<RbTree> = KvStore::create(&mut env)?;
        let w = generate_preset(Preset::A, per_records, per_ops, spec.seed.wrapping_add(p + 1));
        store.load(&mut env, &w)?;
        summaries.push((p, store.run(&mut env, &w)?));
        p += u64::from(spec.threads);
    }

    let trans = env.space().trans_stats();
    let (_space, ptr, machine) = env.into_parts();
    Ok(WorkerOut { summaries, cycles: machine.cycles(), trans, ptr })
}

/// Runs YCSB-A over one shared pool with `spec.threads` OS threads.
///
/// # Errors
///
/// Propagates pool formatting and workload failures from any worker.
///
/// # Panics
///
/// Panics when `spec.threads` is zero or does not divide [`PARTITIONS`].
pub fn run_mt_ycsb(spec: &MtSpec) -> Result<MtResult> {
    let t64 = u64::from(spec.threads);
    assert!(
        spec.threads > 0 && t64 <= PARTITIONS && PARTITIONS % t64 == 0,
        "threads must divide {PARTITIONS}, got {}",
        spec.threads
    );
    let per_records = (spec.records / PARTITIONS).max(1);
    let sp = SharedPool::create("mt-ycsb", POOL_BYTES, 64)?;
    // Room per partition for its record nodes plus lease-carve slack.
    let slab_bytes = (64 << 10) + per_records * 192;
    let slabs: Vec<SlabId> =
        (0..PARTITIONS).map(|_| sp.carve_slab(slab_bytes)).collect::<Result<Vec<_>>>()?;

    let outs: Vec<Result<WorkerOut>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|t| {
                let (sp, slabs) = (&sp, &slabs);
                s.spawn(move || bench_worker(sp, slabs, spec, t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut summaries: Vec<(u64, RunSummary)> = Vec::new();
    let (mut makespan, mut total_cycles) = (0f64, 0f64);
    let mut trans = TransStats::default();
    let mut ptr = PtrStats::new();
    for out in outs {
        let o = out?;
        makespan = makespan.max(o.cycles);
        total_cycles += o.cycles;
        trans.merge(&o.trans);
        ptr += o.ptr;
        summaries.extend(o.summaries);
    }
    summaries.sort_by_key(|(p, _)| *p);

    let (mut checksum, mut gets, mut hits, mut sets) = (0u64, 0, 0, 0);
    for (_, s) in &summaries {
        // Order-sensitive fold in partition order, which is fixed no
        // matter which thread ran which partition.
        checksum = checksum.wrapping_mul(0x100_0000_01b3).wrapping_add(s.checksum);
        gets += s.gets;
        hits += s.hits;
        sets += s.sets;
    }
    Ok(MtResult {
        threads: spec.threads,
        checksum,
        makespan_cycles: makespan,
        total_cycles,
        gets,
        hits,
        sets,
        refills: sp.refills(),
        central_allocs: sp.central_allocs(),
        slab_overflows: sp.slab_overflows(),
        resident_bytes: sp.resident_bytes(),
        trans,
        ptr,
    })
}

// ---- concurrent crash sweep ------------------------------------------------

/// Shape of one concurrent crash sweep.
#[derive(Clone, Copy, Debug)]
pub struct MtSweepSpec {
    /// Logical threads interleaved by the schedule.
    pub threads: u32,
    /// Transaction-wrapped operations per thread.
    pub ops_per_thread: u64,
    /// Keys committed per thread before the gate is armed.
    pub prepopulate: u64,
    /// Boundary counts up to this are swept exhaustively.
    pub exhaustive_limit: u64,
    /// Seeded sample size above the exhaustive limit.
    pub samples: u64,
    /// Master seed: schedule, values, and sampling all derive from it.
    pub seed: u64,
}

impl MtSweepSpec {
    /// Tier-1 scale: every boundary of a 3-thread interleaving is swept.
    #[must_use]
    pub fn small(seed: u64) -> MtSweepSpec {
        MtSweepSpec {
            threads: 3,
            ops_per_thread: 3,
            prepopulate: 3,
            exhaustive_limit: u64::MAX,
            samples: 0,
            seed,
        }
    }

    /// Bench scale: seeded-sampled crash points over a longer history.
    #[must_use]
    pub fn sampled(seed: u64, threads: u32, ops_per_thread: u64, samples: u64) -> MtSweepSpec {
        MtSweepSpec {
            threads,
            ops_per_thread,
            prepopulate: 4,
            exhaustive_limit: 0,
            samples,
            seed,
        }
    }
}

/// What one concurrent sweep produced.
#[derive(Clone, Debug)]
pub struct MtSweepReport {
    /// Logical threads interleaved.
    pub threads: u32,
    /// Durable-write boundaries the interleaved workload crosses.
    pub boundaries: u64,
    /// Crash points actually tested.
    pub tested: u64,
    /// Recoveries that rolled back at least one torn transaction.
    pub rollbacks: u64,
    /// Crash points that failed an oracle (each one prints the replay
    /// seed).
    pub failures: Vec<SweepFailure>,
}

const SWEEP_POOL_BYTES: u64 = 24 << 20;
const KEY_STRIDE: u64 = 1 << 32;

fn counter_key(t: u64) -> u64 {
    t * KEY_STRIDE
}
fn prepop_key(t: u64, i: u64) -> u64 {
    t * KEY_STRIDE + 0x1000 + i
}
fn op_key(t: u64, j: u64) -> u64 {
    t * KEY_STRIDE + 0x100 + j
}
fn prepop_val(seed: u64, t: u64, i: u64) -> u64 {
    mix(seed, 0xBA5E ^ (t << 20) ^ i)
}
fn op_val(seed: u64, t: u64, j: u64) -> u64 {
    mix(seed, 0x0b5e ^ (t << 20) ^ j)
}

/// Builds the base image: one store + slab + undo-log slot per thread, a
/// descriptor directory as the pool root.
fn build_sweep_base(spec: &MtSweepSpec) -> Result<(Arc<SharedPool>, Vec<SlabId>)> {
    let t64 = u64::from(spec.threads);
    let sp = SharedPool::create("mt-sweep", SWEEP_POOL_BYTES, 8)?;
    let slabs: Vec<SlabId> =
        (0..t64).map(|_| sp.carve_slab(192 << 10)).collect::<Result<Vec<_>>>()?;

    let mut space = AddressSpace::new(mix(spec.seed, 0x5E7));
    let pool = space.adopt_shared(&sp)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let dir = env.alloc(site!("mt.sweep-dir", StackLocal), t64 * 8)?;
    for t in 0..t64 {
        env.space_mut().bind_arena_slab(pool, slabs[t as usize])?;
        let mut store: KvStore<RbTree> = KvStore::create(&mut env)?;
        store.set(&mut env, counter_key(t), 0)?;
        for i in 0..spec.prepopulate {
            store.set(&mut env, prepop_key(t, i), prepop_val(spec.seed, t, i))?;
        }
        env.write_ptr(
            site!("mt.sweep-slot", StackLocal),
            dir,
            (t * 8) as i64,
            store.index().descriptor(),
        )?;
        // Materialize thread t's undo-log slot now, single-threaded, so
        // slot creation is outside the armed boundary count (directory
        // slot installation is not thread-safe by design).
        UndoLog::ensure_slot(env.space_mut(), pool, 1 << 16, t)?;
    }
    env.set_root(site!("mt.sweep-root", StackLocal), dir)?;
    Ok((sp, slabs))
}

struct DriveOut {
    /// Transactions the driver saw commit, per thread.
    committed: Vec<u64>,
    /// Whether the armed gate tripped.
    crashed: bool,
    /// A non-crash error that killed the run (a harness bug).
    hard: Option<HeapError>,
}

/// Replays the interleaved schedule against `sp`: one logical env + store
/// per thread, each transaction owned by exactly one thread's undo-log
/// slot. Serial execution in schedule order is what makes the armed
/// boundary land at the same instruction every replay.
fn drive(
    sp: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: &MtSweepSpec,
    order: &[u32],
) -> Result<DriveOut> {
    let t64 = u64::from(spec.threads);
    let mut envs: Vec<ExecEnv<NullSink>> = Vec::with_capacity(spec.threads as usize);
    let mut stores: Vec<KvStore<RbTree>> = Vec::with_capacity(spec.threads as usize);
    for t in 0..t64 {
        let mut space = AddressSpace::new(mix(spec.seed, 0xD21 ^ (t + 1)));
        let pool = space.adopt_shared(sp)?;
        space.bind_arena_slab(pool, slabs[t as usize])?;
        let mut env = ExecEnv::builder(space)
            .mode(Mode::Hw)
            .pool(pool)
            .txn_slot(t)
            .build();
        let dir = env.root(site!("mt.sweep-open", KnownReturn))?;
        let desc = env.read_ptr(site!("mt.sweep-desc", KnownReturn), dir, (t * 8) as i64)?;
        stores.push(KvStore::open(desc));
        envs.push(env);
    }

    let mut out = DriveOut {
        committed: vec![0; spec.threads as usize],
        crashed: false,
        hard: None,
    };
    for (t, j) in steps(order) {
        let ti = t as usize;
        let (env, store) = (&mut envs[ti], &mut stores[ti]);
        let (key, val) = (op_key(u64::from(t), j), op_val(spec.seed, u64::from(t), j));
        let r = env.with_txn(|env| {
            store.set(env, key, val)?;
            store.set(env, counter_key(u64::from(t)), j + 1)?;
            Ok(())
        });
        match r {
            Ok(()) => out.committed[ti] += 1,
            Err(HeapError::CrashInjected { .. }) => {
                // A tripped gate is machine-wide: every thread stops here.
                out.crashed = true;
                break;
            }
            Err(e) => {
                out.hard = Some(e);
                break;
            }
        }
    }
    Ok(out)
}

/// Drives one armed trial, recovers it, and runs the oracle battery.
/// Returns whether recovery rolled anything back; an `Err` is the failure
/// detail for the report.
fn check_point(
    base: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: &MtSweepSpec,
    order: &[u32],
    k: u64,
) -> std::result::Result<bool, String> {
    let e2s = |e: HeapError| format!("harness error: {e}");
    let trial = base.snapshot();
    trial.set_faults(FaultPlan::crash_at(k));
    let d = drive(&trial, slabs, spec, order).map_err(e2s)?;
    if let Some(e) = d.hard {
        return Err(format!("armed run died of a non-crash error: {e}"));
    }
    if !d.crashed {
        return Err("armed run completed without crashing".into());
    }

    // "Restart": the workers' shards are gone; a fresh space adopts the
    // crashed image with the gate cleared and rolls back every slot.
    trial.set_faults(FaultPlan::disabled());
    let mut rspace = AddressSpace::new(mix(spec.seed, 0x42EC ^ k));
    let rpool = rspace.adopt_shared(&trial).map_err(e2s)?;
    let rolled =
        UndoLog::recover(&mut rspace, rpool).map_err(|e| format!("recovery failed: {e}"))?;
    trial.validate().map_err(|e| format!("allocator invariants violated: {e}"))?;

    let mut env = ExecEnv::builder(rspace).mode(Mode::Hw).pool(rpool).build();
    let dir = env.root(site!("mt.sweep-check", KnownReturn)).map_err(e2s)?;
    for t in 0..u64::from(spec.threads) {
        let desc = env
            .read_ptr(site!("mt.sweep-reopen", KnownReturn), dir, (t * 8) as i64)
            .map_err(e2s)?;
        let mut store: KvStore<RbTree> = KvStore::open(desc);

        // Oracle 1: the structure's own invariants.
        let validated =
            catch_unwind(AssertUnwindSafe(|| RbTree::open(desc).validate(&mut env)));
        let count = match validated {
            Ok(Ok(n)) => n,
            Ok(Err(e)) => return Err(format!("thread {t}: validator errored: {e}")),
            Err(_) => return Err(format!("thread {t}: invariant violated")),
        };

        // Oracle 2: exact contents against thread t's transaction-prefix
        // model. The counter key names the prefix; the crashed op either
        // rolled back (counter == committed) or its commit record landed
        // right at the boundary (counter == committed + 1).
        let c = d.committed[t as usize];
        let counter = store.get(&mut env, counter_key(t)).map_err(e2s)?.unwrap_or(u64::MAX);
        if counter != c && counter != c + 1 {
            return Err(format!(
                "thread {t}: counter {counter} matches no transaction boundary (committed {c})"
            ));
        }
        if count != spec.prepopulate + 1 + counter {
            return Err(format!(
                "thread {t}: store holds {count} keys, expected {}",
                spec.prepopulate + 1 + counter
            ));
        }
        for j in 0..spec.ops_per_thread {
            let got = store.get(&mut env, op_key(t, j)).map_err(e2s)?;
            let want = (j < counter).then(|| op_val(spec.seed, t, j));
            if got != want {
                return Err(format!(
                    "thread {t}: op key {j} read {got:?}, expected {want:?} at prefix {counter}"
                ));
            }
        }
        for i in 0..spec.prepopulate {
            if store.get(&mut env, prepop_key(t, i)).map_err(e2s)?
                != Some(prepop_val(spec.seed, t, i))
            {
                return Err(format!("thread {t}: prepopulated key {i} damaged"));
            }
        }

        // Oracle 3: the recovered store still works.
        let probe = u64::MAX - 1 - t;
        store.set(&mut env, probe, 0xFEED).map_err(e2s)?;
        if store.get(&mut env, probe).map_err(e2s)? != Some(0xFEED) {
            return Err(format!("thread {t}: post-recovery probe key not readable"));
        }
        store.remove(&mut env, probe).map_err(e2s)?;
    }
    Ok(rolled)
}

/// Sweeps every (or a seeded sample of) crash boundary of an N-thread
/// interleaved transaction history; see the module docs.
///
/// # Errors
///
/// Propagates setup failures (crash-consistency findings land in
/// [`MtSweepReport::failures`]).
pub fn mt_crash_sweep(spec: &MtSweepSpec) -> Result<MtSweepReport> {
    assert!(spec.threads > 0, "sweep over zero threads");
    let (base, slabs) = build_sweep_base(spec)?;
    let counts = vec![spec.ops_per_thread; spec.threads as usize];
    let order = schedule(Policy::Seeded(spec.seed), &counts);

    // Count the interleaved workload's durable-write boundaries.
    let counting = base.snapshot();
    counting.set_faults(FaultPlan::counting());
    let d = drive(&counting, &slabs, spec, &order)?;
    if let Some(e) = d.hard {
        return Err(e);
    }
    debug_assert!(!d.crashed, "counting plan never trips");
    let total = counting.faults().writes();

    let points = select_points(total, spec.exhaustive_limit, spec.samples, spec.seed);
    let mut report = MtSweepReport {
        threads: spec.threads,
        boundaries: total,
        tested: points.len() as u64,
        rollbacks: 0,
        failures: Vec::new(),
    };
    for k in points {
        match check_point(&base, &slabs, spec, &order, k) {
            Ok(true) => report.rollbacks += 1,
            Ok(false) => {}
            Err(detail) => {
                report.failures.push(SweepFailure { crash_point: k, seed: spec.seed, detail });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mt_ycsb_checksum_is_thread_count_invariant() {
        let specs = [1u32, 2, 4].map(|t| MtSpec::new(320, 1280, t, 7));
        let runs: Vec<MtResult> = specs.iter().map(|s| run_mt_ycsb(s).unwrap()).collect();
        assert_eq!(runs[0].checksum, runs[1].checksum, "1 vs 2 threads");
        assert_eq!(runs[0].checksum, runs[2].checksum, "1 vs 4 threads");
        assert!(runs[1].refills > 0, "parallel loads must refill arena leases");
        for r in &runs {
            assert_eq!(r.slab_overflows, 0, "slabs sized to never overflow");
            assert_eq!(r.gets + r.sets, runs[0].gets + runs[0].sets, "same work set");
        }
    }

    #[test]
    fn mt_ycsb_is_deterministic_per_seed_and_thread_count() {
        let spec = MtSpec::new(160, 640, 2, 99);
        let a = run_mt_ycsb(&spec).unwrap();
        let b = run_mt_ycsb(&spec).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert!((a.makespan_cycles - b.makespan_cycles).abs() < f64::EPSILON, "cycles replay");
    }

    #[test]
    fn mt_ycsb_makespan_scales_with_cores() {
        let one = run_mt_ycsb(&MtSpec::new(320, 1280, 1, 3)).unwrap();
        let four = run_mt_ycsb(&MtSpec::new(320, 1280, 4, 3)).unwrap();
        assert_eq!(one.checksum, four.checksum);
        let speedup = one.makespan_cycles / four.makespan_cycles;
        assert!(speedup > 2.0, "4 modelled cores must beat half-linear, got {speedup:.2}x");
    }

    #[test]
    fn mt_crash_sweep_small_is_exhaustive_and_clean() {
        let r = mt_crash_sweep(&MtSweepSpec::small(5)).unwrap();
        assert_eq!(r.tested, r.boundaries, "small scale sweeps every boundary");
        assert!(r.boundaries > 0);
        assert!(r.rollbacks > 0, "some crash points must tear a transaction");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn mt_crash_sweep_four_threads_sampled_is_clean() {
        let r = mt_crash_sweep(&MtSweepSpec::sampled(11, 4, 4, 12)).unwrap();
        assert_eq!(r.threads, 4);
        assert_eq!(r.tested, 12.min(r.boundaries), "sampled sweep hits the requested budget");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn mt_crash_sweep_replays_under_a_fixed_seed() {
        let a = mt_crash_sweep(&MtSweepSpec::small(42)).unwrap();
        let b = mt_crash_sweep(&MtSweepSpec::small(42)).unwrap();
        assert_eq!(a.boundaries, b.boundaries);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
