//! A small deterministic PRNG (xoshiro256**) used by the workload
//! generators. Self-contained so workloads are reproducible bit-for-bit
//! across platforms and runs.

/// xoshiro256** by Blackman & Vigna — fast, high-quality, deterministic.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator (any seed is fine; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the state.
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Lemire-style rejection-free enough for simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.f64().max(1e-12);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(12);
        let mut b = Rng::new(12);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(9);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.gaussian();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
