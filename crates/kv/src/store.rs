//! The key-value store harness (paper §VII-A): a PMDK-map-style store whose
//! indexing structure is swappable — exactly how the paper evaluates the
//! six Boost structures.

use crate::workload::{Op, Workload};
use utpr_ds::Index;
use utpr_heap::HeapError;
use utpr_ptr::{ExecEnv, TimingSink};

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

/// Outcome counters of an operation stream.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// GET operations executed.
    pub gets: u64,
    /// GETs that found their key.
    pub hits: u64,
    /// SET operations executed.
    pub sets: u64,
    /// Checksum of returned values (keeps the work observable).
    pub checksum: u64,
}

/// A key-value store over any [`Index`].
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::RbTree;
/// use utpr_kv::KvStore;
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("kv", 8 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut store: KvStore<RbTree> = KvStore::create(&mut env)?;
/// store.set(&mut env, 1, 10)?;
/// assert_eq!(store.get(&mut env, 1)?, Some(10));
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Debug)]
pub struct KvStore<I: Index> {
    index: I,
}

impl<I: Index> KvStore<I> {
    /// Creates an empty store.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        Ok(KvStore { index: I::create(env)? })
    }

    /// Re-attaches to a persisted store via its index descriptor.
    pub fn open(descriptor: utpr_ptr::UPtr) -> Self {
        KvStore { index: I::open(descriptor) }
    }

    /// The underlying index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Inserts or updates a pair.
    ///
    /// # Errors
    ///
    /// Propagates index failures.
    pub fn set<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64, value: u64) -> Result<Option<u64>> {
        self.index.insert(env, key, value)
    }

    /// Reads a key.
    ///
    /// # Errors
    ///
    /// Propagates index failures.
    pub fn get<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        self.index.get(env, key)
    }

    /// Removes a key, returning its value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates index failures.
    pub fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        self.index.remove(env, key)
    }

    /// Number of pairs stored.
    ///
    /// # Errors
    ///
    /// Propagates index failures.
    pub fn len<S: TimingSink>(&mut self, env: &mut ExecEnv<S>) -> Result<u64> {
        self.index.len(env)
    }

    /// Loads the initial records of a workload.
    ///
    /// # Errors
    ///
    /// Propagates index failures.
    pub fn load<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, w: &Workload) -> Result<()> {
        for k in &w.load_keys {
            self.set(env, *k, k ^ 0x5a5a_5a5a_5a5a_5a5a)?;
        }
        Ok(())
    }

    /// Executes a workload's operation stream.
    ///
    /// # Errors
    ///
    /// Propagates index failures.
    pub fn run<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, w: &Workload) -> Result<RunSummary> {
        let mut summary = RunSummary::default();
        for op in &w.ops {
            // Per-operation client work (key marshalling, dispatch, frames).
            env.frame_traffic(8, 4, 24);
            match op {
                Op::Get(k) => {
                    summary.gets += 1;
                    if let Some(v) = self.get(env, *k)? {
                        summary.hits += 1;
                        summary.checksum = summary.checksum.wrapping_add(v);
                    }
                }
                Op::Set(k, v) => {
                    summary.sets += 1;
                    self.set(env, *k, *v)?;
                }
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadSpec};
    use utpr_ds::{AvlTree, HashMapIndex, RbTree, ScapegoatTree, SplayTree};
    use utpr_heap::AddressSpace;
    use utpr_ptr::{Mode, NullSink};

    fn env(mode: Mode) -> ExecEnv<NullSink> {
        let mut space = AddressSpace::new(55);
        let pool = space.create_pool("kv-test", 32 << 20).unwrap();
        ExecEnv::builder(space).mode(mode).pool(pool).build()
    }

    fn summary_for<I: Index>(mode: Mode) -> RunSummary {
        let mut e = env(mode);
        let mut store: KvStore<I> = KvStore::create(&mut e).unwrap();
        let w = generate(&WorkloadSpec::small());
        store.load(&mut e, &w).unwrap();
        store.run(&mut e, &w).unwrap()
    }

    #[test]
    fn all_indexes_agree_on_the_same_workload() {
        let reference = summary_for::<RbTree>(Mode::Hw);
        assert_eq!(reference.hits, reference.gets, "every GET must hit");
        assert_eq!(summary_for::<AvlTree>(Mode::Hw), reference);
        assert_eq!(summary_for::<SplayTree>(Mode::Hw), reference);
        assert_eq!(summary_for::<ScapegoatTree>(Mode::Hw), reference);
        assert_eq!(summary_for::<HashMapIndex>(Mode::Hw), reference);
    }

    #[test]
    fn modes_agree_on_results() {
        let hw = summary_for::<RbTree>(Mode::Hw);
        assert_eq!(summary_for::<RbTree>(Mode::Volatile), hw);
        assert_eq!(summary_for::<RbTree>(Mode::Explicit), hw);
        assert_eq!(summary_for::<RbTree>(Mode::Sw), hw);
    }

    #[test]
    fn store_length_tracks_inserts() {
        let mut e = env(Mode::Hw);
        let mut store: KvStore<HashMapIndex> = KvStore::create(&mut e).unwrap();
        let w = generate(&WorkloadSpec::small());
        store.load(&mut e, &w).unwrap();
        let sets = w.ops.iter().filter(|o| matches!(o, Op::Set(..))).count() as u64;
        store.run(&mut e, &w).unwrap();
        assert_eq!(store.len(&mut e).unwrap(), w.load_keys.len() as u64 + sets);
    }
}
