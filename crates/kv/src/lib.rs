//! # utpr-kv — the key-value store harness and YCSB-style workloads
//!
//! The paper evaluates its six data structures behind a PMDK-map-style
//! key-value store driven by YCSB (10 k records, 100 k operations, 95 %
//! GET / 5 % SET, latest-distribution keys). This crate reproduces that
//! pipeline end to end:
//!
//! - [`workload`] — zipfian / latest-distribution operation streams;
//! - [`store`] — the KV store generic over any [`utpr_ds::Index`];
//! - [`harness`] — machine + environment assembly, warm-up, and measured
//!   runs producing [`harness::BenchResult`]s for the figure generators.
//!
//! ```
//! use utpr_kv::harness::{run_benchmark, Benchmark};
//! use utpr_kv::workload::WorkloadSpec;
//! use utpr_ptr::Mode;
//! use utpr_sim::SimConfig;
//!
//! let spec = WorkloadSpec { records: 100, operations: 400, read_fraction: 0.95, seed: 1 };
//! let r = run_benchmark(Benchmark::Rb, Mode::Hw, SimConfig::table_iv(), &spec)?;
//! assert!(r.cycles > 0.0);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

pub mod conc;
pub mod endurance;
pub mod faultsweep;
pub mod harness;
pub mod mt;
pub mod rng;
pub mod store;
pub mod workload;
pub mod ycsb;

pub use conc::{
    conc_crash_sweep, conc_sweep_all_strategies, conc_sweep_list, ConcSweepReport, ConcSweepSpec,
};
pub use endurance::{endurance_soak, EnduranceReport, EnduranceSpec};
pub use faultsweep::{
    bitflip_all, bitflip_campaign, sweep_all, sweep_structure, BitflipReport, BitflipSpec,
    FaultFlavor, SweepFailure, SweepReport, SweepSpec,
};
pub use harness::{run_all_modes, run_benchmark, verify_mode_agreement, BenchResult, Benchmark};
pub use mt::{mt_crash_sweep, run_mt_ycsb, MtResult, MtSpec, MtSweepReport, MtSweepSpec, PARTITIONS};
pub use store::{KvStore, RunSummary};
pub use workload::{generate, KeyStream, KeyUniverse, Op, Workload, WorkloadSpec, Zipfian};
pub use ycsb::{generate_preset, Preset};
