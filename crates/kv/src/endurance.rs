//! Week-of-modelled-time endurance soak: retention decay striking
//! sealed cold pages *while YCSB traffic runs*, with the online
//! scrubber patrolling under the same seeded turnstile as the mutators.
//!
//! The soak is the integration point of the retention model
//! (`utpr_heap::retain`), the media plane (`SharedPool`'s wear/CRC
//! accounting), and the patrol scrubber (`utpr_heap::scrub`):
//!
//! 1. a [`SharedPool`] is populated with one key partition per mutator
//!    thread, its retention plane configured (media clock, wear table,
//!    CRC sidecar) and a decay law armed via
//!    [`FaultPlan::with_decay`];
//! 2. N mutator threads drive a YCSB preset mix (B/C/D) against a
//!    lock-free [`ConcurrentIndex`], each charging
//!    [`EnduranceSpec::op_units`] of modelled work per operation —
//!    the media clock advances from modelled cycles, never wall time,
//!    and at each tick the decay lottery may flip a bit on a sealed
//!    cold page;
//! 3. when scrubbing is on, one extra turnstile participant runs
//!    [`Scrubber::step`] at its granted turns: patrol batches verify
//!    CRC sidecars oldest-first and preventively rewrite pages nearing
//!    their decay window; detected corruption quarantines the pool and
//!    is repaired through the shared quarantine → salvage → reseal
//!    path ([`Scrubber::repair`]);
//! 4. end of soak: seal everything, run a final full verify (turning
//!    every *latent* flip into a detected one — only then is the
//!    zero-silent-corruption invariant checkable), repair if needed,
//!    and audit every partition against its thread's model.
//!
//! Every interleaving — mutator vs mutator, mutator vs patrol, the
//! tick at which each flip lands — is a pure function of the spec and
//! its seed: the whole soak replays bit-for-bit under `UTPR_QC_SEED`
//! on any host core count.
//!
//! **What "silent" means here.** A flip served to a reader between
//! injection and the next patrol is a *detection-latency* artifact
//! inherent to patrol scrubbing; it is counted
//! ([`EnduranceReport::stale_reads`]) but not gated. The hard gate is
//! about durable state: after the final verify, every injected flip
//! must be detected (`flips_injected == flips_detected`), and no audit
//! mismatch may exist that the media plane never noticed.

use crate::ycsb::Preset;
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use utpr_ds::concurrent::{ConcurrentIndex, FlushStrategy, Handle};
use utpr_ds::{ConcHash, IndexCore};
use utpr_heap::{
    AddressSpace, FaultPlan, FlushModel, HeapError, RetentionConfig, ScrubConfig, ScrubStats,
    Scrubber, SharedPool, SlabId, WearStats,
};
use utpr_ptr::{site, ExecEnv, Mode};
use utpr_qc::sched::Turnstile;

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

const POOL_BYTES: u64 = 24 << 20;

fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a mixed salt.
fn dice(seed: u64, salt: u64) -> f64 {
    (mix(seed, salt) >> 11) as f64 / (1u64 << 53) as f64
}

/// Shape of one endurance soak.
#[derive(Clone, Copy, Debug)]
pub struct EnduranceSpec {
    /// Mutator threads (the scrubber, when on, is one more turnstile
    /// participant).
    pub threads: u32,
    /// Keys prepopulated per thread partition.
    pub keys_per_thread: u64,
    /// Measured operations per mutator thread.
    pub ops_per_thread: u64,
    /// YCSB preset driving the read/update/insert mix.
    pub mix: Preset,
    /// Persistence-domain model (eADR vs ADR).
    pub flush: FlushModel,
    /// Flush strategy every handle follows.
    pub strategy: FlushStrategy,
    /// Whether the patrol scrubber participates.
    pub scrub: bool,
    /// Patrol parameters (ignored for the patrol when `scrub` is off;
    /// reactive quarantine repair uses them either way).
    pub scrub_cfg: ScrubConfig,
    /// Decay rate in parts-per-billion of flip probability per tick of
    /// page age (see [`utpr_heap::decay_draw`]). Zero disables decay.
    pub decay_ppb: u64,
    /// Modelled work units one KV operation charges to the media clock.
    pub op_units: u64,
    /// Media-clock granularity: work units per tick. Together with
    /// `op_units` this sets the soak's tick horizon — the "week of
    /// modelled time" is a labelling of ticks, never wall time.
    pub work_per_tick: u64,
    /// Ticks a dirty page must sit untouched before it seals cold.
    pub seal_lag: u64,
    /// Prefer low-write-count pages in the central allocator (the
    /// wear-leveling ablation arm).
    pub wear_leveling: bool,
    /// Master seed: schedule, op mix, values, decay lottery.
    pub seed: u64,
}

impl EnduranceSpec {
    /// Tier-1 scale: 3 mutators, a few dozen ticks, hot decay.
    #[must_use]
    pub fn small(seed: u64) -> EnduranceSpec {
        EnduranceSpec {
            threads: 3,
            keys_per_thread: 24,
            ops_per_thread: 80,
            mix: Preset::B,
            flush: FlushModel::Adr,
            strategy: FlushStrategy::FliT,
            scrub: true,
            scrub_cfg: ScrubConfig { batch_pages: 12, refresh_age: 10, interval_ticks: 8 },
            decay_ppb: 600_000,
            op_units: 1_200,
            work_per_tick: 3_600,
            seal_lag: 2,
            wear_leveling: false,
            seed,
        }
    }
}

/// What one soak produced. Everything here is deterministic for a
/// fixed spec except [`WearStats::flatness`]-derived floats, which are
/// report-only and never checksummed.
#[derive(Clone, Debug)]
pub struct EnduranceReport {
    /// Operations that completed (including after a repair retry).
    pub ops: u64,
    /// Operations abandoned after errors/panics; their keys are
    /// excluded from the audit gates.
    pub ops_failed: u64,
    /// Mid-soak reads that returned a value contradicting the writer's
    /// own model — decay served before the patrol caught it. A
    /// detection-latency artifact, reported but not gated.
    pub stale_reads: u64,
    /// Final media-clock tick.
    pub ticks: u64,
    /// Total modelled work units on the clock.
    pub total_work: u64,
    /// Work units the scrubber charged (patrols + repairs).
    pub scrub_work: u64,
    /// Pool-wide fence count over the soak.
    pub fences: u64,
    /// Decay flips the lottery injected.
    pub flips_injected: u64,
    /// Flips detected (patrol, cold-write verify, or final verify).
    pub flips_detected: u64,
    /// Flip pairs that annihilated (same bit struck twice restores the
    /// CRC — undetectable by construction, retired from the books).
    pub flips_cancelled: u64,
    /// Distinct pages the lottery struck.
    pub pages_flipped: u64,
    /// Scrubber lifetime counters, including the shared
    /// recovered-vs-lost salvage accounting.
    pub scrub: ScrubStats,
    /// Wear-histogram summary (flatness is report-only).
    pub wear: WearStats,
    /// Keys with a certain model value that the audit checked.
    pub keys_audited: u64,
    /// Audited keys that read back exactly as modelled.
    pub keys_intact: u64,
    /// Audited keys lost or altered by *detected* corruption (the
    /// salvage path accounts for them).
    pub keys_lost: u64,
    /// Audited keys wrong with **no** detection to blame — the hard
    /// gate; must be zero.
    pub silent: u64,
    /// Order-independent digest of every audited key/value, certain or
    /// not: bit-identical across replays of the same spec.
    pub checksum: u64,
    /// Turnstile grants (the deterministic logical clock of the
    /// interleaving).
    pub grants: u64,
}

impl EnduranceReport {
    /// Scrub work as a fraction of all modelled work.
    #[must_use]
    pub fn scrub_overhead(&self) -> f64 {
        if self.total_work == 0 {
            0.0
        } else {
            self.scrub_work as f64 / self.total_work as f64
        }
    }

    /// Fences per completed operation.
    #[must_use]
    pub fn fences_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.fences as f64 / self.ops as f64
        }
    }

    /// The hard endurance gates: every injected flip detected, and no
    /// audit mismatch the media plane never noticed.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn gate(&self) -> std::result::Result<(), String> {
        if self.flips_injected != self.flips_detected + self.flips_cancelled {
            return Err(format!(
                "{} flips injected but only {} detected (+{} cancelled) — latent corruption survived the final verify",
                self.flips_injected, self.flips_detected, self.flips_cancelled
            ));
        }
        if self.silent > 0 {
            return Err(format!(
                "{} audited key(s) wrong with no detection to blame — silent corruption",
                self.silent
            ));
        }
        Ok(())
    }
}

/// Global key of partition slot `i` on thread `t`: partitions are
/// disjoint, so each thread's model is free of cross-thread races.
fn key_of(t: u64, i: u64, threads: u64) -> u64 {
    i * threads + t
}

fn value_of(seed: u64, key: u64, j: u64) -> u64 {
    mix(seed, key.wrapping_mul(0x517c_c1b7_2722_0a95) ^ j) >> 1
}

/// What one mutator decided to do at step `j`, drawn from the preset
/// mix. `inserted` is its partition's current size.
enum SoakOp {
    Read(u64),
    Update(u64),
    Insert,
}

fn op_of(spec: &EnduranceSpec, t: u64, j: u64, inserted: u64) -> SoakOp {
    let (read_f, update_f, _) = spec.mix.mix();
    let salt = (t << 40) ^ j;
    let d = dice(spec.seed, 0xC0DE ^ salt);
    let pick = mix(spec.seed, 0x1E7 ^ salt);
    if d < read_f {
        let i = match spec.mix {
            // Read-latest: bias toward the newest slots of the partition.
            Preset::D => inserted - 1 - pick % 8.min(inserted),
            _ => pick % inserted,
        };
        SoakOp::Read(i)
    } else if d < read_f + update_f {
        SoakOp::Update(pick % inserted)
    } else {
        SoakOp::Insert
    }
}

/// Per-thread outcome, merged into the report after the soak.
struct MutOut {
    model: BTreeMap<u64, u64>,
    uncertain: HashSet<u64>,
    ops: u64,
    ops_failed: u64,
    stale_reads: u64,
}

/// Builds the base image: shared pool with the retention plane armed,
/// one slab per mutator, partitions prepopulated single-threaded.
fn build_base(spec: &EnduranceSpec, name: &str) -> Result<(Arc<SharedPool>, Vec<SlabId>)> {
    let sp = SharedPool::create(name, POOL_BYTES, 8)?;
    sp.set_flush_model(spec.flush);
    sp.configure_retention(RetentionConfig {
        seal_lag: spec.seal_lag,
        work_per_tick: spec.work_per_tick,
    });
    sp.set_wear_leveling(spec.wear_leveling);
    let slabs: Vec<SlabId> = (0..spec.threads)
        .map(|_| sp.carve_slab(96 << 10))
        .collect::<Result<Vec<_>>>()?;

    let mut space = AddressSpace::new(mix(spec.seed, 0xE27D));
    let pool = space.adopt_shared(&sp)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let idx = ConcHash::create(&mut env)?;
    let mut h = Handle::new(&mut env, spec.strategy)?;
    for t in 0..u64::from(spec.threads) {
        for i in 0..spec.keys_per_thread {
            let k = key_of(t, i, u64::from(spec.threads));
            idx.insert(&mut h, k, value_of(spec.seed, k, 0))?;
        }
    }
    env.set_root(site!("endurance.root", StackLocal), idx.descriptor())?;
    env.space_mut().fence();
    Ok((sp, slabs))
}

/// One mutator thread's whole script. Returns its partition model.
#[allow(clippy::too_many_lines)]
fn mutate(
    sp: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: &EnduranceSpec,
    ts: &Turnstile,
    scrubber: &Mutex<Scrubber>,
    t: usize,
) -> Result<MutOut> {
    let threads = u64::from(spec.threads);
    let mut out = MutOut {
        model: BTreeMap::new(),
        uncertain: HashSet::new(),
        ops: 0,
        ops_failed: 0,
        stale_reads: 0,
    };
    for i in 0..spec.keys_per_thread {
        let k = key_of(t as u64, i, threads);
        out.model.insert(k, value_of(spec.seed, k, 0));
    }

    // Enter the turnstile discipline *before* touching the pool: setup
    // (adopt, slab bind, root open, handle creation) takes real pool
    // locks, and running it outside the baton would interleave with the
    // current holder on host timing — the one hole through which a
    // wall-clock schedule could leak into the soak.
    if ts.yield_point(t).is_err() {
        return Ok(out);
    }
    let mut space = AddressSpace::new(mix(spec.seed, 0xD21 ^ (t as u64 + 1)));
    let pool = space.adopt_shared(sp)?;
    space.bind_arena_slab(pool, slabs[t])?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let desc = env.root(site!("endurance.open", KnownReturn))?;
    let idx = ConcHash::open(desc);
    let yielder = || {
        ts.yield_point(t)
            .map_err(|_| HeapError::CrashInjected { writes: u64::MAX })
    };
    let mut h = Handle::new(&mut env, spec.strategy)?.with_yielder(&yielder);

    let mut inserted = spec.keys_per_thread;
    for j in 0..spec.ops_per_thread {
        let (key, is_read, value) = match op_of(spec, t as u64, j, inserted) {
            SoakOp::Read(i) => (key_of(t as u64, i, threads), true, 0),
            SoakOp::Update(i) => {
                let k = key_of(t as u64, i, threads);
                (k, false, value_of(spec.seed, k, j + 1))
            }
            SoakOp::Insert => {
                let k = key_of(t as u64, inserted, threads);
                inserted += 1;
                (k, false, value_of(spec.seed, k, j + 1))
            }
        };
        // Retry once after a quarantine repair; anything else fails the op.
        let mut done = false;
        for attempt in 0..2 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                if is_read {
                    idx.get(&mut h, key)
                } else {
                    idx.insert(&mut h, key, value)
                }
            }));
            match r {
                Ok(Ok(got)) => {
                    if is_read && got != out.model.get(&key).copied()
                        && !out.uncertain.contains(&key)
                    {
                        out.stale_reads += 1;
                    }
                    if !is_read {
                        out.model.insert(key, value);
                        out.uncertain.remove(&key);
                    }
                    out.ops += 1;
                    done = true;
                }
                Ok(Err(HeapError::MediaCorruption { .. })) if attempt == 0 => {
                    // Detected corruption gates this shard's guarded ops:
                    // run the shared repair path, then retry the op once.
                    scrubber.lock().expect("scrubber").repair(sp);
                    continue;
                }
                Ok(Err(_)) | Err(_) => {}
            }
            break;
        }
        if !done {
            out.ops_failed += 1;
            if !is_read {
                out.uncertain.insert(key);
            }
        }
        // Charge the op to the media clock while still holding the baton
        // from the op's last yield: tick crossings (and the decay flips
        // they inject) land at deterministic points of the interleaving.
        sp.note_work(spec.op_units);
    }
    Ok(out)
}

/// The patrol participant: step when granted, repair when quarantined,
/// retire once every mutator is done.
fn patrol(sp: &Arc<SharedPool>, ts: &Turnstile, scrubber: &Mutex<Scrubber>, slot: usize) {
    loop {
        if ts.yield_point(slot).is_err() {
            break;
        }
        if ts.active_count() <= 1 {
            break; // only the patrol left — the soak is over
        }
        let mut s = scrubber.lock().expect("scrubber");
        if sp.quarantined_page().is_some() {
            s.repair(sp);
        } else {
            s.step(sp);
        }
    }
    ts.finish(slot);
}

/// Runs one endurance soak; see the module docs for the protocol.
///
/// # Errors
///
/// Propagates harness-setup failures (gate violations are *reported*,
/// not raised — callers check [`EnduranceReport::gate`]).
///
/// # Panics
///
/// Panics when `spec.threads` or `spec.keys_per_thread` is zero.
#[allow(clippy::too_many_lines)]
pub fn endurance_soak(spec: &EnduranceSpec) -> Result<EnduranceReport> {
    assert!(spec.threads > 0, "soak over zero threads");
    assert!(spec.keys_per_thread > 0, "empty partitions");
    let name = format!(
        "endurance-{}-{}-{}-{:x}",
        spec.mix.name(),
        if spec.scrub { "scrub" } else { "noscrub" },
        spec.decay_ppb,
        mix(spec.seed, 0x50AC)
    );
    let (sp, slabs) = build_base(spec, &name)?;
    // Arm the decay law only now: prepopulation happens in stable time.
    sp.set_faults(FaultPlan::disabled().with_decay(mix(spec.seed, 0xDECA), spec.decay_ppb));

    let participants = spec.threads as usize + usize::from(spec.scrub);
    let ts = Turnstile::new(participants, spec.seed);
    let scrubber = Mutex::new(Scrubber::new(spec.scrub_cfg));
    let outs: Mutex<Vec<Option<Result<MutOut>>>> =
        Mutex::new((0..spec.threads).map(|_| None).collect());

    std::thread::scope(|s| {
        for t in 0..spec.threads as usize {
            let (sp, ts, scrubber, outs, slabs) = (&sp, &ts, &scrubber, &outs, &slabs);
            s.spawn(move || {
                let r = mutate(sp, slabs, spec, ts, scrubber, t);
                ts.finish(t);
                outs.lock().expect("outs")[t] = Some(r);
            });
        }
        if spec.scrub {
            let (sp, ts, scrubber) = (&sp, &ts, &scrubber);
            s.spawn(move || patrol(sp, ts, scrubber, spec.threads as usize));
        }
    });

    let mut scrubber = scrubber.into_inner().expect("scrubber");
    let outs = outs.into_inner().expect("outs");
    let mut model = BTreeMap::new();
    let mut uncertain = HashSet::new();
    let (mut ops, mut ops_failed, mut stale_reads) = (0u64, 0u64, 0u64);
    for o in outs {
        let o = o.expect("mutator joined")?;
        model.extend(o.model);
        uncertain.extend(o.uncertain);
        ops += o.ops;
        ops_failed += o.ops_failed;
        stale_reads += o.stale_reads;
    }

    // End-of-soak protocol: quiesce and force the final full verify, so
    // every latent flip (including one injected by the very last tick)
    // becomes a detected one before anything is audited or blessed.
    sp.seal_all_now();
    sp.verify_all();
    if sp.quarantined_page().is_some() {
        scrubber.repair(&sp);
    }
    debug_assert!(
        sp.pending_flip_debug().is_empty(),
        "end-of-soak protocol left undetected flips: {:?}",
        sp.pending_flip_debug()
    );

    // Audit every partition against the merged model through a fresh
    // shard, exactly like a post-restart reader would.
    let mut rspace = AddressSpace::new(mix(spec.seed, 0xA0D1));
    let rpool = rspace.adopt_shared(&sp)?;
    let mut env = ExecEnv::builder(rspace).mode(Mode::Hw).pool(rpool).build();
    let desc = env.root(site!("endurance.audit", KnownReturn))?;
    let idx = ConcHash::open(desc);
    let mut h = Handle::new(&mut env, spec.strategy)?;
    let (_, flips_detected_pre_audit, _) = sp.media_flips();
    let (mut keys_audited, mut keys_intact, mut keys_lost, mut silent) = (0u64, 0u64, 0u64, 0u64);
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for (k, v) in &model {
        let got = catch_unwind(AssertUnwindSafe(|| idx.get(&mut h, *k)));
        let observed = match &got {
            Ok(Ok(x)) => x.unwrap_or(u64::MAX),
            _ => 0xDEAD_0000_0000_0000 | k,
        };
        checksum = checksum
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(k.wrapping_mul(31) ^ observed);
        if uncertain.contains(k) {
            continue; // the op that last wrote it failed; value unknowable
        }
        keys_audited += 1;
        match got {
            Ok(Ok(Some(x))) if x == *v => keys_intact += 1,
            // Wrong/missing/erroring key: attributable to the salvage
            // path only if the plane actually detected corruption.
            _ if flips_detected_pre_audit > 0 => keys_lost += 1,
            _ => silent += 1,
        }
    }

    let (total_work, scrub_work) = sp.media_work();
    let (flips_injected, flips_detected, flips_cancelled) = sp.media_flips();
    Ok(EnduranceReport {
        ops,
        ops_failed,
        stale_reads,
        ticks: sp.media_tick(),
        total_work,
        scrub_work,
        fences: sp.fence_count(),
        flips_injected,
        flips_detected,
        flips_cancelled,
        pages_flipped: sp.flipped_pages(),
        scrub: scrubber.stats(),
        wear: sp.wear_stats(),
        keys_audited,
        keys_intact,
        keys_lost,
        silent,
        checksum,
        grants: ts.grants(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_replays_bit_for_bit_under_one_seed() {
        let spec = EnduranceSpec::small(41);
        let a = endurance_soak(&spec).unwrap();
        let b = endurance_soak(&spec).unwrap();
        assert_eq!(a.checksum, b.checksum, "same spec, same audit digest");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.grants, b.grants, "same interleaving");
        assert_eq!(a.flips_injected, b.flips_injected);
        assert_eq!(
            (a.ops, a.stale_reads, a.keys_lost, a.silent),
            (b.ops, b.stale_reads, b.keys_lost, b.silent)
        );
        let c = endurance_soak(&EnduranceSpec::small(42)).unwrap();
        assert_ne!(a.checksum, c.checksum, "different seed, different soak");
    }

    #[test]
    fn scrub_on_soak_passes_the_hard_gates() {
        for seed in [7, 19] {
            let r = endurance_soak(&EnduranceSpec::small(seed)).unwrap();
            assert!(r.ticks > 10, "the clock must actually advance: {r:?}");
            assert!(r.scrub.batches > 0, "the patrol must run");
            r.gate().unwrap_or_else(|g| panic!("seed {seed}: {g}"));
            assert!(r.scrub_work > 0, "patrol cost must be booked");
            assert!(r.scrub_overhead() < 0.2, "overhead {:.3}", r.scrub_overhead());
        }
    }

    #[test]
    fn scrub_off_at_high_decay_loses_data_but_never_silently() {
        let mut spec = EnduranceSpec::small(23);
        spec.scrub = false;
        spec.decay_ppb = 60_000_000;
        let r = endurance_soak(&spec).unwrap();
        assert!(r.flips_injected > 0, "hot decay must strike: {r:?}");
        r.gate().unwrap_or_else(|g| panic!("{g}"));
        assert!(
            r.keys_lost > 0 || r.scrub.repairs > 0 || r.stale_reads > 0,
            "unscrubbed hot decay must visibly cost something: {r:?}"
        );
    }

    #[test]
    fn read_only_mix_under_eadr_stays_clean_when_decay_is_off() {
        let mut spec = EnduranceSpec::small(5);
        spec.mix = Preset::C;
        spec.flush = FlushModel::Eadr;
        spec.decay_ppb = 0;
        let r = endurance_soak(&spec).unwrap();
        assert_eq!(r.flips_injected, 0);
        assert_eq!(r.stale_reads, 0);
        assert_eq!(r.keys_intact, r.keys_audited, "{r:?}");
        r.gate().unwrap();
    }
}
