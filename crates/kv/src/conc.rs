//! Concurrent-history crash sweeps with a durable-linearizability
//! oracle.
//!
//! [`crate::mt::mt_crash_sweep`] interleaves *transactions* serially, so
//! its oracle is per-thread prefix recovery. The sweep here goes one
//! level finer: N **real** OS threads run lock-free
//! [`ConcurrentIndex`] operations whose loads/stores/CAS genuinely
//! interleave mid-operation, serialized one access at a time by a
//! seeded [`Turnstile`], so the whole run — CAS winners, retry loops,
//! the armed crash boundary — replays bit-for-bit from
//! `(seed, crash point)` on any host (the `UTPR_QC_SEED` contract).
//!
//! Each trial:
//!
//! 1. snapshots the prepopulated base image and arms the pool's fault
//!    gate at durable-write boundary `k`;
//! 2. drives the turnstile schedule, recording an invoke/response
//!    [`History`] of every operation; the gate trip stops all threads
//!    at their next yield, leaving in-flight operations *pending*;
//! 3. power-cycles the pool — under [`FlushModel::Adr`] every line that
//!    was written but never flushed+fenced reverts to its durable
//!    image, which is what distinguishes the flush strategies' crash
//!    exposure;
//! 4. recovers: a fresh shard adopts the image, allocator invariants
//!    and the structure's own invariant walk must hold, and a full
//!    audit of the key universe is appended to the history as completed
//!    reads;
//! 5. hands the history to the Wing&Gong checker
//!    ([`utpr_qc::linear::check`]): the audited state must be a legal
//!    cut of the crashed execution — completed operations durable,
//!    pending ones included or dropped. Any refusal is a
//!    [`SweepFailure`] carrying the replay seed.

use crate::faultsweep::SweepFailure;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use utpr_ds::concurrent::{ConcurrentIndex, FlushStrategy, Handle};
use utpr_ds::{ConcHash, ConcList};
use utpr_heap::{
    select_points, AddressSpace, FaultPlan, FlushModel, HeapError, SharedPool, SlabId,
};
use utpr_ptr::{site, ExecEnv, Mode};
use utpr_qc::linear::{check, History, KvOp};
use utpr_qc::sched::Turnstile;

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

const POOL_BYTES: u64 = 24 << 20;
/// Small key universe so histories overlap heavily and the audit stays
/// enumerable.
pub const KEY_UNIVERSE: u64 = 8;

fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Shape of one concurrent-history crash sweep.
#[derive(Clone, Copy, Debug)]
pub struct ConcSweepSpec {
    /// Real OS threads under the turnstile.
    pub threads: u32,
    /// Lock-free operations per thread.
    pub ops_per_thread: u64,
    /// Keys committed (and history-seeded) before the gate is armed.
    pub prepopulate: u64,
    /// Flush strategy every handle follows.
    pub strategy: FlushStrategy,
    /// Boundary counts up to this are swept exhaustively.
    pub exhaustive_limit: u64,
    /// Seeded sample size above the exhaustive limit.
    pub samples: u64,
    /// Master seed: schedule, op mix, values, sampling.
    pub seed: u64,
}

impl ConcSweepSpec {
    /// Tier-1 scale: 3 threads, sampled boundaries, one strategy.
    #[must_use]
    pub fn small(seed: u64, strategy: FlushStrategy) -> ConcSweepSpec {
        ConcSweepSpec {
            threads: 3,
            ops_per_thread: 4,
            prepopulate: 3,
            strategy,
            exhaustive_limit: 0,
            samples: 10,
            seed,
        }
    }

    /// Verify scale: every boundary of a 2-thread history.
    #[must_use]
    pub fn exhaustive(seed: u64, strategy: FlushStrategy) -> ConcSweepSpec {
        ConcSweepSpec {
            threads: 2,
            ops_per_thread: 3,
            prepopulate: 2,
            strategy,
            exhaustive_limit: u64::MAX,
            samples: 0,
            seed,
        }
    }
}

/// What one concurrent sweep produced.
#[derive(Clone, Debug)]
pub struct ConcSweepReport {
    /// Threads interleaved.
    pub threads: u32,
    /// Strategy swept.
    pub strategy: FlushStrategy,
    /// Durable-write boundaries the full schedule crosses.
    pub boundaries: u64,
    /// Crash points actually tested.
    pub tested: u64,
    /// Trials whose crash left at least one operation pending.
    pub torn: u64,
    /// Crash points whose recovered state failed an oracle.
    pub failures: Vec<SweepFailure>,
}

fn prepop_key(i: u64) -> u64 {
    i % KEY_UNIVERSE
}
fn prepop_val(seed: u64, i: u64) -> u64 {
    mix(seed, 0xBA5E ^ i) >> 1
}

fn op_of(seed: u64, t: u64, j: u64) -> KvOp {
    let salt = (t << 24) ^ j;
    let r = mix(seed, 0xC0DE ^ salt);
    let key = mix(seed, 0x1E7 ^ salt) % KEY_UNIVERSE;
    match r % 4 {
        0 | 1 => KvOp::Insert(key, mix(seed, 0x7A1 ^ salt) >> 1),
        2 => KvOp::Get(key),
        _ => KvOp::Remove(key),
    }
}

/// Builds the base image: shared pool in ADR mode, one slab per thread,
/// one structure prepopulated single-threaded, descriptor in the root.
fn build_base<I: ConcurrentIndex>(
    spec: &ConcSweepSpec,
    name: &str,
) -> Result<(Arc<SharedPool>, Vec<SlabId>)> {
    let sp = SharedPool::create(name, POOL_BYTES, 8)?;
    sp.set_flush_model(FlushModel::Adr);
    let slabs: Vec<SlabId> = (0..spec.threads)
        .map(|_| sp.carve_slab(96 << 10))
        .collect::<Result<Vec<_>>>()?;

    let mut space = AddressSpace::new(mix(spec.seed, 0xC5E7));
    let pool = space.adopt_shared(&sp)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let idx = I::create(&mut env)?;
    let mut h = Handle::new(&mut env, spec.strategy)?;
    for i in 0..spec.prepopulate {
        idx.insert(&mut h, prepop_key(i), prepop_val(spec.seed, i))?;
    }
    env.set_root(site!("conc.sweep-root", StackLocal), idx.descriptor())?;
    env.space_mut().fence();
    Ok((sp, slabs))
}

/// Seeds a fresh history with the prepopulated contents as completed
/// sequential inserts, so the checker's model starts from the right
/// state.
fn seed_history(spec: &ConcSweepSpec) -> History {
    let mut hist = History::new();
    let mut model = std::collections::BTreeMap::new();
    for i in 0..spec.prepopulate {
        let (k, v) = (prepop_key(i), prepop_val(spec.seed, i));
        let id = hist.begin(u32::MAX, KvOp::Insert(k, v));
        hist.complete(id, model.insert(k, v));
    }
    hist
}

struct DriveOut {
    history: History,
    crashed: bool,
    hard: Option<String>,
}

/// Runs the full turnstile schedule against `sp` with real threads.
fn drive<I: ConcurrentIndex>(
    sp: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: &ConcSweepSpec,
) -> Result<DriveOut> {
    let ts = Arc::new(Turnstile::new(spec.threads as usize, spec.seed));
    let hist = Arc::new(Mutex::new(seed_history(spec)));
    let hard: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

    std::thread::scope(|s| {
        for t in 0..spec.threads as usize {
            let (sp, ts, hist, hard) = (sp, Arc::clone(&ts), Arc::clone(&hist), Arc::clone(&hard));
            s.spawn(move || {
                let run = || -> Result<()> {
                    let mut space = AddressSpace::new(mix(spec.seed, 0xD21 ^ (t as u64 + 1)));
                    let pool = space.adopt_shared(sp)?;
                    space.bind_arena_slab(pool, slabs[t])?;
                    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
                    let desc = env.root(site!("conc.sweep-open", KnownReturn))?;
                    let idx = I::open(desc);
                    let yielder = || {
                        ts.yield_point(t)
                            .map_err(|_| HeapError::CrashInjected { writes: u64::MAX })
                    };
                    let mut h =
                        Handle::new(&mut env, spec.strategy)?.with_yielder(&yielder);
                    for j in 0..spec.ops_per_thread {
                        let op = op_of(spec.seed, t as u64, j);
                        let id = hist.lock().expect("history").begin(t as u32, op);
                        let result = match op {
                            KvOp::Insert(k, v) => idx.insert(&mut h, k, v),
                            KvOp::Remove(k) => idx.remove(&mut h, k),
                            KvOp::Get(k) => idx.get(&mut h, k),
                        };
                        match result {
                            Ok(r) => hist.lock().expect("history").complete(id, r),
                            Err(e) => return Err(e), // op stays pending
                        }
                    }
                    Ok(())
                };
                match run() {
                    Ok(()) => {}
                    Err(HeapError::CrashInjected { .. }) => ts.crash(),
                    Err(e) => {
                        *hard.lock().expect("hard") = Some(format!("thread {t}: {e}"));
                        ts.crash();
                    }
                }
                ts.finish(t);
            });
        }
    });

    let crashed = ts.crashed();
    let history = Arc::try_unwrap(hist).expect("history refs").into_inner().expect("history");
    let hard = Arc::try_unwrap(hard).expect("hard refs").into_inner().expect("hard");
    Ok(DriveOut { history, crashed, hard })
}

/// Drives one armed trial, power-cycles, recovers, audits, checks.
fn check_point<I: ConcurrentIndex>(
    base: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: &ConcSweepSpec,
    k: u64,
) -> std::result::Result<bool, String> {
    let e2s = |e: HeapError| format!("harness error: {e}");
    let trial = base.snapshot();
    trial.set_faults(FaultPlan::crash_at(k));
    let d = drive::<I>(&trial, slabs, spec).map_err(e2s)?;
    if let Some(h) = d.hard {
        return Err(format!("armed run died of a non-crash error: {h}"));
    }
    if !d.crashed {
        return Err("armed run completed without crashing".into());
    }
    let torn = d.history.pending() > 0;

    // Power failure: unflushed lines revert, tags die with the caches.
    trial.set_faults(FaultPlan::disabled());
    trial.power_cycle();

    // Restart: fresh shard adopts the image and audits everything.
    let mut rspace = AddressSpace::new(mix(spec.seed, 0x42EC ^ k));
    let rpool = rspace.adopt_shared(&trial).map_err(e2s)?;
    trial.validate().map_err(|e| format!("allocator invariants violated: {e}"))?;
    let mut env = ExecEnv::builder(rspace).mode(Mode::Hw).pool(rpool).build();
    let desc = env.root(site!("conc.sweep-check", KnownReturn)).map_err(e2s)?;
    let idx = I::open(desc);
    match catch_unwind(AssertUnwindSafe(|| idx.validate(&mut env))) {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => return Err(format!("validator errored: {e}")),
        Err(_) => return Err("structure invariant violated after recovery".into()),
    }

    // Append the recovered state as completed audit reads, then ask the
    // checker whether it is a legal cut of the crashed execution.
    let mut history = d.history;
    let mut h = Handle::new(&mut env, spec.strategy).map_err(e2s)?;
    for key in 0..KEY_UNIVERSE {
        let id = history.begin(u32::MAX - 1, KvOp::Get(key));
        let got = idx.get(&mut h, key).map_err(e2s)?;
        history.complete(id, got);
    }
    check(&history).map_err(|detail| format!("durable linearizability refuted: {detail}"))?;
    Ok(torn)
}

/// Sweeps crash boundaries of an N-thread lock-free history under one
/// flush strategy; see the module docs.
///
/// # Errors
///
/// Propagates setup failures (consistency findings land in
/// [`ConcSweepReport::failures`]).
///
/// # Panics
///
/// Panics when `spec.threads` is zero.
pub fn conc_crash_sweep<I: ConcurrentIndex>(spec: &ConcSweepSpec) -> Result<ConcSweepReport> {
    assert!(spec.threads > 0, "sweep over zero threads");
    let name = format!(
        "conc-sweep-{}-{}-{:x}",
        I::NAME,
        spec.strategy.label(),
        mix(spec.seed, 0x5EED)
    );
    let (base, slabs) = build_base::<I>(spec, &name)?;

    // Count the schedule's durable-write boundaries.
    let counting = base.snapshot();
    counting.set_faults(FaultPlan::counting());
    let d = drive::<I>(&counting, &slabs, spec)?;
    if let Some(h) = d.hard {
        return Err(HeapError::ModeDivergence {
            benchmark: "conc-sweep-counting",
            details: h,
        });
    }
    debug_assert!(!d.crashed, "counting plan never trips");
    let total = counting.faults().writes();

    let points = select_points(total, spec.exhaustive_limit, spec.samples, spec.seed);
    let mut report = ConcSweepReport {
        threads: spec.threads,
        strategy: spec.strategy,
        boundaries: total,
        tested: points.len() as u64,
        torn: 0,
        failures: Vec::new(),
    };
    for k in points {
        match check_point::<I>(&base, &slabs, spec, k) {
            Ok(true) => report.torn += 1,
            Ok(false) => {}
            Err(detail) => {
                report.failures.push(SweepFailure { crash_point: k, seed: spec.seed, detail });
            }
        }
    }
    Ok(report)
}

/// Convenience: sweeps the hash map under every flush strategy.
///
/// # Errors
///
/// Propagates setup failures.
pub fn conc_sweep_all_strategies(seed: u64) -> Result<Vec<ConcSweepReport>> {
    FlushStrategy::ALL
        .iter()
        .map(|s| conc_crash_sweep::<ConcHash>(&ConcSweepSpec::small(seed, *s)))
        .collect()
}

/// The list variant of [`conc_sweep_all_strategies`].
///
/// # Errors
///
/// Propagates setup failures.
pub fn conc_sweep_list(seed: u64, strategy: FlushStrategy) -> Result<ConcSweepReport> {
    conc_crash_sweep::<ConcList>(&ConcSweepSpec::small(seed, strategy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conc_sweep_hash_all_strategies_is_clean() {
        for r in conc_sweep_all_strategies(13).unwrap() {
            assert!(r.boundaries > 0, "{:?}: schedule must cross durable writes", r.strategy);
            assert_eq!(r.tested, 10.min(r.boundaries), "{:?} sample budget", r.strategy);
            assert!(r.failures.is_empty(), "{:?}: {:?}", r.strategy, r.failures);
        }
    }

    #[test]
    fn conc_sweep_list_exhaustive_two_threads_is_clean() {
        let spec = ConcSweepSpec::exhaustive(7, FlushStrategy::Traverse);
        let r = conc_crash_sweep::<ConcList>(&spec).unwrap();
        assert_eq!(r.tested, r.boundaries, "exhaustive sweep hits every boundary");
        assert!(r.torn > 0, "some crash points must cut an operation mid-flight");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn conc_sweep_replays_under_a_fixed_seed() {
        let spec = ConcSweepSpec::small(99, FlushStrategy::FliT);
        let a = conc_crash_sweep::<ConcHash>(&spec).unwrap();
        let b = conc_crash_sweep::<ConcHash>(&spec).unwrap();
        assert_eq!(a.boundaries, b.boundaries, "same seed, same schedule");
        assert_eq!(a.torn, b.torn);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
