//! YCSB-style workload generation (paper §VII-A).
//!
//! The paper's harness uses YCSB to generate 10,000 key-value pairs and
//! 100,000 operations — 95 % GET, 5 % SET, both keys and values 8 bytes.
//! SETs insert *new* pairs; GETs draw keys from the **latest** distribution
//! (a zipfian over recency: recently inserted records are most popular).

use crate::rng::Rng;

/// Zipfian sampler over `[0, n)` with the YCSB constant θ = 0.99, using the
/// Gray et al. rejection-free method YCSB itself implements.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a sampler over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Builds a sampler with an explicit skew θ ∈ (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; n is at most the record count (tens of thousands).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Internal ζ(2, θ) — exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A shared zipfian key universe for many-connection load generation.
///
/// Building a [`Zipfian`] costs O(n): the ζ-table sum walks every rank.
/// The load harness multiplexes thousands of virtual users, and having
/// each one call [`Zipfian::new`] would re-run that sum per connection —
/// 10 k records × 10 k connections is 10⁸ `powf` calls before the first
/// request leaves the machine. A `KeyUniverse` pays the ζ sum **once**;
/// [`KeyUniverse::stream`] then seeds a per-connection sampler in O(1)
/// (the sampler state is six scalars, copied, plus a fresh [`Rng`]).
///
/// Ranks map to keys in *latest* order, matching [`generate`]: rank 0 is
/// the newest (hottest) record, `key_of_index(records - 1)`.
#[derive(Clone, Debug)]
pub struct KeyUniverse {
    zipf: Zipfian,
}

impl KeyUniverse {
    /// A universe over `records` keys at the YCSB constant θ = 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero.
    pub fn new(records: u64) -> Self {
        Self::with_theta(records, 0.99)
    }

    /// A universe with an explicit skew θ ∈ (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero.
    pub fn with_theta(records: u64, theta: f64) -> Self {
        KeyUniverse { zipf: Zipfian::with_theta(records, theta) }
    }

    /// Number of keys in the universe.
    pub fn records(&self) -> u64 {
        self.zipf.n()
    }

    /// The key at popularity rank `rank` (0 = hottest = newest record).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn key_at(&self, rank: u64) -> u64 {
        assert!(rank < self.zipf.n());
        key_of_index(self.zipf.n() - 1 - rank)
    }

    /// Seeds a per-connection key stream. O(1): no ζ rebuild — the sampler
    /// parameters are copied from this universe.
    pub fn stream(&self, seed: u64) -> KeyStream {
        KeyStream { zipf: self.zipf.clone(), rng: Rng::new(seed) }
    }
}

/// One connection's deterministic zipfian key stream, seeded in O(1) from
/// a [`KeyUniverse`]. Two streams with the same seed over the same
/// universe produce identical key sequences.
#[derive(Clone, Debug)]
pub struct KeyStream {
    zipf: Zipfian,
    rng: Rng,
}

impl KeyStream {
    /// Draws the next popularity rank in `[0, records)`.
    pub fn next_rank(&mut self) -> u64 {
        self.zipf.sample(&mut self.rng)
    }

    /// Draws the next key (rank mapped through latest order).
    pub fn next_key(&mut self) -> u64 {
        let rank = self.next_rank();
        key_of_index(self.zipf.n() - 1 - rank)
    }
}

/// One key-value operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Read the value of `key`.
    Get(u64),
    /// Insert a new pair.
    Set(u64, u64),
}

/// Workload parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Records loaded before the measured run.
    pub records: u64,
    /// Measured operations.
    pub operations: u64,
    /// Fraction of GETs (the rest are SETs inserting new keys).
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's configuration: 10 k records, 100 k ops, 95 % GET.
    pub fn paper() -> Self {
        WorkloadSpec { records: 10_000, operations: 100_000, read_fraction: 0.95, seed: 42 }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> Self {
        WorkloadSpec { records: 1_000, operations: 5_000, read_fraction: 0.95, seed: 42 }
    }
}

/// A generated workload: the load phase keys plus the operation stream.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Keys to insert during the load phase (values are `key ^ mask`).
    pub load_keys: Vec<u64>,
    /// The measured operation stream.
    pub ops: Vec<Op>,
}

/// Maps an insertion index to its 8-byte key (a cheap injective mix, the
/// analogue of YCSB's hashed keys).
pub fn key_of_index(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// Generates a workload per the spec: GET keys follow the *latest*
/// distribution (zipfian over recency), SETs append brand-new keys.
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let mut rng = Rng::new(spec.seed);
    let load_keys: Vec<u64> = (0..spec.records).map(key_of_index).collect();
    let mut inserted = spec.records;
    // The recency sampler is rebuilt lazily as the keyspace grows; YCSB
    // does the same with its zipfian-over-count. Rebuilding at powers of
    // growth keeps generation O(ops).
    let mut zipf = Zipfian::new(inserted);
    let mut ops = Vec::with_capacity(spec.operations as usize);
    for i in 0..spec.operations {
        if rng.f64() < spec.read_fraction {
            if zipf.n() < inserted {
                zipf = Zipfian::new(inserted);
            }
            let rank = zipf.sample(&mut rng);
            // latest: rank 0 = newest record.
            let index = inserted - 1 - rank;
            ops.push(Op::Get(key_of_index(index)));
        } else {
            let key = key_of_index(inserted);
            ops.push(Op::Set(key, key ^ 0x5a5a_5a5a_5a5a_5a5a ^ i));
            inserted += 1;
        }
    }
    Workload { load_keys, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(1000);
        let mut rng = Rng::new(5);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 must be far more popular than rank 500, and the top 10
        // ranks should cover a large share.
        assert!(counts[0] > counts[500].max(1) * 20, "{} vs {}", counts[0], counts[500]);
        let top10: u64 = counts[..10].iter().sum();
        assert!(top10 > 30_000, "top-10 share {top10}");
    }

    #[test]
    fn zipfian_stays_in_range() {
        for n in [1u64, 2, 3, 10, 10_000] {
            let z = Zipfian::new(n);
            let mut rng = Rng::new(1);
            for _ in 0..2000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn same_seed_streams_are_identical() {
        let u = KeyUniverse::new(5_000);
        let a: Vec<u64> = {
            let mut s = u.stream(0xfeed);
            (0..1_000).map(|_| s.next_key()).collect()
        };
        let b: Vec<u64> = {
            let mut s = u.stream(0xfeed);
            (0..1_000).map(|_| s.next_key()).collect()
        };
        assert_eq!(a, b, "same seed must replay the identical stream");
        let mut c = u.stream(0xbeef);
        let cs: Vec<u64> = (0..1_000).map(|_| c.next_key()).collect();
        assert_ne!(a, cs, "different seeds must diverge");
    }

    #[test]
    fn stream_matches_direct_zipfian_sampling() {
        // A cheaply seeded stream must be *exactly* the sampler a
        // connection would have built from scratch — same ranks, same
        // latest-order key mapping.
        let n = 2_000;
        let u = KeyUniverse::new(n);
        let mut s = u.stream(77);
        let z = Zipfian::new(n);
        let mut rng = Rng::new(77);
        for _ in 0..2_000 {
            let rank = z.sample(&mut rng);
            assert_eq!(s.next_key(), key_of_index(n - 1 - rank));
        }
    }

    #[test]
    fn universe_ranks_follow_latest_order() {
        let u = KeyUniverse::new(100);
        assert_eq!(u.key_at(0), key_of_index(99), "rank 0 = newest record");
        assert_eq!(u.key_at(99), key_of_index(0));
        assert_eq!(u.records(), 100);
        // Streams stay in the universe.
        let keys: std::collections::HashSet<u64> = (0..100).map(key_of_index).collect();
        let mut s = u.stream(3);
        for _ in 0..500 {
            assert!(keys.contains(&s.next_key()));
        }
    }

    #[test]
    fn generate_matches_spec_mix() {
        let spec = WorkloadSpec { records: 500, operations: 20_000, read_fraction: 0.95, seed: 3 };
        let w = generate(&spec);
        assert_eq!(w.load_keys.len(), 500);
        assert_eq!(w.ops.len(), 20_000);
        let sets = w.ops.iter().filter(|o| matches!(o, Op::Set(..))).count();
        let frac = sets as f64 / w.ops.len() as f64;
        assert!((frac - 0.05).abs() < 0.01, "set fraction {frac}");
    }

    #[test]
    fn sets_always_insert_fresh_keys() {
        let spec = WorkloadSpec::small();
        let w = generate(&spec);
        let mut seen: std::collections::HashSet<u64> = w.load_keys.iter().copied().collect();
        for op in &w.ops {
            if let Op::Set(k, _) = op {
                assert!(seen.insert(*k), "SET reused key {k}");
            }
        }
    }

    #[test]
    fn gets_only_touch_existing_keys() {
        let spec = WorkloadSpec::small();
        let w = generate(&spec);
        let mut existing: std::collections::HashSet<u64> =
            w.load_keys.iter().copied().collect();
        for op in &w.ops {
            match op {
                Op::Get(k) => assert!(existing.contains(k), "GET of missing key"),
                Op::Set(k, _) => {
                    existing.insert(*k);
                }
            }
        }
    }

    #[test]
    fn gets_favor_recent_keys() {
        let spec =
            WorkloadSpec { records: 10_000, operations: 50_000, read_fraction: 0.95, seed: 9 };
        let w = generate(&spec);
        // Count GETs of the most recent 10% of the load range vs the oldest
        // 10%: latest distribution must strongly favor the former.
        let newest: std::collections::HashSet<u64> =
            (9000..10_000).map(key_of_index).collect();
        let oldest: std::collections::HashSet<u64> = (0..1000).map(key_of_index).collect();
        let (mut new_hits, mut old_hits) = (0u64, 0u64);
        for op in &w.ops {
            if let Op::Get(k) = op {
                if newest.contains(k) {
                    new_hits += 1;
                }
                if oldest.contains(k) {
                    old_hits += 1;
                }
            }
        }
        assert!(new_hits > old_hits * 5, "latest skew: {new_hits} vs {old_hits}");
    }

    #[test]
    fn key_mapping_is_injective_over_range() {
        let mut set = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(set.insert(key_of_index(i)));
        }
    }
}
