//! The standard YCSB core workload presets (A–D), beyond the paper's
//! D-like configuration — useful for exploring how the four builds compare
//! under different read/update/insert mixes and key distributions.

use crate::rng::Rng;
use crate::workload::{key_of_index, Op, Workload, Zipfian};

/// YCSB core presets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Preset {
    /// 50 % read / 50 % update, zipfian keys ("update heavy").
    A,
    /// 95 % read / 5 % update, zipfian keys ("read mostly").
    B,
    /// 100 % read, zipfian keys ("read only").
    C,
    /// 95 % read / 5 % insert, latest keys ("read latest") — the paper's
    /// configuration.
    D,
}

impl Preset {
    /// All presets.
    pub const ALL: [Preset; 4] = [Preset::A, Preset::B, Preset::C, Preset::D];

    /// `(read, update, insert)` fractions.
    pub fn mix(self) -> (f64, f64, f64) {
        match self {
            Preset::A => (0.50, 0.50, 0.0),
            Preset::B => (0.95, 0.05, 0.0),
            Preset::C => (1.0, 0.0, 0.0),
            Preset::D => (0.95, 0.0, 0.05),
        }
    }

    /// Preset letter.
    pub fn name(self) -> &'static str {
        match self {
            Preset::A => "A",
            Preset::B => "B",
            Preset::C => "C",
            Preset::D => "D",
        }
    }
}

/// Generates a preset workload over `records` initial keys and
/// `operations` measured operations.
pub fn generate_preset(preset: Preset, records: u64, operations: u64, seed: u64) -> Workload {
    let mut rng = Rng::new(seed);
    let load_keys: Vec<u64> = (0..records).map(key_of_index).collect();
    let (read_f, update_f, _insert_f) = preset.mix();
    let mut inserted = records;
    let mut zipf = Zipfian::new(records);
    let mut ops = Vec::with_capacity(operations as usize);
    for i in 0..operations {
        let dice = rng.f64();
        if dice < read_f {
            let index = match preset {
                // Latest: rank 0 = newest record.
                Preset::D => {
                    if zipf.n() < inserted {
                        zipf = Zipfian::new(inserted);
                    }
                    inserted - 1 - zipf.sample(&mut rng)
                }
                // Zipfian over the whole (static) keyspace: rank = index.
                _ => zipf.sample(&mut rng),
            };
            ops.push(Op::Get(key_of_index(index)));
        } else if dice < read_f + update_f {
            // Update an existing key drawn from the same distribution.
            let index = zipf.sample(&mut rng);
            ops.push(Op::Set(key_of_index(index), i ^ 0xa5a5));
        } else {
            // Insert a brand-new key.
            let key = key_of_index(inserted);
            ops.push(Op::Set(key, key ^ i));
            inserted += 1;
        }
    }
    Workload { load_keys, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvStore;
    use utpr_ds::RbTree;
    use utpr_heap::AddressSpace;
    use utpr_ptr::{ExecEnv, Mode};

    #[test]
    fn preset_mixes_are_respected() {
        for preset in Preset::ALL {
            let w = generate_preset(preset, 500, 10_000, 3);
            let gets = w.ops.iter().filter(|o| matches!(o, Op::Get(_))).count() as f64;
            let (read_f, _, _) = preset.mix();
            let measured = gets / w.ops.len() as f64;
            assert!(
                (measured - read_f).abs() < 0.02,
                "preset {}: read fraction {measured} vs {read_f}",
                preset.name()
            );
        }
    }

    #[test]
    fn workload_c_never_writes() {
        let w = generate_preset(Preset::C, 200, 2_000, 7);
        assert!(w.ops.iter().all(|o| matches!(o, Op::Get(_))));
    }

    #[test]
    fn workload_a_updates_touch_existing_keys() {
        let w = generate_preset(Preset::A, 300, 3_000, 9);
        let keys: std::collections::HashSet<u64> = w.load_keys.iter().copied().collect();
        for op in &w.ops {
            if let Op::Set(k, _) = op {
                assert!(keys.contains(k), "A updates must hit loaded keys");
            }
        }
    }

    #[test]
    fn every_preset_runs_against_the_store_with_full_hit_rate() {
        for preset in Preset::ALL {
            let mut space = AddressSpace::new(11);
            let pool = space.create_pool("ycsb", 16 << 20).unwrap();
            let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
            let mut store: KvStore<RbTree> = KvStore::create(&mut env).unwrap();
            let w = generate_preset(preset, 300, 1_500, 5);
            store.load(&mut env, &w).unwrap();
            let summary = store.run(&mut env, &w).unwrap();
            assert_eq!(summary.hits, summary.gets, "preset {}", preset.name());
        }
    }

    #[test]
    fn zipfian_presets_skew_reads_to_hot_keys() {
        let w = generate_preset(Preset::B, 1_000, 20_000, 13);
        let hot: std::collections::HashSet<u64> = (0..10).map(key_of_index).collect();
        let hot_reads = w
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Get(k) if hot.contains(k)))
            .count() as f64;
        let reads = w.ops.iter().filter(|o| matches!(o, Op::Get(_))).count() as f64;
        assert!(hot_reads / reads > 0.2, "top-10 share {}", hot_reads / reads);
    }
}
