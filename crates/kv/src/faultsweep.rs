//! Systematic crash-point sweep over the data structures.
//!
//! For each structure this module builds a prepopulated pool, counts the
//! durable-write boundaries of a transaction-wrapped insert/remove
//! workload, then re-runs that workload once per crash point with the
//! fault gate armed ([`utpr_heap::FaultState::crash_at`]): the "process"
//! dies at the chosen boundary, [`utpr_heap::crash_and_recover`] restarts
//! the address space and rolls back the torn transaction, and the
//! recovered structure is checked against three oracles:
//!
//! 1. its own invariant validator ([`Index::validate`]),
//! 2. exact contents against the transaction-prefix model the recovered
//!    image must equal (the op being crashed either rolled back or — when
//!    the crash struck its post-commit deferred frees — committed),
//! 3. a mutation probe: the recovered structure must accept an
//!    insert/lookup/remove and validate again.
//!
//! Everything derives from [`SweepSpec::seed`], so a failure reproduces
//! from `(seed, crash point)` alone — the two numbers every
//! [`SweepFailure`] carries.

use crate::harness::Benchmark;
use crate::rng::Rng;
use crate::store::KvStore;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use utpr_ds::{
    AvlTree, BPlusTree, HashMapIndex, Index, LinkedList, RbTree, ScapegoatTree, SplayTree,
};
use utpr_heap::{crash_and_recover, select_points, AddressSpace, FaultState, HeapError, PoolId};
use utpr_ptr::{site, ExecEnv, Mode, NullSink};

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

/// Pool name every sweep uses.
const POOL: &str = "faultsweep";
const POOL_BYTES: u64 = 8 << 20;

/// Shape of one structure's sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepSpec {
    /// Keys inserted before the gate is armed (the committed baseline).
    pub prepopulate: u64,
    /// Transaction-wrapped operations run while armed.
    pub txn_ops: u64,
    /// Boundary counts up to this are swept exhaustively.
    pub exhaustive_limit: u64,
    /// Seeded sample size above the exhaustive limit.
    pub samples: u64,
    /// Master seed: workload, layout, and sampling all derive from it.
    pub seed: u64,
}

impl SweepSpec {
    /// Tier-1 scale: small enough that every boundary is swept.
    pub fn small(seed: u64) -> SweepSpec {
        SweepSpec { prepopulate: 8, txn_ops: 6, exhaustive_limit: u64::MAX, samples: 0, seed }
    }

    /// Bench scale: bigger workload, seeded-sampled crash points.
    pub fn sampled(seed: u64, txn_ops: u64, samples: u64) -> SweepSpec {
        SweepSpec { prepopulate: 64, txn_ops, exhaustive_limit: 0, samples, seed }
    }
}

/// One crash point that did not recover cleanly.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Boundary index the gate was armed at.
    pub crash_point: u64,
    /// The sweep's master seed (set `UTPR_QC_SEED` to this to replay).
    pub seed: u64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash point {} (replay with UTPR_QC_SEED={}): {}",
            self.crash_point, self.seed, self.detail
        )
    }
}

/// What sweeping one structure produced.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Table III name of the structure.
    pub benchmark: &'static str,
    /// Durable-write boundaries the armed workload crosses.
    pub boundaries: u64,
    /// Crash points actually tested (== `boundaries` when exhaustive).
    pub tested: u64,
    /// Recoveries that rolled back a torn transaction.
    pub rollbacks: u64,
    /// Crash points that failed an oracle.
    pub failures: Vec<SweepFailure>,
}

/// Mixes the structure name into the master seed so each structure gets
/// its own deterministic workload and pool layout.
fn structure_seed(seed: u64, name: &str) -> u64 {
    let mut x = seed ^ 0x243f_6a88_85a3_08d3;
    for b in name.bytes() {
        x = (x ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    x
}

// ---- map-structure sweep ---------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
}

fn map_ops(spec: &SweepSpec, seed: u64) -> Vec<MapOp> {
    let mut rng = Rng::new(seed);
    let keyspace = (spec.prepopulate * 2).max(4);
    (0..spec.txn_ops)
        .map(|_| {
            let k = rng.below(keyspace);
            if rng.below(3) == 0 {
                MapOp::Remove(k)
            } else {
                MapOp::Insert(k, rng.next_u64() >> 1)
            }
        })
        .collect()
}

fn fresh_env(space: AddressSpace, pool: PoolId) -> ExecEnv<NullSink> {
    ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build()
}

/// Runs `ops` each inside its own transaction; returns the number that
/// committed and the error (if any) that killed the run.
fn run_map_ops<I: Index>(
    env: &mut ExecEnv<NullSink>,
    store: &mut KvStore<I>,
    ops: &[MapOp],
) -> (usize, Option<HeapError>) {
    for (i, op) in ops.iter().enumerate() {
        let r = env.with_txn(|env| match *op {
            MapOp::Insert(k, v) => store.set(env, k, v).map(|_| ()),
            MapOp::Remove(k) => store.remove(env, k).map(|_| ()),
        });
        if let Err(e) = r {
            return (i, Some(e));
        }
    }
    (ops.len(), None)
}

fn open_store<I: Index>(env: &mut ExecEnv<NullSink>) -> Result<KvStore<I>> {
    let desc = env.root(site!("faultsweep.open-root", KnownReturn))?;
    Ok(KvStore::open(desc))
}

/// Checks the recovered store against `model`: exact length and every key.
fn check_map_contents<I: Index>(
    env: &mut ExecEnv<NullSink>,
    store: &mut KvStore<I>,
    model: &BTreeMap<u64, u64>,
    keyspace: u64,
) -> Result<bool> {
    if store.len(env)? != model.len() as u64 {
        return Ok(false);
    }
    for k in 0..keyspace {
        if store.get(env, k)? != model.get(&k).copied() {
            return Ok(false);
        }
    }
    Ok(true)
}

fn sweep_map<I: Index>(spec: &SweepSpec) -> Result<SweepReport> {
    let sseed = structure_seed(spec.seed, I::NAME);
    let keyspace = (spec.prepopulate * 2).max(4);

    // Base image: prepopulated store, root set, undo log materialized (so
    // its one-time allocation is not part of the armed boundary count).
    let mut space = AddressSpace::new(sseed);
    let pool = space.create_pool(POOL, POOL_BYTES)?;
    let mut env = fresh_env(space, pool);
    let mut store: KvStore<I> = KvStore::create(&mut env)?;
    let mut model = BTreeMap::new();
    let mut rng = Rng::new(sseed ^ 0x517c_c1b7_2722_0a95);
    for _ in 0..spec.prepopulate {
        let k = rng.below(keyspace);
        let v = rng.next_u64() >> 1;
        store.set(&mut env, k, v)?;
        model.insert(k, v);
    }
    env.set_root(site!("faultsweep.set-root", StackLocal), store.index().descriptor())?;
    env.txn_begin()?;
    env.txn_commit()?;
    let (base_space, _, _) = env.into_parts();

    // Transaction-prefix models: models[j] = state after j committed ops.
    let ops = map_ops(spec, sseed ^ 0x9e37_79b9_7f4a_7c15);
    let mut models = vec![model.clone()];
    for op in &ops {
        let mut m = models.last().unwrap().clone();
        match *op {
            MapOp::Insert(k, v) => {
                m.insert(k, v);
            }
            MapOp::Remove(k) => {
                m.remove(&k);
            }
        }
        models.push(m);
    }

    // Count the armed workload's durable-write boundaries.
    let total = {
        let mut env = fresh_env(base_space.clone(), pool);
        env.space_mut().set_faults(FaultState::counting());
        let mut store: KvStore<I> = open_store(&mut env)?;
        let (done, err) = run_map_ops(&mut env, &mut store, &ops);
        if let Some(e) = err {
            return Err(e);
        }
        debug_assert_eq!(done, ops.len());
        env.space().faults().writes()
    };

    let points = select_points(total, spec.exhaustive_limit, spec.samples, spec.seed);
    let mut report = SweepReport {
        benchmark: I::NAME,
        boundaries: total,
        tested: points.len() as u64,
        rollbacks: 0,
        failures: Vec::new(),
    };

    for k in points {
        let mut env = fresh_env(base_space.clone(), pool);
        env.space_mut().set_faults(FaultState::crash_at(k));
        let mut store: KvStore<I> = open_store(&mut env)?;
        let (committed, err) = run_map_ops(&mut env, &mut store, &ops);
        match err {
            Some(HeapError::CrashInjected { .. }) => {}
            Some(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("armed run died of a non-crash error: {e}"),
                });
                continue;
            }
            None => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: "armed run completed without crashing".into(),
                });
                continue;
            }
        }

        let (mut space, _, _) = env.into_parts();
        let rec = match crash_and_recover(&mut space, POOL) {
            Ok(r) => r,
            Err(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("recovery failed: {e}"),
                });
                continue;
            }
        };
        if rec.rolled_back {
            report.rollbacks += 1;
        }

        let mut env = fresh_env(space, rec.pool);
        let mut store: KvStore<I> = open_store(&mut env)?;

        // Oracle 1: the structure's own invariants.
        let desc = store.index().descriptor();
        let validated = catch_unwind(AssertUnwindSafe(|| I::open(desc).validate(&mut env)));
        let count = match validated {
            Ok(Ok(n)) => n,
            Ok(Err(e)) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("validator errored: {e}"),
                });
                continue;
            }
            Err(panic) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("invariant violated: {}", panic_message(&panic)),
                });
                continue;
            }
        };

        // Oracle 2: exact contents. The crashed op either rolled back
        // (state == models[committed]) or the crash struck its deferred
        // post-commit frees (state == models[committed + 1]).
        let candidates = [committed, (committed + 1).min(ops.len())];
        let mut matched = false;
        for &j in &candidates {
            if models[j].len() as u64 == count
                && check_map_contents(&mut env, &mut store, &models[j], keyspace)?
            {
                matched = true;
                break;
            }
        }
        if !matched {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: format!(
                    "recovered contents match no transaction boundary (committed {committed}, count {count})"
                ),
            });
            continue;
        }

        // Oracle 3: the recovered structure still works.
        let probe_key = u64::MAX - 1;
        store.set(&mut env, probe_key, 0xFEED)?;
        if store.get(&mut env, probe_key)? != Some(0xFEED) {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: "post-recovery probe key not readable".into(),
            });
            continue;
        }
        store.remove(&mut env, probe_key)?;
    }
    Ok(report)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".into()
    }
}

// ---- linked-list sweep -----------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum LlOp {
    Push(u64, u64),
    Pop,
}

fn ll_ops(spec: &SweepSpec, seed: u64) -> Vec<LlOp> {
    let mut rng = Rng::new(seed);
    (0..spec.txn_ops)
        .map(|_| {
            if rng.below(3) == 0 {
                LlOp::Pop
            } else {
                LlOp::Push(rng.next_u64() >> 1, rng.next_u64() >> 1)
            }
        })
        .collect()
}

fn run_ll_ops(
    env: &mut ExecEnv<NullSink>,
    list: &mut LinkedList,
    ops: &[LlOp],
) -> (usize, Option<HeapError>) {
    for (i, op) in ops.iter().enumerate() {
        let r = env.with_txn(|env| match *op {
            LlOp::Push(v0, v1) => list.push_back(env, v0, v1),
            LlOp::Pop => list.pop_front(env).map(|_| ()),
        });
        if let Err(e) = r {
            return (i, Some(e));
        }
    }
    (ops.len(), None)
}

fn ll_model_matches(
    env: &mut ExecEnv<NullSink>,
    list: &LinkedList,
    model: &VecDeque<(u64, u64)>,
) -> Result<bool> {
    if list.len(env)? != model.len() as u64 {
        return Ok(false);
    }
    let sum: u64 = model.iter().fold(0u64, |a, (v0, v1)| a.wrapping_add(*v0).wrapping_add(*v1));
    Ok(list.iter_sum(env)? == sum)
}

fn sweep_ll(spec: &SweepSpec) -> Result<SweepReport> {
    let sseed = structure_seed(spec.seed, "LL");

    let mut space = AddressSpace::new(sseed);
    let pool = space.create_pool(POOL, POOL_BYTES)?;
    let mut env = fresh_env(space, pool);
    let mut list = LinkedList::create(&mut env)?;
    let mut model = VecDeque::new();
    let mut rng = Rng::new(sseed ^ 0x517c_c1b7_2722_0a95);
    for _ in 0..spec.prepopulate {
        let (v0, v1) = (rng.next_u64() >> 1, rng.next_u64() >> 1);
        list.push_back(&mut env, v0, v1)?;
        model.push_back((v0, v1));
    }
    env.set_root(site!("faultsweep.ll-root", StackLocal), list.descriptor())?;
    env.txn_begin()?;
    env.txn_commit()?;
    let (base_space, _, _) = env.into_parts();

    let ops = ll_ops(spec, sseed ^ 0x9e37_79b9_7f4a_7c15);
    let mut models = vec![model.clone()];
    for op in &ops {
        let mut m = models.last().unwrap().clone();
        match *op {
            LlOp::Push(v0, v1) => m.push_back((v0, v1)),
            LlOp::Pop => {
                m.pop_front();
            }
        }
        models.push(m);
    }

    let total = {
        let mut env = fresh_env(base_space.clone(), pool);
        env.space_mut().set_faults(FaultState::counting());
        let desc = env.root(site!("faultsweep.ll-count", KnownReturn))?;
        let mut list = LinkedList::open(desc);
        let (done, err) = run_ll_ops(&mut env, &mut list, &ops);
        if let Some(e) = err {
            return Err(e);
        }
        debug_assert_eq!(done, ops.len());
        env.space().faults().writes()
    };

    let points = select_points(total, spec.exhaustive_limit, spec.samples, spec.seed);
    let mut report = SweepReport {
        benchmark: "LL",
        boundaries: total,
        tested: points.len() as u64,
        rollbacks: 0,
        failures: Vec::new(),
    };

    for k in points {
        let mut env = fresh_env(base_space.clone(), pool);
        env.space_mut().set_faults(FaultState::crash_at(k));
        let desc = env.root(site!("faultsweep.ll-armed", KnownReturn))?;
        let mut list = LinkedList::open(desc);
        let (committed, err) = run_ll_ops(&mut env, &mut list, &ops);
        match err {
            Some(HeapError::CrashInjected { .. }) => {}
            Some(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("armed run died of a non-crash error: {e}"),
                });
                continue;
            }
            None => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: "armed run completed without crashing".into(),
                });
                continue;
            }
        }

        let (mut space, _, _) = env.into_parts();
        let rec = match crash_and_recover(&mut space, POOL) {
            Ok(r) => r,
            Err(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("recovery failed: {e}"),
                });
                continue;
            }
        };
        if rec.rolled_back {
            report.rollbacks += 1;
        }

        let mut env = fresh_env(space, rec.pool);
        let desc = env.root(site!("faultsweep.ll-check", KnownReturn))?;
        let list = LinkedList::open(desc);

        let validated = catch_unwind(AssertUnwindSafe(|| list.validate(&mut env)));
        match validated {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("validator errored: {e}"),
                });
                continue;
            }
            Err(panic) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("invariant violated: {}", panic_message(&panic)),
                });
                continue;
            }
        }

        let candidates = [committed, (committed + 1).min(ops.len())];
        let mut matched = false;
        for &j in &candidates {
            if ll_model_matches(&mut env, &list, &models[j])? {
                matched = true;
                break;
            }
        }
        if !matched {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: format!(
                    "recovered list matches no transaction boundary (committed {committed})"
                ),
            });
            continue;
        }

        let mut list = LinkedList::open(desc);
        let before = list.len(&mut env)?;
        list.push_back(&mut env, 1, 2)?;
        if list.len(&mut env)? != before + 1 {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: "post-recovery probe push not visible".into(),
            });
        }
    }
    Ok(report)
}

// ---- dispatch --------------------------------------------------------------

/// Sweeps one structure; see the module docs for the oracle battery.
///
/// # Errors
///
/// Propagates setup failures (workload bugs, not crash-consistency
/// findings — those land in [`SweepReport::failures`]).
pub fn sweep_structure(benchmark: Benchmark, spec: &SweepSpec) -> Result<SweepReport> {
    match benchmark {
        Benchmark::Ll => sweep_ll(spec),
        Benchmark::Hash => sweep_map::<HashMapIndex>(spec),
        Benchmark::Rb => sweep_map::<RbTree>(spec),
        Benchmark::Splay => sweep_map::<SplayTree>(spec),
        Benchmark::Avl => sweep_map::<AvlTree>(spec),
        Benchmark::Sg => sweep_map::<ScapegoatTree>(spec),
        Benchmark::Bplus => sweep_map::<BPlusTree>(spec),
    }
}

/// Sweeps the paper's six structures ([`Benchmark::ALL`]).
///
/// # Errors
///
/// Propagates setup failures from any structure.
pub fn sweep_all(spec: &SweepSpec) -> Result<Vec<SweepReport>> {
    Benchmark::ALL.iter().map(|b| sweep_structure(*b, spec)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_exhaustive_and_clean_for_rb() {
        let spec = SweepSpec::small(7);
        let r = sweep_structure(Benchmark::Rb, &spec).unwrap();
        assert_eq!(r.tested, r.boundaries, "small scale sweeps every boundary");
        assert!(r.boundaries > 0);
        assert!(r.rollbacks > 0, "some crash points must tear a transaction");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn small_sweep_is_clean_for_ll() {
        let spec = SweepSpec::small(7);
        let r = sweep_structure(Benchmark::Ll, &spec).unwrap();
        assert_eq!(r.tested, r.boundaries);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn sweep_is_deterministic_under_a_fixed_seed() {
        let spec = SweepSpec::small(42);
        let a = sweep_structure(Benchmark::Hash, &spec).unwrap();
        let b = sweep_structure(Benchmark::Hash, &spec).unwrap();
        assert_eq!(a.boundaries, b.boundaries);
        assert_eq!(a.tested, b.tested);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn sampled_sweep_respects_the_sample_budget() {
        let spec = SweepSpec::sampled(11, 24, 16);
        let r = sweep_structure(Benchmark::Avl, &spec).unwrap();
        assert!(r.tested <= r.boundaries);
        assert!(r.tested >= 2, "edges always covered");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }
}
