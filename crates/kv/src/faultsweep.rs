//! Systematic crash-point and media-fault sweeps over the data structures.
//!
//! For each structure this module builds a prepopulated pool, counts the
//! durable-write boundaries of a transaction-wrapped insert/remove
//! workload, then re-runs that workload once per crash point with the
//! fault gate armed ([`utpr_heap::FaultPlan::crash_at`]): the "process"
//! dies at the chosen boundary, [`utpr_heap::crash_and_recover`] restarts
//! the address space and rolls back the torn transaction, and the
//! recovered structure is checked against three oracles:
//!
//! 1. its own invariant validator ([`Index::validate`]),
//! 2. exact contents against the transaction-prefix model the recovered
//!    image must equal (the op being crashed either rolled back or — when
//!    the crash struck its post-commit deferred frees — committed),
//! 3. a mutation probe: the recovered structure must accept an
//!    insert/lookup/remove and validate again.
//!
//! Two media-fault variants ride on the same machinery:
//!
//! * **Torn sweeps** ([`SweepSpec::torn`]) run the armed workload under
//!   the ADR flush model with [`utpr_heap::FaultPlan::torn_at`]: the
//!   in-flight durable write at the crash boundary lands partially (a
//!   seeded subset of its 8-byte words), and every unfenced line drains
//!   word-by-lottery at restart. The oracle battery is unchanged — the
//!   undo log's fence discipline must make recovery exact — except that a
//!   *typed* corruption error from recovery counts as detected, never as
//!   a silent failure.
//! * **Bit-flip campaigns** ([`bitflip_campaign`]) inject seeded retention
//!   errors into pool pages between detach and re-attach. With CRC
//!   integrity on, re-attach must fail with
//!   [`utpr_heap::HeapError::MediaCorruption`]; the campaign then walks
//!   the quarantine → salvage → reseal path and reports recovered vs
//!   lost keys. With CRC off, the same flips measure the silent-wrong
//!   rate the integrity layer exists to prevent.
//!
//! Everything derives from [`SweepSpec::seed`], so a failure reproduces
//! from `(seed, crash point)` alone — the two numbers every
//! [`SweepFailure`] carries.

use crate::harness::Benchmark;
use crate::rng::Rng;
use crate::store::KvStore;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use utpr_ds::{
    AvlTree, BPlusTree, HashMapIndex, Index, LinkedList, RbTree, ScapegoatTree, SplayTree,
};
use utpr_heap::{
    crash_and_recover, select_points, AddressSpace, FaultPlan, FlushModel, HeapError,
    IntegrityMode, PoolId, Region, SalvageStats,
};
use utpr_ptr::{site, ExecEnv, Mode, NullSink};

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

/// Pool name every sweep uses.
const POOL: &str = "faultsweep";
const POOL_BYTES: u64 = 8 << 20;

/// What kind of media fault the armed run injects at the crash boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultFlavor {
    /// Clean power loss: the in-flight durable write is wholly suppressed.
    Crash,
    /// Torn power loss under ADR: the in-flight write lands, then every
    /// unfenced cache line drains a seeded subset of its 8-byte words.
    Torn,
}

/// Shape of one structure's sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepSpec {
    /// Keys inserted before the gate is armed (the committed baseline).
    pub prepopulate: u64,
    /// Transaction-wrapped operations run while armed.
    pub txn_ops: u64,
    /// Boundary counts up to this are swept exhaustively.
    pub exhaustive_limit: u64,
    /// Seeded sample size above the exhaustive limit.
    pub samples: u64,
    /// Master seed: workload, layout, and sampling all derive from it.
    pub seed: u64,
    /// Whether crashes are clean or torn.
    pub flavor: FaultFlavor,
}

impl SweepSpec {
    /// Tier-1 scale: small enough that every boundary is swept.
    pub fn small(seed: u64) -> SweepSpec {
        SweepSpec {
            prepopulate: 8,
            txn_ops: 6,
            exhaustive_limit: u64::MAX,
            samples: 0,
            seed,
            flavor: FaultFlavor::Crash,
        }
    }

    /// Bench scale: bigger workload, seeded-sampled crash points.
    pub fn sampled(seed: u64, txn_ops: u64, samples: u64) -> SweepSpec {
        SweepSpec {
            prepopulate: 64,
            txn_ops,
            exhaustive_limit: 0,
            samples,
            seed,
            flavor: FaultFlavor::Crash,
        }
    }

    /// Switches the sweep to torn-write crashes under the ADR flush model.
    #[must_use]
    pub fn torn(mut self) -> SweepSpec {
        self.flavor = FaultFlavor::Torn;
        self
    }
}

/// Arms the fault gate for crash point `k` according to the spec's flavor.
fn arm(env: &mut ExecEnv<NullSink>, spec: &SweepSpec, k: u64) {
    match spec.flavor {
        FaultFlavor::Crash => env.space_mut().set_faults(FaultPlan::crash_at(k)),
        FaultFlavor::Torn => {
            // ADR: durable writes pend per cache line until a fence; the
            // torn seed decides which pending words survive the drain.
            env.space_mut().set_flush_model(FlushModel::Adr);
            let tseed = spec.seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            env.space_mut().set_faults(FaultPlan::torn_at(k, tseed));
        }
    }
}

/// In torn mode a *typed* corruption error from recovery is an acceptable
/// (detected, not silent) outcome; in clean-crash mode it is a bug.
fn is_detected_corruption(spec: &SweepSpec, e: &HeapError) -> bool {
    spec.flavor == FaultFlavor::Torn
        && matches!(
            e,
            HeapError::MediaCorruption { .. }
                | HeapError::BadPoolHeader { .. }
                | HeapError::CorruptRegion(_)
        )
}

/// One crash point that did not recover cleanly.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Boundary index the gate was armed at.
    pub crash_point: u64,
    /// The sweep's master seed (set `UTPR_QC_SEED` to this to replay).
    pub seed: u64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash point {} (replay with UTPR_QC_SEED={}): {}",
            self.crash_point, self.seed, self.detail
        )
    }
}

/// What sweeping one structure produced.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Table III name of the structure.
    pub benchmark: &'static str,
    /// Durable-write boundaries the armed workload crosses.
    pub boundaries: u64,
    /// Crash points actually tested (== `boundaries` when exhaustive).
    pub tested: u64,
    /// Recoveries that rolled back a torn transaction.
    pub rollbacks: u64,
    /// Crash points where recovery surfaced a typed corruption error
    /// (torn flavor only — detected damage, not a silent wrong answer).
    pub detected: u64,
    /// Crash points that failed an oracle.
    pub failures: Vec<SweepFailure>,
}

/// Mixes the structure name into the master seed so each structure gets
/// its own deterministic workload and pool layout.
fn structure_seed(seed: u64, name: &str) -> u64 {
    let mut x = seed ^ 0x243f_6a88_85a3_08d3;
    for b in name.bytes() {
        x = (x ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    x
}

// ---- map-structure sweep ---------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
}

fn map_ops(spec: &SweepSpec, seed: u64) -> Vec<MapOp> {
    let mut rng = Rng::new(seed);
    let keyspace = (spec.prepopulate * 2).max(4);
    (0..spec.txn_ops)
        .map(|_| {
            let k = rng.below(keyspace);
            if rng.below(3) == 0 {
                MapOp::Remove(k)
            } else {
                MapOp::Insert(k, rng.next_u64() >> 1)
            }
        })
        .collect()
}

fn fresh_env(space: AddressSpace, pool: PoolId) -> ExecEnv<NullSink> {
    ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build()
}

/// Runs `ops` each inside its own transaction; returns the number that
/// committed and the error (if any) that killed the run.
fn run_map_ops<I: Index>(
    env: &mut ExecEnv<NullSink>,
    store: &mut KvStore<I>,
    ops: &[MapOp],
) -> (usize, Option<HeapError>) {
    for (i, op) in ops.iter().enumerate() {
        let r = env.with_txn(|env| match *op {
            MapOp::Insert(k, v) => store.set(env, k, v).map(|_| ()),
            MapOp::Remove(k) => store.remove(env, k).map(|_| ()),
        });
        if let Err(e) = r {
            return (i, Some(e));
        }
    }
    (ops.len(), None)
}

fn open_store<I: Index>(env: &mut ExecEnv<NullSink>) -> Result<KvStore<I>> {
    let desc = env.root(site!("faultsweep.open-root", KnownReturn))?;
    Ok(KvStore::open(desc))
}

/// Checks the recovered store against `model`: exact length and every key.
fn check_map_contents<I: Index>(
    env: &mut ExecEnv<NullSink>,
    store: &mut KvStore<I>,
    model: &BTreeMap<u64, u64>,
    keyspace: u64,
) -> Result<bool> {
    if store.len(env)? != model.len() as u64 {
        return Ok(false);
    }
    for k in 0..keyspace {
        if store.get(env, k)? != model.get(&k).copied() {
            return Ok(false);
        }
    }
    Ok(true)
}

fn sweep_map<I: Index>(spec: &SweepSpec) -> Result<SweepReport> {
    let sseed = structure_seed(spec.seed, I::NAME);
    let keyspace = (spec.prepopulate * 2).max(4);

    // Base image: prepopulated store, root set, undo log materialized (so
    // its one-time allocation is not part of the armed boundary count).
    let mut space = AddressSpace::new(sseed);
    let pool = space.create_pool(POOL, POOL_BYTES)?;
    let mut env = fresh_env(space, pool);
    let mut store: KvStore<I> = KvStore::create(&mut env)?;
    let mut model = BTreeMap::new();
    let mut rng = Rng::new(sseed ^ 0x517c_c1b7_2722_0a95);
    for _ in 0..spec.prepopulate {
        let k = rng.below(keyspace);
        let v = rng.next_u64() >> 1;
        store.set(&mut env, k, v)?;
        model.insert(k, v);
    }
    env.set_root(site!("faultsweep.set-root", StackLocal), store.index().descriptor())?;
    env.with_txn(|_| Ok(()))?; // materialize the undo log outside the armed count
    let (base_space, _, _) = env.into_parts();

    // Transaction-prefix models: models[j] = state after j committed ops.
    let ops = map_ops(spec, sseed ^ 0x9e37_79b9_7f4a_7c15);
    let mut models = vec![model.clone()];
    for op in &ops {
        let mut m = models.last().unwrap().clone();
        match *op {
            MapOp::Insert(k, v) => {
                m.insert(k, v);
            }
            MapOp::Remove(k) => {
                m.remove(&k);
            }
        }
        models.push(m);
    }

    // Count the armed workload's durable-write boundaries.
    let total = {
        let mut env = fresh_env(base_space.clone(), pool);
        env.space_mut().set_faults(FaultPlan::counting());
        let mut store: KvStore<I> = open_store(&mut env)?;
        let (done, err) = run_map_ops(&mut env, &mut store, &ops);
        if let Some(e) = err {
            return Err(e);
        }
        debug_assert_eq!(done, ops.len());
        env.space().faults().writes()
    };

    let points = select_points(total, spec.exhaustive_limit, spec.samples, spec.seed);
    let mut report = SweepReport {
        benchmark: I::NAME,
        boundaries: total,
        tested: points.len() as u64,
        rollbacks: 0,
        detected: 0,
        failures: Vec::new(),
    };

    for k in points {
        let mut env = fresh_env(base_space.clone(), pool);
        arm(&mut env, spec, k);
        let mut store: KvStore<I> = open_store(&mut env)?;
        let (committed, err) = run_map_ops(&mut env, &mut store, &ops);
        match err {
            Some(HeapError::CrashInjected { .. }) => {}
            Some(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("armed run died of a non-crash error: {e}"),
                });
                continue;
            }
            None => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: "armed run completed without crashing".into(),
                });
                continue;
            }
        }

        let (mut space, _, _) = env.into_parts();
        let rec = match crash_and_recover(&mut space, POOL) {
            Ok(r) => r,
            Err(e) if is_detected_corruption(spec, &e) => {
                report.detected += 1;
                continue;
            }
            Err(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("recovery failed: {e}"),
                });
                continue;
            }
        };
        if rec.rolled_back {
            report.rollbacks += 1;
        }

        let mut env = fresh_env(space, rec.pool);
        let mut store: KvStore<I> = open_store(&mut env)?;

        // Oracle 1: the structure's own invariants.
        let desc = store.index().descriptor();
        let validated = catch_unwind(AssertUnwindSafe(|| I::open(desc).validate(&mut env)));
        let count = match validated {
            Ok(Ok(n)) => n,
            Ok(Err(e)) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("validator errored: {e}"),
                });
                continue;
            }
            Err(panic) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("invariant violated: {}", panic_message(&panic)),
                });
                continue;
            }
        };

        // Oracle 2: exact contents. The crashed op either rolled back
        // (state == models[committed]) or the crash struck its deferred
        // post-commit frees (state == models[committed + 1]).
        let candidates = [committed, (committed + 1).min(ops.len())];
        let mut matched = false;
        for &j in &candidates {
            if models[j].len() as u64 == count
                && check_map_contents(&mut env, &mut store, &models[j], keyspace)?
            {
                matched = true;
                break;
            }
        }
        if !matched {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: format!(
                    "recovered contents match no transaction boundary (committed {committed}, count {count})"
                ),
            });
            continue;
        }

        // Oracle 3: the recovered structure still works.
        let probe_key = u64::MAX - 1;
        store.set(&mut env, probe_key, 0xFEED)?;
        if store.get(&mut env, probe_key)? != Some(0xFEED) {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: "post-recovery probe key not readable".into(),
            });
            continue;
        }
        store.remove(&mut env, probe_key)?;
    }
    Ok(report)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".into()
    }
}

// ---- linked-list sweep -----------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum LlOp {
    Push(u64, u64),
    Pop,
}

fn ll_ops(spec: &SweepSpec, seed: u64) -> Vec<LlOp> {
    let mut rng = Rng::new(seed);
    (0..spec.txn_ops)
        .map(|_| {
            if rng.below(3) == 0 {
                LlOp::Pop
            } else {
                LlOp::Push(rng.next_u64() >> 1, rng.next_u64() >> 1)
            }
        })
        .collect()
}

fn run_ll_ops(
    env: &mut ExecEnv<NullSink>,
    list: &mut LinkedList,
    ops: &[LlOp],
) -> (usize, Option<HeapError>) {
    for (i, op) in ops.iter().enumerate() {
        let r = env.with_txn(|env| match *op {
            LlOp::Push(v0, v1) => list.push_back(env, v0, v1),
            LlOp::Pop => list.pop_front(env).map(|_| ()),
        });
        if let Err(e) = r {
            return (i, Some(e));
        }
    }
    (ops.len(), None)
}

fn ll_model_matches(
    env: &mut ExecEnv<NullSink>,
    list: &LinkedList,
    model: &VecDeque<(u64, u64)>,
) -> Result<bool> {
    if list.len(env)? != model.len() as u64 {
        return Ok(false);
    }
    let sum: u64 = model.iter().fold(0u64, |a, (v0, v1)| a.wrapping_add(*v0).wrapping_add(*v1));
    Ok(list.iter_sum(env)? == sum)
}

fn sweep_ll(spec: &SweepSpec) -> Result<SweepReport> {
    let sseed = structure_seed(spec.seed, "LL");

    let mut space = AddressSpace::new(sseed);
    let pool = space.create_pool(POOL, POOL_BYTES)?;
    let mut env = fresh_env(space, pool);
    let mut list = LinkedList::create(&mut env)?;
    let mut model = VecDeque::new();
    let mut rng = Rng::new(sseed ^ 0x517c_c1b7_2722_0a95);
    for _ in 0..spec.prepopulate {
        let (v0, v1) = (rng.next_u64() >> 1, rng.next_u64() >> 1);
        list.push_back(&mut env, v0, v1)?;
        model.push_back((v0, v1));
    }
    env.set_root(site!("faultsweep.ll-root", StackLocal), list.descriptor())?;
    env.with_txn(|_| Ok(()))?; // materialize the undo log outside the armed count
    let (base_space, _, _) = env.into_parts();

    let ops = ll_ops(spec, sseed ^ 0x9e37_79b9_7f4a_7c15);
    let mut models = vec![model.clone()];
    for op in &ops {
        let mut m = models.last().unwrap().clone();
        match *op {
            LlOp::Push(v0, v1) => m.push_back((v0, v1)),
            LlOp::Pop => {
                m.pop_front();
            }
        }
        models.push(m);
    }

    let total = {
        let mut env = fresh_env(base_space.clone(), pool);
        env.space_mut().set_faults(FaultPlan::counting());
        let desc = env.root(site!("faultsweep.ll-count", KnownReturn))?;
        let mut list = LinkedList::open(desc);
        let (done, err) = run_ll_ops(&mut env, &mut list, &ops);
        if let Some(e) = err {
            return Err(e);
        }
        debug_assert_eq!(done, ops.len());
        env.space().faults().writes()
    };

    let points = select_points(total, spec.exhaustive_limit, spec.samples, spec.seed);
    let mut report = SweepReport {
        benchmark: "LL",
        boundaries: total,
        tested: points.len() as u64,
        rollbacks: 0,
        detected: 0,
        failures: Vec::new(),
    };

    for k in points {
        let mut env = fresh_env(base_space.clone(), pool);
        arm(&mut env, spec, k);
        let desc = env.root(site!("faultsweep.ll-armed", KnownReturn))?;
        let mut list = LinkedList::open(desc);
        let (committed, err) = run_ll_ops(&mut env, &mut list, &ops);
        match err {
            Some(HeapError::CrashInjected { .. }) => {}
            Some(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("armed run died of a non-crash error: {e}"),
                });
                continue;
            }
            None => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: "armed run completed without crashing".into(),
                });
                continue;
            }
        }

        let (mut space, _, _) = env.into_parts();
        let rec = match crash_and_recover(&mut space, POOL) {
            Ok(r) => r,
            Err(e) if is_detected_corruption(spec, &e) => {
                report.detected += 1;
                continue;
            }
            Err(e) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("recovery failed: {e}"),
                });
                continue;
            }
        };
        if rec.rolled_back {
            report.rollbacks += 1;
        }

        let mut env = fresh_env(space, rec.pool);
        let desc = env.root(site!("faultsweep.ll-check", KnownReturn))?;
        let list = LinkedList::open(desc);

        let validated = catch_unwind(AssertUnwindSafe(|| list.validate(&mut env)));
        match validated {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("validator errored: {e}"),
                });
                continue;
            }
            Err(panic) => {
                report.failures.push(SweepFailure {
                    crash_point: k,
                    seed: spec.seed,
                    detail: format!("invariant violated: {}", panic_message(&panic)),
                });
                continue;
            }
        }

        let candidates = [committed, (committed + 1).min(ops.len())];
        let mut matched = false;
        for &j in &candidates {
            if ll_model_matches(&mut env, &list, &models[j])? {
                matched = true;
                break;
            }
        }
        if !matched {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: format!(
                    "recovered list matches no transaction boundary (committed {committed})"
                ),
            });
            continue;
        }

        let mut list = LinkedList::open(desc);
        let before = list.len(&mut env)?;
        list.push_back(&mut env, 1, 2)?;
        if list.len(&mut env)? != before + 1 {
            report.failures.push(SweepFailure {
                crash_point: k,
                seed: spec.seed,
                detail: "post-recovery probe push not visible".into(),
            });
        }
    }
    Ok(report)
}

// ---- bit-flip retention campaign -------------------------------------------

/// Shape of one structure's bit-flip (retention-error) campaign.
#[derive(Clone, Copy, Debug)]
pub struct BitflipSpec {
    /// Keys inserted (and quiesced) before the simulated power-off.
    pub prepopulate: u64,
    /// Bit flips injected into resident pool pages per trial.
    pub flips: u64,
    /// Independent trials, each with a fresh pool and fresh flip sites.
    pub trials: u64,
    /// Master seed: workload, layout, and flip sites all derive from it.
    pub seed: u64,
    /// Whether the pool keeps CRC page sidecars (the detection layer).
    pub crc: bool,
}

impl BitflipSpec {
    /// Tier-1 scale, CRC on.
    pub fn small(seed: u64) -> BitflipSpec {
        BitflipSpec { prepopulate: 24, flips: 3, trials: 8, seed, crc: true }
    }

    /// Same campaign with the integrity layer off — the baseline arm that
    /// measures the silent-wrong rate CRC exists to prevent.
    #[must_use]
    pub fn crc_off(mut self) -> BitflipSpec {
        self.crc = false;
        self
    }
}

/// What a bit-flip campaign produced.
#[derive(Clone, Debug)]
pub struct BitflipReport {
    /// Table III name of the structure.
    pub benchmark: &'static str,
    /// Trials run.
    pub trials: u64,
    /// Trials where the damage surfaced as an error — `MediaCorruption`
    /// at re-attach, or a typed error / validator panic during probing.
    pub detected: u64,
    /// Trials that returned a wrong answer with no error at all. Data in
    /// the CRC-off arm; an oracle failure when CRC is on.
    pub silent_wrong: u64,
    /// Trials where every key read back correctly (flips cancelled or hit
    /// slack bytes).
    pub clean: u64,
    /// Keys proven intact by the post-salvage probe (detected trials).
    pub recovered_keys: u64,
    /// Keys the damage took with it (detected trials).
    pub lost_keys: u64,
    /// Accumulated recovered-vs-lost block accounting across the salvage
    /// walks — the same [`SalvageStats`] the online scrubber reports, so
    /// the two recovery paths can never diverge on what "recovered"
    /// means.
    pub salvage: SalvageStats,
    /// Oracle violations (always empty when the integrity layer works).
    pub failures: Vec<SweepFailure>,
}

/// How one probe of a recovered image went.
enum Probe {
    /// Every key matched the model.
    Clean,
    /// At least one wrong answer with no error raised.
    Wrong(u64),
    /// A typed error or panic surfaced while probing — noisy, not silent.
    Errored,
}

fn probe_map<I: Index>(
    env: &mut ExecEnv<NullSink>,
    model: &BTreeMap<u64, u64>,
    keyspace: u64,
) -> Probe {
    let mut wrong = 0u64;
    let mut errored = false;
    for k in 0..keyspace {
        let r = catch_unwind(AssertUnwindSafe(|| -> Result<Option<u64>> {
            let desc = env.root(site!("faultsweep.flip-probe", KnownReturn))?;
            let mut store = KvStore::<I>::open(desc);
            store.get(env, k)
        }));
        match r {
            Ok(Ok(got)) => {
                if got != model.get(&k).copied() {
                    wrong += 1;
                }
            }
            _ => errored = true,
        }
    }
    let validated = catch_unwind(AssertUnwindSafe(|| -> Result<u64> {
        let desc = env.root(site!("faultsweep.flip-validate", KnownReturn))?;
        I::open(desc).validate(env)
    }));
    match validated {
        Ok(Ok(n)) if n != model.len() as u64 => wrong += 1,
        Ok(Ok(_)) => {}
        _ => errored = true,
    }
    if errored {
        Probe::Errored
    } else if wrong > 0 {
        Probe::Wrong(wrong)
    } else {
        Probe::Clean
    }
}

/// Walks the degraded path after detected corruption: salvage the
/// allocator substrate, bless the damage (`release` + `reseal`), re-attach,
/// and count which keys survived.
fn salvage_and_probe<I: Index>(
    mut space: AddressSpace,
    model: &BTreeMap<u64, u64>,
    report: &mut BitflipReport,
) -> Result<()> {
    let id = space.pool_store().id_of(POOL)?;
    {
        let img = space.pool_store().peek(id)?;
        let salv = Region::salvage(img.data(), img.size());
        report.salvage.merge(&salv.stats());
    }
    space.pool_store_mut().release(id);
    space.pool_store_mut().reseal(id)?;
    let pool = match space.open_pool(POOL) {
        Ok(p) => p,
        // The flip hit the pool header itself; nothing is reachable.
        Err(_) => {
            report.lost_keys += model.len() as u64;
            return Ok(());
        }
    };
    let mut env = fresh_env(space, pool);
    for (k, v) in model {
        let got = catch_unwind(AssertUnwindSafe(|| -> Result<Option<u64>> {
            let desc = env.root(site!("faultsweep.flip-salvage", KnownReturn))?;
            let mut store = KvStore::<I>::open(desc);
            store.get(&mut env, *k)
        }));
        match got {
            Ok(Ok(Some(x))) if x == *v => report.recovered_keys += 1,
            _ => report.lost_keys += 1,
        }
    }
    Ok(())
}

fn bitflip_map<I: Index>(spec: &BitflipSpec) -> Result<BitflipReport> {
    let sseed = structure_seed(spec.seed, I::NAME);
    let keyspace = (spec.prepopulate * 2).max(4);
    let mut report = BitflipReport {
        benchmark: I::NAME,
        trials: spec.trials,
        detected: 0,
        silent_wrong: 0,
        clean: 0,
        recovered_keys: 0,
        lost_keys: 0,
        salvage: SalvageStats::default(),
        failures: Vec::new(),
    };

    for t in 0..spec.trials {
        let tseed = sseed ^ (t.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
        let mut space = AddressSpace::new(tseed);
        space.set_integrity(if spec.crc { IntegrityMode::Crc } else { IntegrityMode::Off });
        let pool = space.create_pool(POOL, POOL_BYTES)?;
        let mut env = fresh_env(space, pool);
        let mut store: KvStore<I> = KvStore::create(&mut env)?;
        let mut model = BTreeMap::new();
        let mut rng = Rng::new(tseed ^ 0x517c_c1b7_2722_0a95);
        for _ in 0..spec.prepopulate {
            let k = rng.below(keyspace);
            let v = rng.next_u64() >> 1;
            store.set(&mut env, k, v)?;
            model.insert(k, v);
        }
        env.set_root(site!("faultsweep.flip-root", StackLocal), store.index().descriptor())?;
        env.with_txn(|_| Ok(()))?; // materialize the undo log
        let (mut space, _, _) = env.into_parts();

        // Power off with retention errors queued for the off window.
        space.set_faults(
            FaultPlan::counting().with_bitflips(tseed ^ 0xf11b_f11b, spec.flips),
        );
        match crash_and_recover(&mut space, POOL) {
            Ok(rec) => {
                let mut env = fresh_env(space, rec.pool);
                match probe_map::<I>(&mut env, &model, keyspace) {
                    Probe::Clean => report.clean += 1,
                    Probe::Errored => report.detected += 1,
                    Probe::Wrong(n) => {
                        report.silent_wrong += 1;
                        if spec.crc {
                            report.failures.push(SweepFailure {
                                crash_point: t,
                                seed: spec.seed,
                                detail: format!(
                                    "CRC on, yet {n} wrong answers surfaced with no error"
                                ),
                            });
                        }
                    }
                }
            }
            Err(
                HeapError::MediaCorruption { .. }
                | HeapError::CorruptRegion(_)
                | HeapError::BadPoolHeader { .. },
            ) => {
                // Typed detection: the CRC sidecar at re-attach, or the
                // hardened allocator/header validation underneath it.
                report.detected += 1;
                salvage_and_probe::<I>(space, &model, &mut report)?;
            }
            Err(e) => {
                report.failures.push(SweepFailure {
                    crash_point: t,
                    seed: spec.seed,
                    detail: format!("power-off recovery failed unexpectedly: {e}"),
                });
            }
        }
    }
    Ok(report)
}

fn bitflip_ll(spec: &BitflipSpec) -> Result<BitflipReport> {
    let sseed = structure_seed(spec.seed, "LL");
    let mut report = BitflipReport {
        benchmark: "LL",
        trials: spec.trials,
        detected: 0,
        silent_wrong: 0,
        clean: 0,
        recovered_keys: 0,
        lost_keys: 0,
        salvage: SalvageStats::default(),
        failures: Vec::new(),
    };

    for t in 0..spec.trials {
        let tseed = sseed ^ (t.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
        let mut space = AddressSpace::new(tseed);
        space.set_integrity(if spec.crc { IntegrityMode::Crc } else { IntegrityMode::Off });
        let pool = space.create_pool(POOL, POOL_BYTES)?;
        let mut env = fresh_env(space, pool);
        let mut list = LinkedList::create(&mut env)?;
        let mut model = VecDeque::new();
        let mut rng = Rng::new(tseed ^ 0x517c_c1b7_2722_0a95);
        for _ in 0..spec.prepopulate {
            let (v0, v1) = (rng.next_u64() >> 1, rng.next_u64() >> 1);
            list.push_back(&mut env, v0, v1)?;
            model.push_back((v0, v1));
        }
        env.set_root(site!("faultsweep.flip-ll-root", StackLocal), list.descriptor())?;
        env.with_txn(|_| Ok(()))?;
        let (mut space, _, _) = env.into_parts();

        space.set_faults(
            FaultPlan::counting().with_bitflips(tseed ^ 0xf11b_f11b, spec.flips),
        );
        // Whole-structure accounting: a list either survives its probe or
        // its elements are written off together.
        let probe_list = |env: &mut ExecEnv<NullSink>| -> Probe {
            let r = catch_unwind(AssertUnwindSafe(|| -> Result<bool> {
                let desc = env.root(site!("faultsweep.flip-ll-probe", KnownReturn))?;
                let list = LinkedList::open(desc);
                list.validate(env)?;
                let sum: u64 = model
                    .iter()
                    .fold(0u64, |a, (v0, v1)| a.wrapping_add(*v0).wrapping_add(*v1));
                Ok(list.len(env)? == model.len() as u64 && list.iter_sum(env)? == sum)
            }));
            match r {
                Ok(Ok(true)) => Probe::Clean,
                Ok(Ok(false)) => Probe::Wrong(1),
                _ => Probe::Errored,
            }
        };
        match crash_and_recover(&mut space, POOL) {
            Ok(rec) => {
                let mut env = fresh_env(space, rec.pool);
                match probe_list(&mut env) {
                    Probe::Clean => report.clean += 1,
                    Probe::Errored => report.detected += 1,
                    Probe::Wrong(_) => {
                        report.silent_wrong += 1;
                        if spec.crc {
                            report.failures.push(SweepFailure {
                                crash_point: t,
                                seed: spec.seed,
                                detail: "CRC on, yet the list silently lost elements".into(),
                            });
                        }
                    }
                }
            }
            Err(
                HeapError::MediaCorruption { .. }
                | HeapError::CorruptRegion(_)
                | HeapError::BadPoolHeader { .. },
            ) => {
                report.detected += 1;
                let id = space.pool_store().id_of(POOL)?;
                {
                    let img = space.pool_store().peek(id)?;
                    let salv = Region::salvage(img.data(), img.size());
                    report.salvage.merge(&salv.stats());
                }
                space.pool_store_mut().release(id);
                space.pool_store_mut().reseal(id)?;
                match space.open_pool(POOL) {
                    Ok(pool) => {
                        let mut env = fresh_env(space, pool);
                        match probe_list(&mut env) {
                            Probe::Clean => report.recovered_keys += model.len() as u64,
                            _ => report.lost_keys += model.len() as u64,
                        }
                    }
                    Err(_) => report.lost_keys += model.len() as u64,
                }
            }
            Err(e) => {
                report.failures.push(SweepFailure {
                    crash_point: t,
                    seed: spec.seed,
                    detail: format!("power-off recovery failed unexpectedly: {e}"),
                });
            }
        }
    }
    Ok(report)
}

/// Runs the bit-flip retention campaign for one structure.
///
/// # Errors
///
/// Propagates setup failures (campaign findings land in
/// [`BitflipReport::failures`]).
pub fn bitflip_campaign(benchmark: Benchmark, spec: &BitflipSpec) -> Result<BitflipReport> {
    match benchmark {
        Benchmark::Ll => bitflip_ll(spec),
        Benchmark::Hash => bitflip_map::<HashMapIndex>(spec),
        Benchmark::Rb => bitflip_map::<RbTree>(spec),
        Benchmark::Splay => bitflip_map::<SplayTree>(spec),
        Benchmark::Avl => bitflip_map::<AvlTree>(spec),
        Benchmark::Sg => bitflip_map::<ScapegoatTree>(spec),
        Benchmark::Bplus => bitflip_map::<BPlusTree>(spec),
    }
}

/// Runs the bit-flip campaign for the paper's six structures.
///
/// # Errors
///
/// Propagates setup failures from any structure.
pub fn bitflip_all(spec: &BitflipSpec) -> Result<Vec<BitflipReport>> {
    Benchmark::ALL.iter().map(|b| bitflip_campaign(*b, spec)).collect()
}

// ---- dispatch --------------------------------------------------------------

/// Sweeps one structure; see the module docs for the oracle battery.
///
/// # Errors
///
/// Propagates setup failures (workload bugs, not crash-consistency
/// findings — those land in [`SweepReport::failures`]).
pub fn sweep_structure(benchmark: Benchmark, spec: &SweepSpec) -> Result<SweepReport> {
    match benchmark {
        Benchmark::Ll => sweep_ll(spec),
        Benchmark::Hash => sweep_map::<HashMapIndex>(spec),
        Benchmark::Rb => sweep_map::<RbTree>(spec),
        Benchmark::Splay => sweep_map::<SplayTree>(spec),
        Benchmark::Avl => sweep_map::<AvlTree>(spec),
        Benchmark::Sg => sweep_map::<ScapegoatTree>(spec),
        Benchmark::Bplus => sweep_map::<BPlusTree>(spec),
    }
}

/// Sweeps the paper's six structures ([`Benchmark::ALL`]).
///
/// # Errors
///
/// Propagates setup failures from any structure.
pub fn sweep_all(spec: &SweepSpec) -> Result<Vec<SweepReport>> {
    Benchmark::ALL.iter().map(|b| sweep_structure(*b, spec)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_exhaustive_and_clean_for_rb() {
        let spec = SweepSpec::small(7);
        let r = sweep_structure(Benchmark::Rb, &spec).unwrap();
        assert_eq!(r.tested, r.boundaries, "small scale sweeps every boundary");
        assert!(r.boundaries > 0);
        assert!(r.rollbacks > 0, "some crash points must tear a transaction");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn small_sweep_is_clean_for_ll() {
        let spec = SweepSpec::small(7);
        let r = sweep_structure(Benchmark::Ll, &spec).unwrap();
        assert_eq!(r.tested, r.boundaries);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn sweep_is_deterministic_under_a_fixed_seed() {
        let spec = SweepSpec::small(42);
        let a = sweep_structure(Benchmark::Hash, &spec).unwrap();
        let b = sweep_structure(Benchmark::Hash, &spec).unwrap();
        assert_eq!(a.boundaries, b.boundaries);
        assert_eq!(a.tested, b.tested);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn torn_small_sweep_is_exhaustive_and_silent_free_for_rb() {
        let spec = SweepSpec::small(7).torn();
        let r = sweep_structure(Benchmark::Rb, &spec).unwrap();
        assert_eq!(r.tested, r.boundaries, "small scale sweeps every boundary");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn torn_small_sweep_is_silent_free_for_ll() {
        let spec = SweepSpec::small(11).torn();
        let r = sweep_structure(Benchmark::Ll, &spec).unwrap();
        assert_eq!(r.tested, r.boundaries);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn bitflips_with_crc_never_go_silent() {
        let spec = BitflipSpec::small(9);
        let r = bitflip_campaign(Benchmark::Hash, &spec).unwrap();
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.silent_wrong, 0, "CRC must turn every flip into a typed error");
        assert!(r.detected > 0, "flips into resident pages must trip the page CRCs");
        assert_eq!(r.detected + r.clean, r.trials);
    }

    #[test]
    fn bitflip_salvage_accounts_for_every_model_key() {
        let spec = BitflipSpec::small(13);
        let r = bitflip_campaign(Benchmark::Rb, &spec).unwrap();
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        // Detected trials route through salvage; each accounts for all keys.
        assert!(
            r.detected == 0 || r.recovered_keys + r.lost_keys > 0,
            "detected trials must classify keys as recovered or lost"
        );
        assert!(r.detected == 0 || r.salvage.blocks_recovered > 0, "salvage finds intact blocks");
    }

    #[test]
    fn bitflips_without_crc_measure_but_never_fail_the_oracle() {
        let spec = BitflipSpec::small(9).crc_off();
        let r = bitflip_campaign(Benchmark::Hash, &spec).unwrap();
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.detected + r.clean + r.silent_wrong, r.trials);
    }

    #[test]
    fn sampled_sweep_respects_the_sample_budget() {
        let spec = SweepSpec::sampled(11, 24, 16);
        let r = sweep_structure(Benchmark::Avl, &spec).unwrap();
        assert!(r.tested <= r.boundaries);
        assert!(r.tested >= 2, "edges always covered");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }
}
