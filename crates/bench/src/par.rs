//! Zero-dependency parallel experiment runner.
//!
//! Every regeneration target is a grid of (benchmark × mode × config)
//! tuples, and each run owns a private `ExecEnv`/`SimConfig` and shares
//! nothing — embarrassingly parallel work that the seed repo nevertheless
//! executed strictly sequentially. [`par_map`] fans a slice of run
//! descriptors across scoped `std::thread` workers pulling indices from a
//! shared atomic counter (work stealing from one global queue: a worker
//! that finishes a short run immediately steals the next index, so a slow
//! `paper`-scale Splay run cannot serialize the grid behind it).
//!
//! Determinism contract: workers send `(index, result)` pairs back over a
//! channel and the caller reassembles them into original index order, so
//! the output is **bit-identical** to a sequential map regardless of
//! worker count or scheduling — each run derives everything from its own
//! seeds. `crates/bench/tests/par_determinism.rs` pins this down.
//!
//! Worker count: [`jobs`] honours `UTPR_JOBS` and falls back to
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker count to use: `UTPR_JOBS` if set to a positive integer, else
/// [`std::thread::available_parallelism`], else 1.
pub fn jobs() -> usize {
    if let Ok(v) = std::env::var("UTPR_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("UTPR_JOBS={v:?} is not a positive integer; using auto parallelism");
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// input order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or one item) this
/// degrades to a plain sequential map on the calling thread — the baseline
/// the determinism test compares against.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once all workers have been
/// joined (via [`std::thread::scope`]).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    // Reached only if no worker panicked (scope re-raises worker panics),
    // in which case every index was delivered exactly once.
    slots.into_iter().map(|r| r.expect("worker delivered every index")).collect()
}

/// [`par_map`] with the worker count taken from the environment ([`jobs`]).
pub fn par_map_auto<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, jobs(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let seq = par_map(&items, 1, |i, x| (i as u64) * 1000 + x * x);
        for w in [2, 3, 8, 200] {
            assert_eq!(par_map(&items, w, |i, x| (i as u64) * 1000 + x * x), seq, "jobs={w}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn workers_share_one_queue() {
        // With more items than workers every index is processed exactly once.
        let items: Vec<usize> = (0..50).collect();
        let out = par_map(&items, 4, |i, _| i);
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, x| {
                assert!(*x != 9, "boom");
                *x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }
}
