//! Machine-readable benchmark reports: every regeneration target writes a
//! `BENCH_<name>.json` next to its human-readable table so the repo
//! accumulates a performance trajectory across PRs (cycles, branch
//! mispredicts, POLB/VALB/storeP rates, resident bytes, wall-clock, and
//! the worker count used).
//!
//! Hand-rolled JSON (the workspace has a zero-external-crates policy): a
//! tiny value tree with a serializer that keeps integers exact — `u64`
//! checksums and counters are emitted as JSON integers, never routed
//! through `f64`.
//!
//! Output directory: `UTPR_BENCH_OUT` if set (created if missing),
//! otherwise the current directory.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;
use utpr_kv::harness::BenchResult;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Exact unsigned integer.
    U64(u64),
    /// Floating-point number (non-finite values serialize as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes the value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One run of a benchmark, flattened to the fields the trajectory tracks.
pub fn run_json(r: &BenchResult) -> Json {
    Json::obj(vec![
        ("benchmark", Json::Str(r.benchmark.name().to_string())),
        ("mode", Json::Str(r.mode.label().to_string())),
        ("cycles", Json::F64(r.cycles)),
        ("checksum", Json::U64(r.checksum)),
        ("resident_bytes", Json::U64(r.resident_bytes)),
        ("uops", Json::U64(r.sim.uops)),
        ("loads", Json::U64(r.sim.loads)),
        ("stores", Json::U64(r.sim.stores)),
        ("storep", Json::U64(r.sim.storep)),
        ("branches", Json::U64(r.sim.branches)),
        ("branch_mispredicts", Json::U64(r.sim.branch_mispredicts)),
        ("mispredict_rate", Json::F64(r.sim.mispredict_rate())),
        ("l1_misses", Json::U64(r.sim.l1_misses)),
        ("l2_misses", Json::U64(r.sim.l2_misses)),
        ("l3_misses", Json::U64(r.sim.l3_misses)),
        ("tlb_walks", Json::U64(r.sim.tlb_walks)),
        ("polb_accesses", Json::U64(r.sim.polb_accesses)),
        ("polb_misses", Json::U64(r.sim.polb_misses)),
        ("valb_accesses", Json::U64(r.sim.valb_accesses)),
        ("valb_misses", Json::U64(r.sim.valb_misses)),
        ("storep_fraction", Json::F64(r.sim.storep_fraction())),
        ("valb_fraction", Json::F64(r.sim.valb_fraction())),
        ("polb_fraction", Json::F64(r.sim.polb_fraction())),
        ("dynamic_checks", Json::U64(r.ptr.dynamic_checks)),
        ("checks_elided", Json::U64(r.ptr.checks_elided)),
        ("abs_to_rel", Json::U64(r.ptr.abs_to_rel)),
        ("rel_to_abs", Json::U64(r.ptr.rel_to_abs)),
        ("spolb_hits", Json::U64(r.trans.spolb_hits)),
        ("spolb_misses", Json::U64(r.trans.spolb_misses)),
        ("svalb_hits", Json::U64(r.trans.svalb_hits)),
        ("svalb_misses", Json::U64(r.trans.svalb_misses)),
        ("trans_epoch_bumps", Json::U64(r.trans.epoch_bumps)),
    ])
}

/// A `BENCH_<name>.json` report under construction.
pub struct BenchReport {
    name: String,
    jobs: usize,
    wall: Duration,
    runs: Vec<Json>,
    extra: Vec<(String, Json)>,
}

impl BenchReport {
    /// Starts a report for target `name` ("fig11", "table5", ...).
    pub fn new(name: &str, jobs: usize, wall: Duration) -> Self {
        BenchReport { name: name.to_string(), jobs, wall, runs: Vec::new(), extra: Vec::new() }
    }

    /// Appends one benchmark run's counters.
    pub fn push_run(&mut self, r: &BenchResult) -> &mut Self {
        self.runs.push(run_json(r));
        self
    }

    /// Appends every run of a suite (in order).
    pub fn push_suite(&mut self, suite: &[Vec<BenchResult>]) -> &mut Self {
        for results in suite {
            for r in results {
                self.push_run(r);
            }
        }
        self
    }

    /// Appends an arbitrary pre-built run record (for targets whose rows
    /// are not `BenchResult`s, e.g. the ablations or the KNN case study).
    pub fn push_record(&mut self, record: Json) -> &mut Self {
        self.runs.push(record);
        self
    }

    /// Sets the wall-clock after the fact, for targets that build the
    /// report incrementally while the clock is still running.
    pub fn set_wall(&mut self, wall: Duration) -> &mut Self {
        self.wall = wall;
        self
    }

    /// Attaches a target-specific top-level field.
    pub fn set_extra(&mut self, key: &str, value: Json) -> &mut Self {
        self.extra.push((key.to_string(), value));
        self
    }

    /// The report as a JSON value.
    ///
    /// Schema history: 1 = original counters; 2 = adds the interp tier's
    /// guest-MIPS records (`guest_insts`, `guest_mips`, `median_ns`) and
    /// per-function residual-check fractions (`residual` objects).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema".to_string(), Json::U64(2)),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "scale".to_string(),
                Json::Str(std::env::var("UTPR_BENCH_SCALE").unwrap_or_else(|_| "paper".into())),
            ),
            ("jobs".to_string(), Json::U64(self.jobs as u64)),
            ("wall_ms".to_string(), Json::F64(self.wall.as_secs_f64() * 1e3)),
        ];
        pairs.extend(self.extra.iter().cloned());
        pairs.push(("runs".to_string(), Json::Arr(self.runs.clone())));
        Json::Obj(pairs)
    }

    /// Writes `BENCH_<name>.json` into `UTPR_BENCH_OUT` (or the current
    /// directory) and prints where it went. IO failures are reported on
    /// stderr but never abort the bench — the human-readable table has
    /// already been produced.
    pub fn write(&self) {
        let dir = std::env::var("UTPR_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| ".".into());
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut body = self.to_json().render();
        body.push('\n');
        let res = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body));
        match res {
            Ok(()) => eprintln!("{}: wrote {}", self.name, path.display()),
            Err(e) => eprintln!("{}: could not write {}: {e}", self.name, path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_integers_are_exact() {
        let v = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("big", Json::U64(u64::MAX)),
            ("nan", Json::F64(f64::NAN)),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let s = v.render();
        assert_eq!(
            s,
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"big\":18446744073709551615,\"nan\":null,\"arr\":[true,null]}"
        );
    }

    #[test]
    fn report_shape_has_schema_and_runs() {
        let mut rep = BenchReport::new("unit", 3, Duration::from_millis(1500));
        rep.set_extra("note", Json::Str("x".into()));
        rep.push_record(Json::obj(vec![("label", Json::Str("row".into()))]));
        let s = rep.to_json().render();
        assert!(s.starts_with("{\"schema\":2,\"name\":\"unit\""), "{s}");
        assert!(s.contains("\"jobs\":3"));
        assert!(s.contains("\"wall_ms\":1500"));
        assert!(s.contains("\"note\":\"x\""));
        assert!(s.contains("\"runs\":[{\"label\":\"row\"}]"));
    }
}
