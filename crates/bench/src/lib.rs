//! # utpr-bench — regeneration harnesses for every table and figure
//!
//! Each `cargo bench` target of this crate regenerates one table or figure
//! of the paper's evaluation (§VII): it runs the same workloads through the
//! simulated machine and prints the same rows/series the paper reports.
//! The helpers here are shared by the bench targets and by the integration
//! tests that assert the reproduced *shapes* (who wins, by roughly what
//! factor).
//!
//! Scale is selected with the `UTPR_BENCH_SCALE` environment variable:
//! `paper` (default: 10 k records / 100 k ops), `medium`, or `small`.

pub mod par;
pub mod report;

use utpr_kv::harness::{run_benchmark, verify_mode_agreement, BenchResult, Benchmark};
use utpr_kv::workload::WorkloadSpec;
use utpr_ptr::Mode;
use utpr_sim::SimConfig;

/// Workload scale selected via `UTPR_BENCH_SCALE`.
pub fn scale_spec() -> WorkloadSpec {
    match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => WorkloadSpec { records: 1_000, operations: 5_000, read_fraction: 0.95, seed: 42 },
        Ok("medium") => {
            WorkloadSpec { records: 5_000, operations: 20_000, read_fraction: 0.95, seed: 42 }
        }
        _ => WorkloadSpec::paper(),
    }
}

/// Geometric mean of positive values; 0 on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A minimal fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: vec![] }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Runs the full suite — every benchmark in all four modes — fanned across
/// [`par::jobs`] worker threads. Results are identical to a sequential run
/// (see [`collect_suite_jobs`]).
pub fn collect_suite(sim: SimConfig, spec: &WorkloadSpec) -> Vec<Vec<BenchResult>> {
    collect_suite_jobs(sim, spec, par::jobs())
}

/// [`collect_suite`] with an explicit worker count.
///
/// The (benchmark, mode) grid is flattened into independent run
/// descriptors, mapped in parallel, and reassembled in grid order; each
/// run builds its own `ExecEnv` from fixed seeds, so per-run stats are
/// bit-identical whatever `jobs` is. The cross-mode soundness criterion of
/// §VII-B (`verify_mode_agreement`) is still enforced per benchmark.
pub fn collect_suite_jobs(sim: SimConfig, spec: &WorkloadSpec, jobs: usize) -> Vec<Vec<BenchResult>> {
    let grid: Vec<(Benchmark, Mode)> = Benchmark::ALL
        .iter()
        .flat_map(|b| Mode::ALL.iter().map(move |m| (*b, *m)))
        .collect();
    let flat =
        par::par_map(&grid, jobs, |_, &(b, m)| run_benchmark(b, m, sim, spec).expect("benchmark run"));
    flat.chunks(Mode::ALL.len())
        .map(|results| {
            verify_mode_agreement(results).expect("mode soundness");
            results.to_vec()
        })
        .collect()
}

/// Finds the result for `mode` within one benchmark's results.
///
/// # Panics
///
/// Panics when `mode` is absent.
pub fn by_mode(results: &[BenchResult], mode: Mode) -> &BenchResult {
    results.iter().find(|r| r.mode == mode).expect("mode present")
}

/// Fig. 11: execution time of Explicit/SW/HW normalized to Volatile.
pub fn fig11(suite: &[Vec<BenchResult>]) -> String {
    let mut t = Table::new(&["bench", "explicit", "sw", "hw"]);
    let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for results in suite {
        let vol = by_mode(results, Mode::Volatile).cycles;
        let ex = by_mode(results, Mode::Explicit).cycles / vol;
        let sw = by_mode(results, Mode::Sw).cycles / vol;
        let hw = by_mode(results, Mode::Hw).cycles / vol;
        cols[0].push(ex);
        cols[1].push(sw);
        cols[2].push(hw);
        t.row(vec![
            results[0].benchmark.name().to_string(),
            format!("{ex:.2}"),
            format!("{sw:.2}"),
            format!("{hw:.2}"),
        ]);
    }
    t.row(vec![
        "geomean".to_string(),
        format!("{:.2}", geomean(&cols[0])),
        format!("{:.2}", geomean(&cols[1])),
        format!("{:.2}", geomean(&cols[2])),
    ]);
    t.render()
}

/// Fig. 13: branch mispredictions normalized to Volatile.
pub fn fig13(suite: &[Vec<BenchResult>]) -> String {
    let mut t = Table::new(&["bench", "explicit", "sw", "hw"]);
    for results in suite {
        let vol = by_mode(results, Mode::Volatile).sim.branch_mispredicts.max(1) as f64;
        t.row(vec![
            results[0].benchmark.name().to_string(),
            format!("{:.2}", by_mode(results, Mode::Explicit).sim.branch_mispredicts as f64 / vol),
            format!("{:.2}", by_mode(results, Mode::Sw).sim.branch_mispredicts as f64 / vol),
            format!("{:.2}", by_mode(results, Mode::Hw).sim.branch_mispredicts as f64 / vol),
        ]);
    }
    t.render()
}

/// Fig. 15: fraction of memory accesses that are storeP / access the VALB /
/// access the POLB, in the HW build.
pub fn fig15(suite: &[Vec<BenchResult>]) -> String {
    let mut t = Table::new(&["bench", "storeP%", "valb%", "polb%"]);
    for results in suite {
        let hw = by_mode(results, Mode::Hw);
        t.row(vec![
            results[0].benchmark.name().to_string(),
            format!("{:.2}", 100.0 * hw.sim.storep_fraction()),
            format!("{:.2}", 100.0 * hw.sim.valb_fraction()),
            format!("{:.2}", 100.0 * hw.sim.polb_fraction()),
        ]);
    }
    t.render()
}

/// Table V: dynamic checks and conversion counts per benchmark (SW build
/// for the checks, as in the paper).
pub fn table5(suite: &[Vec<BenchResult>]) -> String {
    let mut t = Table::new(&["bench", "dynamic checks", "abs->rel", "rel->abs"]);
    for results in suite {
        let sw = by_mode(results, Mode::Sw);
        t.row(vec![
            results[0].benchmark.name().to_string(),
            sw.ptr.dynamic_checks.to_string(),
            sw.ptr.abs_to_rel.to_string(),
            sw.ptr.rel_to_abs.to_string(),
        ]);
    }
    t.render()
}

/// Fig. 14 run matrix: per benchmark, the Explicit baseline followed by
/// one HW run per VALB latency point, flattened in row-major order
/// (stride `1 + latencies.len()`), fanned across `jobs` workers.
pub fn fig14_runs(spec: &WorkloadSpec, latencies: &[u64], jobs: usize) -> Vec<BenchResult> {
    let mut grid: Vec<(Benchmark, Mode, SimConfig)> = Vec::new();
    for b in Benchmark::ALL {
        grid.push((b, Mode::Explicit, SimConfig::table_iv()));
        for lat in latencies {
            grid.push((b, Mode::Hw, SimConfig::table_iv().with_valb_latency(*lat)));
        }
    }
    par::par_map(&grid, jobs, |_, &(b, m, cfg)| run_benchmark(b, m, cfg, spec).expect("fig14 run"))
}

/// Fig. 14: execution time of the HW build under increasing VALB/VAW
/// latency, normalized to the Explicit build at default latency. `runs`
/// comes from [`fig14_runs`] with the same `latencies`.
pub fn fig14(runs: &[BenchResult], latencies: &[u64]) -> String {
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(latencies.iter().map(|l| format!("{l}cyc")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    let stride = 1 + latencies.len();
    for (i, b) in Benchmark::ALL.iter().enumerate() {
        let row = &runs[i * stride..(i + 1) * stride];
        let explicit = row[0].cycles;
        let mut cells = vec![b.name().to_string()];
        for hw in &row[1..] {
            cells.push(format!("{:.3}", hw.cycles / explicit));
        }
        t.row(cells);
    }
    t.render()
}

/// Fig. 12 run matrix: per benchmark, an HW run then an Explicit run
/// (stride 2), fanned across `jobs` workers.
pub fn fig12_runs(spec: &WorkloadSpec, jobs: usize) -> Vec<BenchResult> {
    let grid: Vec<(Benchmark, Mode)> = Benchmark::ALL
        .iter()
        .flat_map(|b| [(*b, Mode::Hw), (*b, Mode::Explicit)])
        .collect();
    par::par_map(&grid, jobs, |_, &(b, m)| {
        run_benchmark(b, m, SimConfig::table_iv(), spec).expect("fig12 run")
    })
}

/// Fig. 12: the conversion-reuse effect, isolated — address translations
/// per build on the same workload (HW converts once per loaded pointer and
/// reuses; Explicit translates at every object access). `runs` comes from
/// [`fig12_runs`].
pub fn fig12(runs: &[BenchResult]) -> String {
    let mut t = Table::new(&["bench", "hw translations", "explicit translations", "ratio"]);
    for pair in runs.chunks(2) {
        let (hw, ex) = (&pair[0], &pair[1]);
        let hw_tr = hw.sim.polb_accesses + hw.sim.valb_accesses;
        let ex_tr = ex.sim.polb_accesses + ex.sim.valb_accesses;
        t.row(vec![
            hw.benchmark.name().to_string(),
            hw_tr.to_string(),
            ex_tr.to_string(),
            format!("{:.2}x", ex_tr as f64 / hw_tr.max(1) as f64),
        ]);
    }
    t.render()
}

/// Table II: hardware structure storage costs.
pub fn table2() -> String {
    let rows = utpr_sim::cost::table_ii();
    let mut t = Table::new(&["structure", "entry bytes", "entries", "total bytes", "area mm2"]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            r.entry_bytes.to_string(),
            r.entries.to_string(),
            r.total_bytes().to_string(),
            format!("{:.4}", r.area_mm2()),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        String::new(),
        String::new(),
        utpr_sim::cost::total_bytes(&rows).to_string(),
        format!("{:.4}", utpr_sim::cost::total_area_mm2(&rows)),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "die fraction of 45nm octa-core Nehalem: {:.4}%\n",
        100.0 * utpr_sim::cost::die_fraction(&rows)
    ));
    out
}

/// Table IV: the simulator parameters in use.
pub fn table4() -> String {
    let c = SimConfig::table_iv();
    let mut t = Table::new(&["component", "parameter"]);
    t.row(vec!["L1 data cache".into(), format!("8-way, {} KB, {} cycles", c.l1.capacity() >> 10, c.l1.hit_cycles)]);
    t.row(vec!["L2 cache".into(), format!("8-way, {} KB, {} cycles", c.l2.capacity() >> 10, c.l2.hit_cycles)]);
    t.row(vec!["L3 cache".into(), format!("8-way, {} MB, {} cycles", c.l3.capacity() >> 20, c.l3.hit_cycles)]);
    t.row(vec!["L1 data TLB".into(), format!("{}-way, {} entries, pipelined", c.tlb1.ways, c.tlb1.entries)]);
    t.row(vec![
        "L2 shared TLB".into(),
        format!(
            "{}-way, {} entries, {} cycles hit, {} walk",
            c.tlb2.ways, c.tlb2.entries, c.tlb2_hit_cycles, c.page_walk_cycles
        ),
    ]);
    t.row(vec![
        "branch predictor".into(),
        format!("gshare {} entries, {} cycles penalty", c.predictor_entries, c.branch_penalty),
    ]);
    t.row(vec!["memory".into(), format!("{} cycles DRAM, {} cycles NVM", c.dram_cycles, c.nvm_cycles)]);
    t.row(vec![
        "POLB".into(),
        format!("{} entries, {} cycles, POW {} cycles", c.polb.entries, c.polb.hit_cycles, c.polb.walk_cycles),
    ]);
    t.row(vec![
        "VALB".into(),
        format!("{} entries, {} cycles, VAW {} cycles", c.valb.entries, c.valb.hit_cycles, c.valb.walk_cycles),
    ]);
    t.render()
}

/// Table III: the benchmark inventory.
pub fn table3() -> String {
    let mut t = Table::new(&["name", "data structure", "boost analogue"]);
    t.row(vec!["LL".into(), "doubly-linked list".into(), "intrusive::list".into()]);
    t.row(vec!["Hash".into(), "chained hash map".into(), "unordered_map".into()]);
    t.row(vec!["RB".into(), "red-black tree".into(), "intrusive::rbtree".into()]);
    t.row(vec!["Splay".into(), "splay tree".into(), "intrusive::splaytree".into()]);
    t.row(vec!["AVL".into(), "AVL tree".into(), "intrusive::avltree".into()]);
    t.row(vec!["SG".into(), "scapegoat tree".into(), "intrusive::sgtree".into()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use utpr_kv::harness::run_all_modes;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bench"]);
        t.row(vec!["1".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn static_tables_mention_key_rows() {
        assert!(table2().contains("POLB"));
        assert!(table2().contains("1280"));
        assert!(table3().contains("scapegoat"));
        assert!(table4().contains("240 cycles NVM"));
    }

    #[test]
    fn small_suite_produces_all_figures() {
        let spec = WorkloadSpec { records: 200, operations: 800, read_fraction: 0.95, seed: 2 };
        let suite: Vec<_> = [Benchmark::Rb, Benchmark::Hash]
            .iter()
            .map(|b| run_all_modes(*b, SimConfig::table_iv(), &spec).unwrap())
            .collect();
        let f11 = fig11(&suite);
        assert!(f11.contains("RB") && f11.contains("geomean"));
        assert!(fig13(&suite).contains("Hash"));
        assert!(fig15(&suite).contains("storeP%"));
        assert!(table5(&suite).contains("dynamic checks"));
    }
}
