//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. POLB capacity (8–256 entries) vs hit rate and runtime.
//! 2. Conversion reuse on/off — isolates the Fig. 12 effect inside the HW
//!    build itself.
//! 3. Check-elimination policy in the SW build: no inference (every site
//!    checks), the dataflow inference, and a perfect oracle.
//! 4. NVM/DRAM latency ratio.
//!
//! Each sweep's points are independent runs, so every sweep fans across
//! the worker pool; the JSON report tags each record with its sweep name.

use std::time::Instant;
use utpr_bench::report::{BenchReport, Json};
use utpr_bench::{par, scale_spec, Table};
use utpr_ds::RbTree;
use utpr_heap::AddressSpace;
use utpr_kv::harness::{run_benchmark, Benchmark};
use utpr_kv::workload::generate;
use utpr_kv::KvStore;
use utpr_ptr::{CheckPolicy, ExecEnv, Mode};
use utpr_sim::{Machine, RangeEntry, SimConfig};

fn machine_env(mode: Mode, sim: SimConfig) -> ExecEnv<Machine> {
    let mut space = AddressSpace::new(0xAB1A);
    let pool = space.create_pool("ablate", 256 << 20).expect("pool");
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(sim);
    machine.set_pool_ranges(ranges);
    ExecEnv::builder(space).mode(mode).pool(pool).sink(machine).build()
}

fn run_rb_with(mut env: ExecEnv<Machine>, spec: &utpr_kv::WorkloadSpec) -> (f64, utpr_sim::SimStats) {
    let w = generate(spec);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    env.sink_mut().reset_measurement();
    env.reset_stats();
    store.run(&mut env, &w).expect("run");
    let (_s, _p, machine) = env.into_parts();
    (machine.cycles(), machine.stats())
}

fn record(rep: &mut BenchReport, sweep: &str, label: &str, cycles: f64, extra: Vec<(&str, Json)>) {
    let mut pairs = vec![
        ("sweep", Json::Str(sweep.to_string())),
        ("label", Json::Str(label.to_string())),
        ("cycles", Json::F64(cycles)),
    ];
    pairs.extend(extra);
    rep.push_record(Json::obj(pairs));
}

fn ablate_polb(spec: &utpr_kv::WorkloadSpec, jobs: usize, rep: &mut BenchReport) {
    println!("=== Ablation: POLB capacity (HW build, RB) ===");
    let entries_axis = [1usize, 8, 32, 256];
    let runs = par::par_map(&entries_axis, jobs, |_, &entries| {
        let mut cfg = SimConfig::table_iv();
        cfg.polb.entries = entries;
        run_rb_with(machine_env(Mode::Hw, cfg), spec)
    });
    let mut t = Table::new(&["entries", "normalized time", "polb miss rate"]);
    let base = runs[0].0;
    for (&entries, (cycles, stats)) in entries_axis.iter().zip(&runs) {
        let miss_rate = stats.polb_misses as f64 / stats.polb_accesses.max(1) as f64;
        t.row(vec![
            entries.to_string(),
            format!("{:.3}", cycles / base),
            format!("{miss_rate:.4}"),
        ]);
        record(rep, "polb_capacity", &entries.to_string(), *cycles, vec![(
            "polb_miss_rate",
            Json::F64(miss_rate),
        )]);
    }
    println!("{}", t.render());
}

fn ablate_reuse(spec: &utpr_kv::WorkloadSpec, jobs: usize, rep: &mut BenchReport) {
    println!("=== Ablation: conversion reuse (HW build, RB) ===");
    let axis = [true, false];
    let runs = par::par_map(&axis, jobs, |_, &reuse| {
        let mut env = machine_env(Mode::Hw, SimConfig::table_iv());
        env.set_conversion_reuse(reuse);
        run_rb_with(env, spec)
    });
    let mut t = Table::new(&["reuse", "cycles", "polb accesses"]);
    let base = runs[0].0;
    for (&reuse, (cycles, stats)) in axis.iter().zip(&runs) {
        let label = if reuse { "on (paper)" } else { "off" };
        t.row(vec![
            label.to_string(),
            format!("{:.3}x", cycles / base),
            stats.polb_accesses.to_string(),
        ]);
        record(rep, "conversion_reuse", label, *cycles, vec![(
            "polb_accesses",
            Json::U64(stats.polb_accesses),
        )]);
    }
    println!("{}", t.render());
}

fn ablate_inference(spec: &utpr_kv::WorkloadSpec, jobs: usize, rep: &mut BenchReport) {
    println!("=== Ablation: check-elimination policy (SW build, RB) ===");
    let axis = [
        (CheckPolicy::AlwaysCheck, "no inference"),
        (CheckPolicy::Inferred, "dataflow inference (paper)"),
        (CheckPolicy::Oracle, "perfect oracle"),
    ];
    let runs = par::par_map(&axis, jobs, |_, &(policy, _)| {
        let mut env = machine_env(Mode::Sw, SimConfig::table_iv());
        env.set_check_policy(policy);
        let w = generate(spec);
        let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
        store.load(&mut env, &w).expect("load");
        env.sink_mut().reset_measurement();
        env.reset_stats();
        store.run(&mut env, &w).expect("run");
        let checks = env.stats().dynamic_checks;
        let (_s, _p, machine) = env.into_parts();
        (machine.cycles(), checks)
    });
    let mut t = Table::new(&["policy", "normalized time", "dynamic checks"]);
    let base = runs[0].0;
    for (&(_, label), (cycles, checks)) in axis.iter().zip(&runs) {
        t.row(vec![label.to_string(), format!("{:.3}", cycles / base), checks.to_string()]);
        record(rep, "check_policy", label, *cycles, vec![("dynamic_checks", Json::U64(*checks))]);
    }
    println!("{}", t.render());
}

fn ablate_nvm_latency(spec: &utpr_kv::WorkloadSpec, jobs: usize, rep: &mut BenchReport) {
    println!("=== Ablation: NVM latency (HW vs Volatile, RB) ===");
    let axis = [120u64, 240, 480, 960];
    let grid: Vec<(u64, Mode)> =
        axis.iter().flat_map(|&nvm| [(nvm, Mode::Volatile), (nvm, Mode::Hw)]).collect();
    let runs = par::par_map(&grid, jobs, |_, &(nvm, mode)| {
        let cfg = SimConfig::table_iv().with_nvm_latency(nvm);
        run_benchmark(Benchmark::Rb, mode, cfg, spec).expect("run").cycles
    });
    let mut t = Table::new(&["nvm cycles", "hw / volatile"]);
    for (i, &nvm) in axis.iter().enumerate() {
        let (vol, hw) = (runs[2 * i], runs[2 * i + 1]);
        t.row(vec![nvm.to_string(), format!("{:.3}", hw / vol)]);
        record(rep, "nvm_latency", &nvm.to_string(), hw, vec![(
            "volatile_cycles",
            Json::F64(vol),
        )]);
    }
    println!("{}", t.render());
}

fn ablate_txn(spec: &utpr_kv::WorkloadSpec, jobs: usize, rep: &mut BenchReport) {
    println!("=== Ablation: per-op persistent transactions (HW build, RB) ===");
    let axis = [false, true];
    let runs = par::par_map(&axis, jobs, |_, &per_op_txn| {
        if !per_op_txn {
            return run_rb_with(machine_env(Mode::Hw, SimConfig::table_iv()), spec).0;
        }
        // Every operation wrapped in its own transaction (worst case).
        let mut env = machine_env(Mode::Hw, SimConfig::table_iv());
        let w = generate(spec);
        let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
        store.load(&mut env, &w).expect("load");
        env.sink_mut().reset_measurement();
        env.reset_stats();
        for op in &w.ops {
            env.frame_traffic(8, 4, 24);
            env.with_txn(|env| match op {
                utpr_kv::Op::Get(k) => store.get(env, *k).map(|_| ()),
                utpr_kv::Op::Set(k, v) => store.set(env, *k, *v).map(|_| ()),
            })
            .expect("txn op");
        }
        let (_s, _p, machine) = env.into_parts();
        machine.cycles()
    });
    let mut t = Table::new(&["crash consistency", "normalized time"]);
    t.row(vec!["off".into(), "1.000".into()]);
    t.row(vec!["per-op txn".into(), format!("{:.3}", runs[1] / runs[0])]);
    record(rep, "per_op_txn", "off", runs[0], vec![]);
    record(rep, "per_op_txn", "per-op txn", runs[1], vec![]);
    println!("{}", t.render());
}

fn ablate_prefetcher(spec: &utpr_kv::WorkloadSpec, jobs: usize, rep: &mut BenchReport) {
    println!("=== Ablation: next-line prefetcher (paper §VI: unaffected by UTPR) ===");
    let grid: Vec<(Mode, bool)> =
        [Mode::Volatile, Mode::Hw].iter().flat_map(|&m| [(m, false), (m, true)]).collect();
    let runs = par::par_map(&grid, jobs, |_, &(mode, pf)| {
        let cfg =
            if pf { SimConfig::table_iv().with_prefetcher() } else { SimConfig::table_iv() };
        run_benchmark(Benchmark::Ll, mode, cfg, spec).expect("run").cycles
    });
    let mut t = Table::new(&["mode", "speedup from prefetcher"]);
    for (i, mode) in [Mode::Volatile, Mode::Hw].iter().enumerate() {
        let (base, pf) = (runs[2 * i], runs[2 * i + 1]);
        t.row(vec![mode.label().to_string(), format!("{:.3}x", base / pf)]);
        record(rep, "prefetcher", mode.label(), pf, vec![("base_cycles", Json::F64(base))]);
    }
    println!("{}", t.render());
}

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!("ablations: six sweeps on RB at {} records on {jobs} workers ...", spec.records);
    println!();
    let t0 = Instant::now();
    let mut rep = BenchReport::new("ablations", jobs, std::time::Duration::ZERO);
    ablate_polb(&spec, jobs, &mut rep);
    ablate_reuse(&spec, jobs, &mut rep);
    ablate_inference(&spec, jobs, &mut rep);
    ablate_nvm_latency(&spec, jobs, &mut rep);
    ablate_txn(&spec, jobs, &mut rep);
    ablate_prefetcher(&spec, jobs, &mut rep);
    rep.set_wall(t0.elapsed());
    rep.write();
}
