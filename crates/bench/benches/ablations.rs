//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. POLB capacity (8–256 entries) vs hit rate and runtime.
//! 2. Conversion reuse on/off — isolates the Fig. 12 effect inside the HW
//!    build itself.
//! 3. Check-elimination policy in the SW build: no inference (every site
//!    checks), the dataflow inference, and a perfect oracle.
//! 4. NVM/DRAM latency ratio.

use utpr_bench::{scale_spec, Table};
use utpr_ds::RbTree;
use utpr_heap::AddressSpace;
use utpr_kv::harness::{run_benchmark, Benchmark};
use utpr_kv::workload::generate;
use utpr_kv::KvStore;
use utpr_ptr::{CheckPolicy, ExecEnv, Mode};
use utpr_sim::{Machine, RangeEntry, SimConfig};

fn machine_env(mode: Mode, sim: SimConfig) -> ExecEnv<Machine> {
    let mut space = AddressSpace::new(0xAB1A);
    let pool = space.create_pool("ablate", 256 << 20).expect("pool");
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(sim);
    machine.set_pool_ranges(ranges);
    ExecEnv::new(space, mode, Some(pool), machine)
}

fn run_rb_with(mut env: ExecEnv<Machine>, spec: &utpr_kv::WorkloadSpec) -> (f64, utpr_sim::SimStats) {
    let w = generate(spec);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    env.sink_mut().reset_measurement();
    env.reset_stats();
    store.run(&mut env, &w).expect("run");
    let (_s, _p, machine) = env.into_parts();
    (machine.cycles(), machine.stats())
}

fn ablate_polb(spec: &utpr_kv::WorkloadSpec) {
    println!("=== Ablation: POLB capacity (HW build, RB) ===");
    let mut t = Table::new(&["entries", "normalized time", "polb miss rate"]);
    let mut base = None;
    for entries in [1usize, 8, 32, 256] {
        let mut cfg = SimConfig::table_iv();
        cfg.polb.entries = entries;
        let (cycles, stats) = run_rb_with(machine_env(Mode::Hw, cfg), spec);
        let b = *base.get_or_insert(cycles);
        t.row(vec![
            entries.to_string(),
            format!("{:.3}", cycles / b),
            format!(
                "{:.4}",
                stats.polb_misses as f64 / stats.polb_accesses.max(1) as f64
            ),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_reuse(spec: &utpr_kv::WorkloadSpec) {
    println!("=== Ablation: conversion reuse (HW build, RB) ===");
    let mut t = Table::new(&["reuse", "cycles", "polb accesses"]);
    let mut rows = vec![];
    for reuse in [true, false] {
        let mut env = machine_env(Mode::Hw, SimConfig::table_iv());
        env.set_conversion_reuse(reuse);
        let (cycles, stats) = run_rb_with(env, spec);
        rows.push((reuse, cycles, stats.polb_accesses));
    }
    let base = rows[0].1;
    for (reuse, cycles, polb) in rows {
        t.row(vec![
            if reuse { "on (paper)" } else { "off" }.to_string(),
            format!("{:.3}x", cycles / base),
            polb.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_inference(spec: &utpr_kv::WorkloadSpec) {
    println!("=== Ablation: check-elimination policy (SW build, RB) ===");
    let mut t = Table::new(&["policy", "normalized time", "dynamic checks"]);
    let mut base = None;
    for (policy, label) in [
        (CheckPolicy::AlwaysCheck, "no inference"),
        (CheckPolicy::Inferred, "dataflow inference (paper)"),
        (CheckPolicy::Oracle, "perfect oracle"),
    ] {
        let mut env = machine_env(Mode::Sw, SimConfig::table_iv());
        env.set_check_policy(policy);
        let w = generate(spec);
        let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
        store.load(&mut env, &w).expect("load");
        env.sink_mut().reset_measurement();
        env.reset_stats();
        store.run(&mut env, &w).expect("run");
        let checks = env.stats().dynamic_checks;
        let (_s, _p, machine) = env.into_parts();
        let cycles = machine.cycles();
        let b = *base.get_or_insert(cycles);
        t.row(vec![label.to_string(), format!("{:.3}", cycles / b), checks.to_string()]);
    }
    println!("{}", t.render());
}

fn ablate_nvm_latency(spec: &utpr_kv::WorkloadSpec) {
    println!("=== Ablation: NVM latency (HW vs Volatile, RB) ===");
    let mut t = Table::new(&["nvm cycles", "hw / volatile"]);
    for nvm in [120u64, 240, 480, 960] {
        let cfg = SimConfig::table_iv().with_nvm_latency(nvm);
        let vol = run_benchmark(Benchmark::Rb, Mode::Volatile, cfg, spec).expect("vol").cycles;
        let hw = run_benchmark(Benchmark::Rb, Mode::Hw, cfg, spec).expect("hw").cycles;
        t.row(vec![nvm.to_string(), format!("{:.3}", hw / vol)]);
    }
    println!("{}", t.render());
}

fn ablate_txn(spec: &utpr_kv::WorkloadSpec) {
    println!("=== Ablation: per-op persistent transactions (HW build, RB) ===");
    let mut t = Table::new(&["crash consistency", "normalized time"]);
    // Baseline: no transactions.
    let (base, _) = run_rb_with(machine_env(Mode::Hw, SimConfig::table_iv()), spec);
    t.row(vec!["off".into(), "1.000".into()]);
    // Every operation wrapped in its own transaction (worst case).
    let mut env = machine_env(Mode::Hw, SimConfig::table_iv());
    let w = generate(spec);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    env.sink_mut().reset_measurement();
    env.reset_stats();
    for op in &w.ops {
        env.frame_traffic(8, 4, 24);
        env.txn_begin().expect("begin");
        match op {
            utpr_kv::Op::Get(k) => {
                store.get(&mut env, *k).expect("get");
            }
            utpr_kv::Op::Set(k, v) => {
                store.set(&mut env, *k, *v).expect("set");
            }
        }
        env.txn_commit().expect("commit");
    }
    let (_s, _p, machine) = env.into_parts();
    t.row(vec!["per-op txn".into(), format!("{:.3}", machine.cycles() / base)]);
    println!("{}", t.render());
}

fn ablate_prefetcher(spec: &utpr_kv::WorkloadSpec) {
    println!("=== Ablation: next-line prefetcher (paper §VI: unaffected by UTPR) ===");
    let mut t = Table::new(&["mode", "speedup from prefetcher"]);
    for mode in [Mode::Volatile, Mode::Hw] {
        let base =
            run_benchmark(Benchmark::Ll, mode, SimConfig::table_iv(), spec).expect("base").cycles;
        let pf = run_benchmark(Benchmark::Ll, mode, SimConfig::table_iv().with_prefetcher(), spec)
            .expect("pf")
            .cycles;
        t.row(vec![mode.label().to_string(), format!("{:.3}x", base / pf)]);
    }
    println!("{}", t.render());
}

fn main() {
    let spec = scale_spec();
    eprintln!("ablations: six sweeps on RB at {} records ...", spec.records);
    println!();
    ablate_polb(&spec);
    ablate_reuse(&spec);
    ablate_inference(&spec);
    ablate_nvm_latency(&spec);
    ablate_txn(&spec);
    ablate_prefetcher(&spec);
}
