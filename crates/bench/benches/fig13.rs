//! Regenerates paper Fig. 13: branch mispredictions normalized to the
//! Volatile build. The SW build's dynamic checks execute real branches
//! through shared helper pcs, which is where its extra mispredictions come
//! from; the HW build adds none.

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{collect_suite, fig13, par, scale_spec};
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!("fig13: running 6 benchmarks x 4 modes on {jobs} workers ...");
    let t0 = Instant::now();
    let suite = collect_suite(SimConfig::table_iv(), &spec);
    let wall = t0.elapsed();
    println!("\n=== Fig. 13: branch mispredictions normalized to Volatile ===");
    println!("{}", fig13(&suite));
    BenchReport::new("fig13", jobs, wall).push_suite(&suite).write();
}
