//! Regenerates paper Fig. 13: branch mispredictions normalized to the
//! Volatile build. The SW build's dynamic checks execute real branches
//! through shared helper pcs, which is where its extra mispredictions come
//! from; the HW build adds none.

use utpr_bench::{collect_suite, fig13, scale_spec};
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    eprintln!("fig13: running 6 benchmarks x 4 modes ...");
    let suite = collect_suite(SimConfig::table_iv(), &spec);
    println!("\n=== Fig. 13: branch mispredictions normalized to Volatile ===");
    println!("{}", fig13(&suite));
}
