//! Week-of-modelled-time endurance soak: YCSB mixes under eADR/ADR with
//! retention decay striking sealed cold pages while traffic runs, the
//! online scrubber on or off, and a wear-leveling ablation pair.
//!
//! Every cell of the grid is one [`endurance_soak`]: N mutator threads
//! drive a YCSB preset against a concurrent hash index on a shared
//! persistent pool whose media clock advances from *modelled* work units
//! (never wall time); at each tick a seeded decay lottery may flip a bit
//! on a sealed cold page. The patrol scrubber — when on — is one more
//! participant on the same seeded turnstile, so every interleaving
//! replays bit-for-bit under `UTPR_QC_SEED` at any host core count.
//!
//! Hard gates, enforced in-bench (nonzero exit on violation):
//!
//! 1. **Zero silent corruption, every cell** — after the end-of-soak
//!    final verify, every injected flip is detected or annihilated
//!    (`injected == detected + cancelled`) and no audited key is wrong
//!    without a detection to blame. This holds for scrub-OFF arms too:
//!    they may *lose* data, never silently.
//! 2. **Scrub rescues** — with scrub ON, every decay rate (including the
//!    hot arm) passes gate 1 with the quarantine → salvage → reseal
//!    accounting balanced.
//! 3. **Scrub matters** — with scrub OFF at the hot decay rate, at least
//!    one arm demonstrably loses keys (the loss is detected and
//!    accounted, per gate 1).
//!
//! The "week of modelled time" is a labelling of media-clock ticks
//! (`op_units`/`work_per_tick` set the horizon); nothing here reads wall
//! clocks except the report's own `wall_ms` field, which is never
//! compared. Modelled columns (`cycles` = total work units, `checksum`)
//! are bit-deterministic and feed `scripts/bench_baseline.sh`.
//!
//! Scale via `UTPR_BENCH_SCALE=small|medium|paper`; replay any failure
//! with the printed `UTPR_QC_SEED=<seed>` line.

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_ds::concurrent::FlushStrategy;
use utpr_heap::pagestore::PAGE_SIZE;
use utpr_heap::{FlushModel, RetentionConfig, ScrubConfig, SharedPool, WearStats};
use utpr_kv::{endurance_soak, EnduranceReport, EnduranceSpec, Preset};

/// Per-scale soak shape. The low decay rate is the realistic operating
/// point (scrub is preventive, repairs are rare — the ≤10% overhead
/// budget applies here); the high rate is the stress arm where the
/// lottery wins often enough that scrub-OFF loses data.
struct Shape {
    threads: u32,
    keys_per_thread: u64,
    ops_per_thread: u64,
    low_ppb: u64,
    high_ppb: u64,
    churn_rounds: u64,
    churn_slots: usize,
}

fn shape() -> Shape {
    match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => Shape {
            threads: 3,
            keys_per_thread: 24,
            ops_per_thread: 80,
            low_ppb: 80_000,
            high_ppb: 60_000_000,
            churn_rounds: 40,
            churn_slots: 24,
        },
        Ok("medium") => Shape {
            threads: 4,
            keys_per_thread: 40,
            ops_per_thread: 320,
            low_ppb: 80_000,
            high_ppb: 60_000_000,
            churn_rounds: 80,
            churn_slots: 32,
        },
        _ => Shape {
            threads: 6,
            keys_per_thread: 64,
            ops_per_thread: 1_200,
            low_ppb: 80_000,
            high_ppb: 60_000_000,
            churn_rounds: 160,
            churn_slots: 48,
        },
    }
}

/// The wear-leveling ablation: identical alloc/free/rewrite churn (same
/// LCG stream) under first-fit vs scored placement. Only the placement
/// policy differs, so the wear tables are directly comparable. The soak
/// grid cannot show this — its index never frees, so the central free
/// list stays one block and both policies coincide; churn is where the
/// scored allocator earns its O(free-list) walk.
fn wear_churn(leveling: bool, rounds: u64, slots: usize) -> WearStats {
    let name = if leveling { "endurance-wear-on" } else { "endurance-wear-off" };
    let p = SharedPool::create(name, 1 << 20, 2).expect("churn pool");
    p.configure_retention(RetentionConfig::default());
    p.set_wear_leveling(leveling);
    let mut live: Vec<u64> =
        (0..slots).map(|_| p.alloc_raw(PAGE_SIZE / 2).expect("churn alloc")).collect();
    let mut rng = 0x2545_f491_4f6c_dd1du64;
    for _ in 0..rounds {
        for slot in &mut live {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if rng >> 63 == 1 {
                p.free_raw(*slot).expect("churn free");
                *slot = p.alloc_raw(PAGE_SIZE / 2).expect("churn realloc");
                for w in 0..PAGE_SIZE / 16 {
                    p.write_u64(*slot + w * 8, rng ^ w);
                }
            }
        }
    }
    p.wear_stats()
}

fn churn_json(name: &str, leveling: bool, w: &WearStats) -> Json {
    // The checksum folds the deterministic wear columns so
    // bench_baseline diffs placement behaviour, not just volume.
    let checksum = [w.pages, w.min, w.max, w.total]
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, v| (h ^ v).wrapping_mul(0x100_0000_01b3));
    Json::obj(vec![
        ("kind", Json::Str("wear_churn".into())),
        ("name", Json::Str(name.into())),
        ("wear_leveling", Json::Bool(leveling)),
        ("wear_pages", Json::U64(w.pages)),
        ("wear_min", Json::U64(w.min)),
        ("wear_max", Json::U64(w.max)),
        ("cycles", Json::U64(w.total)),
        ("wear_flatness", Json::F64(w.flatness())),
        ("checksum", Json::U64(checksum)),
    ])
}

/// One grid cell. `wear_leveling` only varies on the ablation pair.
#[derive(Clone, Copy)]
struct Cell {
    mix: Preset,
    flush: FlushModel,
    scrub: bool,
    decay_ppb: u64,
    wear_leveling: bool,
}

fn spec_of(cell: &Cell, sh: &Shape, seed: u64) -> EnduranceSpec {
    EnduranceSpec {
        threads: sh.threads,
        keys_per_thread: sh.keys_per_thread,
        ops_per_thread: sh.ops_per_thread,
        mix: cell.mix,
        flush: cell.flush,
        strategy: FlushStrategy::FliT,
        scrub: cell.scrub,
        scrub_cfg: ScrubConfig { batch_pages: 12, refresh_age: 14, interval_ticks: 12 },
        decay_ppb: cell.decay_ppb,
        op_units: 1_200,
        work_per_tick: 3_600,
        seal_lag: 2,
        wear_leveling: cell.wear_leveling,
        seed,
    }
}

fn mix_name(p: Preset) -> &'static str {
    match p {
        Preset::B => "B",
        Preset::C => "C",
        Preset::D => "D",
        _ => "other",
    }
}

fn flush_name(f: FlushModel) -> &'static str {
    match f {
        FlushModel::Eadr => "eadr",
        FlushModel::Adr => "adr",
    }
}

fn cell_name(c: &Cell) -> String {
    format!(
        "endurance/{}/{}/{}/{}ppb{}",
        mix_name(c.mix),
        flush_name(c.flush),
        if c.scrub { "scrub" } else { "noscrub" },
        c.decay_ppb,
        if c.wear_leveling { "/wear" } else { "" },
    )
}

fn cell_json(name: &str, c: &Cell, r: &EnduranceReport) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("endurance".into())),
        ("name", Json::Str(name.into())),
        ("mix", Json::Str(mix_name(c.mix).into())),
        ("flush", Json::Str(flush_name(c.flush).into())),
        ("scrub", Json::Bool(c.scrub)),
        ("decay_ppb", Json::U64(c.decay_ppb)),
        ("wear_leveling", Json::Bool(c.wear_leveling)),
        ("soak_ops", Json::U64(r.ops)),
        ("ops_failed", Json::U64(r.ops_failed)),
        ("ticks", Json::U64(r.ticks)),
        // `cycles` is the modelled total-work column bench_baseline diffs.
        ("cycles", Json::U64(r.total_work)),
        ("scrub_work", Json::U64(r.scrub_work)),
        ("scrub_overhead", Json::F64(r.scrub_overhead())),
        ("fences", Json::U64(r.fences)),
        ("fences_per_op", Json::F64(r.fences_per_op())),
        ("flips_injected", Json::U64(r.flips_injected)),
        ("flips_detected", Json::U64(r.flips_detected)),
        ("flips_cancelled", Json::U64(r.flips_cancelled)),
        ("pages_flipped", Json::U64(r.pages_flipped)),
        ("pages_scanned", Json::U64(r.scrub.pages_scanned)),
        ("pages_refreshed", Json::U64(r.scrub.pages_refreshed)),
        ("pages_quarantined", Json::U64(r.scrub.pages_quarantined)),
        ("repairs", Json::U64(r.scrub.repairs)),
        ("salvaged_blocks", Json::U64(r.scrub.salvage.blocks_recovered)),
        ("salvage_intact_bytes", Json::U64(r.scrub.salvage.intact_bytes)),
        ("salvage_lost_bytes", Json::U64(r.scrub.salvage.lost_bytes)),
        ("keys_audited", Json::U64(r.keys_audited)),
        ("keys_intact", Json::U64(r.keys_intact)),
        ("keys_lost", Json::U64(r.keys_lost)),
        ("stale_reads", Json::U64(r.stale_reads)),
        ("silent", Json::U64(r.silent)),
        ("wear_pages", Json::U64(r.wear.pages)),
        ("wear_min", Json::U64(r.wear.min)),
        ("wear_max", Json::U64(r.wear.max)),
        ("wear_flatness", Json::F64(r.wear.flatness())),
        ("checksum", Json::U64(r.checksum)),
        ("grants", Json::U64(r.grants)),
    ])
}

fn main() {
    let t0 = Instant::now();
    let seed = utpr_qc::runner::base_seed();
    let sh = shape();

    // The full grid: mix × persistence domain × scrub × decay rate, plus
    // one wear-leveling ablation cell (its control is the matching
    // B/adr/scrub/low cell of the main grid).
    let mut grid: Vec<Cell> = Vec::new();
    for mix in [Preset::B, Preset::C, Preset::D] {
        for flush in [FlushModel::Eadr, FlushModel::Adr] {
            for scrub in [true, false] {
                for ppb in [sh.low_ppb, sh.high_ppb] {
                    grid.push(Cell { mix, flush, scrub, decay_ppb: ppb, wear_leveling: false });
                }
            }
        }
    }
    let reports: Vec<(Cell, EnduranceReport)> = par::par_map_auto(&grid, |_, cell| {
        let spec = spec_of(cell, &sh, seed);
        let r = endurance_soak(&spec).expect("endurance soak setup");
        (*cell, r)
    });

    let mut failures = 0usize;
    let mut table = utpr_bench::Table::new(&[
        "cell", "ops", "ticks", "inj", "det", "canc", "refreshed", "repairs", "lost", "stale",
        "silent", "ovh%", "flat",
    ]);
    let mut records = Vec::new();
    let mut overhead_low_scrub: f64 = 0.0;
    let mut lost_noscrub_hot = 0u64;
    let mut lost_scrub_hot = 0u64;
    for (cell, r) in &reports {
        let name = cell_name(cell);
        table.row(vec![
            name.clone(),
            r.ops.to_string(),
            r.ticks.to_string(),
            r.flips_injected.to_string(),
            r.flips_detected.to_string(),
            r.flips_cancelled.to_string(),
            r.scrub.pages_refreshed.to_string(),
            r.scrub.repairs.to_string(),
            r.keys_lost.to_string(),
            r.stale_reads.to_string(),
            r.silent.to_string(),
            format!("{:.1}", r.scrub_overhead() * 100.0),
            format!("{:.2}", r.wear.flatness()),
        ]);

        // Gate 1 (every cell) and gate 2 (scrub-on arms) are the same
        // invariant; a scrub-off arm failing it is just as fatal.
        if let Err(msg) = r.gate() {
            failures += 1;
            eprintln!(
                "FAIL endurance {name}: {msg} — replay: UTPR_QC_SEED={seed} \
                 (threads={}, decay_ppb={}, horizon={} ticks)",
                sh.threads, cell.decay_ppb, r.ticks
            );
        }
        if cell.scrub && cell.decay_ppb == sh.low_ppb && !cell.wear_leveling {
            overhead_low_scrub = overhead_low_scrub.max(r.scrub_overhead());
        }
        if cell.decay_ppb == sh.high_ppb {
            if cell.scrub {
                lost_scrub_hot += r.keys_lost;
            } else {
                lost_noscrub_hot += r.keys_lost;
            }
        }
        records.push(cell_json(&name, cell, r));
    }

    // Gate 3: scrub-OFF at the hot decay rate must demonstrably lose
    // data somewhere — otherwise the soak is too gentle to distinguish
    // the arms and the scrub-rescue claim is vacuous.
    if lost_noscrub_hot == 0 {
        failures += 1;
        eprintln!(
            "FAIL endurance: no scrub-off arm lost a key at {} ppb — soak too gentle — \
             replay: UTPR_QC_SEED={seed} (threads={}, decay_ppb={})",
            sh.high_ppb, sh.threads, sh.high_ppb
        );
    }

    println!("\n=== Endurance soak grid (seed {seed}) ===");
    println!("{}", table.render());
    println!(
        "scrub overhead at {} ppb (worst scrub-on arm): {:.2}%",
        sh.low_ppb,
        overhead_low_scrub * 100.0
    );
    println!(
        "keys lost at {} ppb: scrub-on {lost_scrub_hot}, scrub-off {lost_noscrub_hot}",
        sh.high_ppb
    );

    // Wear-leveling ablation: same churn, two placement policies. The
    // endurance claim is about *peak* wear — the most-worn cell dies
    // first — so the gate compares `wear.max` (max/mean flatness would
    // reward concentration: spreading writes over more pages dilutes the
    // mean while the allocator's metadata page pins the max).
    let churn_on = wear_churn(true, sh.churn_rounds, sh.churn_slots);
    let churn_off = wear_churn(false, sh.churn_rounds, sh.churn_slots);
    println!(
        "wear churn ({} rounds, {} slots): peak {} vs {} writes/page (leveling vs first-fit), \
         flatness {:.2} vs {:.2}",
        sh.churn_rounds,
        sh.churn_slots,
        churn_on.max,
        churn_off.max,
        churn_on.flatness(),
        churn_off.flatness()
    );
    if churn_on.max >= churn_off.max {
        failures += 1;
        eprintln!(
            "FAIL endurance wear churn: scored placement did not cut peak wear \
             ({} vs {}) — replay: UTPR_QC_SEED={seed} (rounds={}, slots={})",
            churn_on.max, churn_off.max, sh.churn_rounds, sh.churn_slots
        );
    }
    records.push(churn_json("endurance/wearchurn/leveling", true, &churn_on));
    records.push(churn_json("endurance/wearchurn/firstfit", false, &churn_off));

    let mut report = BenchReport::new("endurance", par::jobs(), t0.elapsed());
    report.set_extra("seed", Json::U64(seed));
    report.set_extra("total_failures", Json::U64(failures as u64));
    report.set_extra("scrub_overhead_frac", Json::F64(overhead_low_scrub));
    report.set_extra("lost_keys_scrub_hot", Json::U64(lost_scrub_hot));
    report.set_extra("lost_keys_noscrub_hot", Json::U64(lost_noscrub_hot));
    report.set_extra("wear_peak_leveling", Json::U64(churn_on.max));
    report.set_extra("wear_peak_first_fit", Json::U64(churn_off.max));
    report.set_extra("wear_flatness_leveling", Json::F64(churn_on.flatness()));
    report.set_extra("wear_flatness_first_fit", Json::F64(churn_off.flatness()));
    for r in records {
        report.push_record(r);
    }
    report.write();

    if failures > 0 {
        eprintln!("{failures} endurance gate failure(s) — replay with UTPR_QC_SEED={seed}");
        std::process::exit(1);
    }
}
