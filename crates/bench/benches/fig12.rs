//! Regenerates paper Fig. 12: the conversion-reuse effect. The HW build
//! converts a persistent pointer once when it is loaded and reuses the
//! virtual address for subsequent field accesses; the Explicit model's API
//! re-translates at every access. The table reports hardware address
//! translations per build and their ratio.

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{fig12, fig12_runs, par, scale_spec};

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!("fig12: running 6 benchmarks x 2 modes on {jobs} workers ...");
    let t0 = Instant::now();
    let runs = fig12_runs(&spec, jobs);
    let wall = t0.elapsed();
    println!("\n=== Fig. 12: address translations, Explicit vs HW (reuse) ===");
    println!("{}", fig12(&runs));
    let mut rep = BenchReport::new("fig12", jobs, wall);
    for r in &runs {
        rep.push_run(r);
    }
    rep.write();
}
