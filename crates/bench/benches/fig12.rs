//! Regenerates paper Fig. 12: the conversion-reuse effect. The HW build
//! converts a persistent pointer once when it is loaded and reuses the
//! virtual address for subsequent field accesses; the Explicit model's API
//! re-translates at every access. The table reports hardware address
//! translations per build and their ratio.

use utpr_bench::{fig12, scale_spec};

fn main() {
    let spec = scale_spec();
    eprintln!("fig12: running 6 benchmarks x 2 modes ...");
    println!("\n=== Fig. 12: address translations, Explicit vs HW (reuse) ===");
    println!("{}", fig12(&spec));
}
