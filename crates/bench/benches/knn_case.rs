//! Regenerates the paper's §VII-E KNN case study: productivity (lines
//! changed to persist the four matrices) and performance across the four
//! builds. Paper: HW has marginal overhead; SW sees a 7.56x slowdown;
//! migration costs 7 lines with UPR vs 863 with explicit references.

use std::time::Instant;
use utpr_bench::report::{BenchReport, Json};
use utpr_bench::{par, Table};
use utpr_ml::{paper_knn_efforts, run_knn};
use utpr_ptr::Mode;
use utpr_sim::SimConfig;

fn main() {
    println!("\n=== KNN case study: productivity ===");
    let mut t = Table::new(&["approach", "lines", "objects", "functions", "versions"]);
    for e in paper_knn_efforts() {
        t.row(vec![
            e.approach.to_string(),
            e.lines_changed.to_string(),
            e.objects_changed.to_string(),
            e.functions_changed.to_string(),
            e.versions_needed.to_string(),
        ]);
    }
    t.row(vec![
        "this repo (measured)".into(),
        utpr_ml::measured_utpr_lines_changed().to_string(),
        "0".into(),
        "0".into(),
        "1".into(),
    ]);
    println!("{}", t.render());

    println!("=== KNN case study: performance (normalized to Volatile) ===");
    let jobs = par::jobs();
    eprintln!("knn_case: running KNN in 4 modes on {jobs} workers ...");
    let t0 = Instant::now();
    let runs = par::par_map(&Mode::ALL, jobs, |_, &mode| {
        run_knn(mode, SimConfig::table_iv(), 3, 11).expect("run")
    });
    let wall = t0.elapsed();
    let vol = runs[0].cycles; // Mode::ALL[0] is Volatile
    let mut t = Table::new(&["mode", "normalized time", "accuracy"]);
    let mut rep = BenchReport::new("knn_case", jobs, wall);
    rep.set_extra(
        "measured_utpr_lines_changed",
        Json::U64(utpr_ml::measured_utpr_lines_changed() as u64),
    );
    for (mode, r) in Mode::ALL.iter().zip(&runs) {
        t.row(vec![
            mode.label().to_string(),
            format!("{:.2}", r.cycles / vol),
            format!("{:.3}", r.accuracy),
        ]);
        rep.push_record(Json::obj(vec![
            ("mode", Json::Str(mode.label().to_string())),
            ("cycles", Json::F64(r.cycles)),
            ("accuracy", Json::F64(r.accuracy)),
            ("dynamic_checks", Json::U64(r.ptr.dynamic_checks)),
            ("polb_accesses", Json::U64(r.sim.polb_accesses)),
        ]));
    }
    println!("{}", t.render());
    rep.write();
}
