//! Regenerates the paper's §VII-E KNN case study: productivity (lines
//! changed to persist the four matrices) and performance across the four
//! builds. Paper: HW has marginal overhead; SW sees a 7.56x slowdown;
//! migration costs 7 lines with UPR vs 863 with explicit references.

use utpr_bench::Table;
use utpr_ml::{paper_knn_efforts, run_knn};
use utpr_ptr::Mode;
use utpr_sim::SimConfig;

fn main() {
    println!("\n=== KNN case study: productivity ===");
    let mut t = Table::new(&["approach", "lines", "objects", "functions", "versions"]);
    for e in paper_knn_efforts() {
        t.row(vec![
            e.approach.to_string(),
            e.lines_changed.to_string(),
            e.objects_changed.to_string(),
            e.functions_changed.to_string(),
            e.versions_needed.to_string(),
        ]);
    }
    t.row(vec![
        "this repo (measured)".into(),
        utpr_ml::measured_utpr_lines_changed().to_string(),
        "0".into(),
        "0".into(),
        "1".into(),
    ]);
    println!("{}", t.render());

    println!("=== KNN case study: performance (normalized to Volatile) ===");
    eprintln!("knn_case: running KNN in 4 modes ...");
    let vol = run_knn(Mode::Volatile, SimConfig::table_iv(), 3, 11).expect("volatile");
    let mut t = Table::new(&["mode", "normalized time", "accuracy"]);
    for mode in Mode::ALL {
        let r = run_knn(mode, SimConfig::table_iv(), 3, 11).expect("run");
        t.row(vec![
            mode.label().to_string(),
            format!("{:.2}", r.cycles / vol.cycles),
            format!("{:.3}", r.accuracy),
        ]);
    }
    println!("{}", t.render());
}
