//! Extension beyond the paper: the six Table III structures plus a B+ tree
//! (wide nodes, few pointer hops, leaf-chain scans) under the same KV
//! workload and machine. The B+ tree's lower pointer-load density shrinks
//! every build's overhead — evidence that UTPR's costs scale with pointer
//! traffic, not data volume.

use utpr_bench::{by_mode, scale_spec, Table};
use utpr_kv::harness::{run_all_modes, Benchmark};
use utpr_ptr::Mode;
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    eprintln!("extended: 7 structures x 4 modes at {} records ...", spec.records);
    println!("\n=== Extension: all structures + B+ tree, normalized to Volatile ===");
    let mut t = Table::new(&["bench", "explicit", "sw", "hw", "hw polb/ref"]);
    for b in Benchmark::ALL_EXTENDED {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec).expect("run");
        let vol = by_mode(&rs, Mode::Volatile).cycles;
        let hw = by_mode(&rs, Mode::Hw);
        t.row(vec![
            b.name().to_string(),
            format!("{:.2}", by_mode(&rs, Mode::Explicit).cycles / vol),
            format!("{:.2}", by_mode(&rs, Mode::Sw).cycles / vol),
            format!("{:.2}", hw.cycles / vol),
            format!("{:.3}", hw.sim.polb_fraction()),
        ]);
    }
    println!("{}", t.render());
}
