//! Extension beyond the paper: the six Table III structures plus a B+ tree
//! (wide nodes, few pointer hops, leaf-chain scans) under the same KV
//! workload and machine. The B+ tree's lower pointer-load density shrinks
//! every build's overhead — evidence that UTPR's costs scale with pointer
//! traffic, not data volume.

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{by_mode, par, scale_spec, Table};
use utpr_kv::harness::{run_benchmark, verify_mode_agreement, Benchmark};
use utpr_ptr::Mode;
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!("extended: 7 structures x 4 modes at {} records on {jobs} workers ...", spec.records);
    let grid: Vec<(Benchmark, Mode)> = Benchmark::ALL_EXTENDED
        .iter()
        .flat_map(|b| Mode::ALL.iter().map(move |m| (*b, *m)))
        .collect();
    let t0 = Instant::now();
    let flat = par::par_map(&grid, jobs, |_, &(b, m)| {
        run_benchmark(b, m, SimConfig::table_iv(), &spec).expect("run")
    });
    let wall = t0.elapsed();
    println!("\n=== Extension: all structures + B+ tree, normalized to Volatile ===");
    let mut t = Table::new(&["bench", "explicit", "sw", "hw", "hw polb/ref"]);
    let mut rep = BenchReport::new("extended", jobs, wall);
    for rs in flat.chunks(Mode::ALL.len()) {
        verify_mode_agreement(rs).expect("mode soundness");
        let vol = by_mode(rs, Mode::Volatile).cycles;
        let hw = by_mode(rs, Mode::Hw);
        t.row(vec![
            rs[0].benchmark.name().to_string(),
            format!("{:.2}", by_mode(rs, Mode::Explicit).cycles / vol),
            format!("{:.2}", by_mode(rs, Mode::Sw).cycles / vol),
            format!("{:.2}", hw.cycles / vol),
            format!("{:.3}", hw.sim.polb_fraction()),
        ]);
        for r in rs {
            rep.push_run(r);
        }
    }
    println!("{}", t.render());
    rep.write();
}
