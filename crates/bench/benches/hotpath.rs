//! Hot-path benchmark tier for the software lookaside layer (sPOLB/sVALB):
//! host-nanosecond latency of `ra2va`/`va2ra`/`read_u64` with the caches on
//! vs the cache-disabled walks, a 16-pool stress, the epoch-churn worst
//! case, the YCSB-A hit rate, and the SW-mode site-check-cache ablation.
//!
//! Emits `BENCH_hotpath.json` with three acceptance extras:
//! - `speedup` — cached vs cold `va2ra` median (expected ≥ 3×);
//! - `svalb_hit_rate` — measured on the YCSB-A run (expected ≥ 0.95);
//! - `equivalence_ok` — cached and uncached translation agreed on every
//!   probe, including errors and detach/re-attach churn, and the
//!   translation-cache on/off YCSB runs produced identical checksums,
//!   cycles, and pointer counters;
//! - `mt_speedup_8` — modelled makespan speedup of the 8-thread shared-
//!   pool YCSB-A arm over the 1-thread arm (expected ≥ 4×);
//! - `mt_checksum_ok` — that arm's checksum was bit-identical at every
//!   thread count (folded into `equivalence_ok`'s exit gate).
//!
//! Exits nonzero when `equivalence_ok` is false: divergence here means the
//! lookasides changed simulated semantics, which the design forbids.

use std::hint::black_box;
use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_ds::RbTree;
use utpr_heap::{AddressSpace, PoolId, RelLoc, TransStats, VirtAddr};
use utpr_kv::mt::{run_mt_ycsb, MtSpec};
use utpr_kv::ycsb::{generate_preset, Preset};
use utpr_kv::KvStore;
use utpr_ptr::{ExecEnv, Mode, PtrStats};
use utpr_qc::bench::Bench;
use utpr_sim::{Machine, RangeEntry, SimConfig};

/// A space with `pools` attached pools, each holding one 64-byte object.
fn build_space(pools: u32) -> (AddressSpace, Vec<(PoolId, RelLoc, VirtAddr)>) {
    let mut space = AddressSpace::new(0x5EED);
    let mut objs = Vec::new();
    for i in 0..pools {
        let pool = space.create_pool(&format!("hot{i}"), 1 << 20).expect("pool");
        let loc = space.pmalloc(pool, 64).expect("pmalloc");
        let va = space.ra2va_uncached(loc).expect("ra2va");
        objs.push((pool, loc, va));
    }
    (space, objs)
}

fn bench_translations(c: &mut Bench) {
    // Every loop accumulates its results: translations feed an address
    // computation in real pointer-chasing code, and the dependency keeps
    // the compiler from turning the measured call into pure dead code the
    // harness only black-boxes after the fact.
    let (space, objs) = build_space(1);
    let (_, loc, va) = objs[0];
    c.bench_function("trans/va2ra_cached_hit", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(space.va2ra(black_box(va)).unwrap().offset.into());
            acc
        });
    });
    c.bench_function("trans/va2ra_cold_walk", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(space.va2ra_uncached(black_box(va)).unwrap().offset.into());
            acc
        });
    });
    c.bench_function("trans/ra2va_cached_hit", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(space.ra2va(black_box(loc)).unwrap().raw());
            acc
        });
    });
    c.bench_function("trans/ra2va_cold_probe", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(space.ra2va_uncached(black_box(loc)).unwrap().raw());
            acc
        });
    });
    c.bench_function("trans/read_u64_cached", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(space.read_u64(black_box(va)).unwrap());
            acc
        });
    });
    c.bench_function("trans/read_u64_cold", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(space.read_u64_uncached(black_box(va)).unwrap());
            acc
        });
    });
}

fn bench_multipool(c: &mut Bench) {
    // Round-robin over 16 pools: defeats the one-entry memo every access,
    // so this measures the direct-mapped sVALB array against the BTree walk
    // at a realistic multi-pool registry size.
    let (space, objs) = build_space(16);
    let vas: Vec<VirtAddr> = objs.iter().map(|&(_, _, va)| va).collect();
    let locs: Vec<RelLoc> = objs.iter().map(|&(_, loc, _)| loc).collect();
    c.bench_function("trans/va2ra_16pool_cached", |b| {
        let (mut i, mut acc) = (0usize, 0u64);
        b.iter(|| {
            i = (i + 1) & 15;
            acc = acc.wrapping_add(space.va2ra(black_box(vas[i])).unwrap().offset.into());
            acc
        });
    });
    c.bench_function("trans/va2ra_16pool_cold", |b| {
        let (mut i, mut acc) = (0usize, 0u64);
        b.iter(|| {
            i = (i + 1) & 15;
            acc = acc.wrapping_add(space.va2ra_uncached(black_box(vas[i])).unwrap().offset.into());
            acc
        });
    });
    c.bench_function("trans/ra2va_16pool_cached", |b| {
        let (mut i, mut acc) = (0usize, 0u64);
        b.iter(|| {
            i = (i + 1) & 15;
            acc = acc.wrapping_add(space.ra2va(black_box(locs[i])).unwrap().raw());
            acc
        });
    });
    c.bench_function("trans/ra2va_16pool_cold", |b| {
        let (mut i, mut acc) = (0usize, 0u64);
        b.iter(|| {
            i = (i + 1) & 15;
            acc = acc.wrapping_add(space.ra2va_uncached(black_box(locs[i])).unwrap().raw());
            acc
        });
    });
}

fn bench_epoch_churn(c: &mut Bench) {
    // Worst case for the generation stamping: every access follows an
    // epoch bump, so the cache misses, walks, and refills each iteration.
    // This bounds the overhead the lookasides can add over the plain walk.
    let (mut space, objs) = build_space(1);
    let (_, _, va) = objs[0];
    c.bench_function("trans/va2ra_epoch_churn", |b| {
        let mut acc = 0u64;
        b.iter(|| {
            space.set_translation_cache(true); // bumps the epoch
            acc = acc.wrapping_add(space.va2ra(black_box(va)).unwrap().offset.into());
            acc
        });
    });
}

/// Deterministic xorshift for probe generation.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Cached and uncached translation must agree on every probe — successes
/// *and* errors — including across detach/re-attach churn.
fn check_equivalence() -> bool {
    let (mut space, objs) = build_space(8);
    let mut ok = true;
    let assert_agree = |space: &AddressSpace, label: &str, ok: &mut bool| {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..2_000 {
            let (pool, _, va) = objs[(xorshift(&mut state) as usize) % objs.len()];
            // In-range, out-of-range, and wildly foreign virtual addresses.
            let delta = xorshift(&mut state) % (1 << 22);
            let probe_va = va.add(delta);
            let a = space.va2ra(probe_va);
            let b = space.va2ra_uncached(probe_va);
            if a != b {
                eprintln!("hotpath: va2ra divergence ({label}) at {probe_va:?}: {a:?} vs {b:?}");
                *ok = false;
            }
            // In-range and out-of-pool relative locations, plus a pool id
            // that was never created.
            let off = (xorshift(&mut state) % (1 << 21)) as u32;
            for loc in
                [RelLoc::new(pool, off), RelLoc::new(PoolId::new(977), off & 0xffff)]
            {
                let a = space.ra2va(loc);
                let b = space.ra2va_uncached(loc);
                if a != b {
                    eprintln!("hotpath: ra2va divergence ({label}) at {loc}: {a:?} vs {b:?}");
                    *ok = false;
                }
            }
        }
    };
    assert_agree(&space, "steady", &mut ok);
    // Detach half the pools: cached and uncached must now fail identically
    // for those, and keep succeeding for the rest.
    for &(pool, _, _) in objs.iter().step_by(2) {
        space.detach(pool).expect("detach");
    }
    assert_agree(&space, "half-detached", &mut ok);
    // Re-attach (possibly at new bases): stale entries must never serve.
    for &(pool, _, _) in objs.iter().step_by(2) {
        space.attach(pool).expect("re-attach");
    }
    let mut state = 0xdead_beefu64;
    for _ in 0..2_000 {
        let (pool, loc, _) = objs[(xorshift(&mut state) as usize) % objs.len()];
        let a = space.ra2va(loc);
        let b = space.ra2va_uncached(loc);
        if a != b {
            eprintln!("hotpath: post-reattach divergence for {pool}: {a:?} vs {b:?}");
            ok = false;
        }
        let va = b.expect("attached");
        if space.va2ra(va) != space.va2ra_uncached(va) {
            eprintln!("hotpath: post-reattach va2ra divergence for {pool}");
            ok = false;
        }
    }
    ok
}

struct YcsbRun {
    checksum: u64,
    cycles: f64,
    ptr: PtrStats,
    trans: TransStats,
}

/// One YCSB-A run over the RB tree, measured past warm-up.
/// `site_check_cache: None` leaves the builder default in force — the
/// default-on arm below proves the shipped configuration is the measured
/// one, not an opt-in variant.
fn run_ycsb(
    mode: Mode,
    translation_cache: bool,
    site_check_cache: Option<bool>,
    records: u64,
    operations: u64,
) -> YcsbRun {
    let mut space = AddressSpace::new(0xA11C);
    let pool = space.create_pool("hot-ycsb", 64 << 20).expect("pool");
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(SimConfig::table_iv());
    machine.set_pool_ranges(ranges);
    let mut builder = ExecEnv::builder(space)
        .mode(mode)
        .pool(pool)
        .translation_cache(translation_cache)
        .sink(machine);
    if let Some(on) = site_check_cache {
        builder = builder.site_check_cache(on);
    }
    let mut env = builder.build();
    let w = generate_preset(Preset::A, records, operations, 42);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    env.sink_mut().reset_measurement();
    env.reset_stats();
    env.space_mut().reset_trans_stats();
    let summary = store.run(&mut env, &w).expect("run");
    let (space, ptr, machine) = env.into_parts();
    YcsbRun {
        checksum: summary.checksum,
        cycles: machine.cycles(),
        ptr,
        trans: space.trans_stats(),
    }
}

fn main() {
    let t0 = Instant::now();
    let (records, operations) = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => (1_000, 5_000),
        Ok("medium") => (5_000, 20_000),
        _ => (10_000, 50_000),
    };
    eprintln!("hotpath: lookaside micro + YCSB-A at {records} records ...");

    let mut c = Bench::new();
    bench_translations(&mut c);
    bench_multipool(&mut c);
    bench_epoch_churn(&mut c);
    c.report();
    let median = |name: &str| {
        c.summaries().iter().find(|s| s.name == name).map(|s| s.median_ns).unwrap_or(f64::NAN)
    };
    let speedup = median("trans/va2ra_cold_walk") / median("trans/va2ra_cached_hit");
    let speedup_16 = median("trans/va2ra_16pool_cold") / median("trans/va2ra_16pool_cached");

    // Semantics: cached and uncached must be indistinguishable.
    let mut equivalence_ok = check_equivalence();

    // YCSB-A with the translation caches on vs off: identical simulated
    // results, and the on-run's hit rate is the acceptance criterion.
    let on = run_ycsb(Mode::Sw, true, Some(false), records, operations);
    let off = run_ycsb(Mode::Sw, false, Some(false), records, operations);
    if on.checksum != off.checksum || on.cycles != off.cycles || on.ptr != off.ptr {
        eprintln!(
            "hotpath: translation-cache divergence: checksum {:#x} vs {:#x}, cycles {} vs {}",
            on.checksum, off.checksum, on.cycles, off.cycles
        );
        equivalence_ok = false;
    }
    let hit_rate = on.trans.svalb_hit_rate();
    let spolb_rate = on.trans.spolb_hit_rate();

    // SW-mode site-check ablation (default-on, *modelled*): checksums must
    // still agree and every elided check must be accounted for.
    let cached = run_ycsb(Mode::Sw, true, Some(true), records, operations);
    if cached.checksum != on.checksum {
        eprintln!("hotpath: site-check-cache changed the checksum");
        equivalence_ok = false;
    }
    if cached.ptr.dynamic_checks + cached.ptr.checks_elided != on.ptr.dynamic_checks {
        eprintln!(
            "hotpath: check conservation violated: {} + {} != {}",
            cached.ptr.dynamic_checks, cached.ptr.checks_elided, on.ptr.dynamic_checks
        );
        equivalence_ok = false;
    }

    // Builder defaults must be the measured site-cache-on configuration:
    // the default arm has to be bit-identical to the explicit one, or the
    // numbers this tier reports describe a configuration nobody gets.
    let default_arm = run_ycsb(Mode::Sw, true, None, records, operations);
    let default_is_cached = default_arm.checksum == cached.checksum
        && default_arm.cycles == cached.cycles
        && default_arm.ptr == cached.ptr;
    if !default_is_cached {
        eprintln!(
            "hotpath: builder-default arm diverged from explicit site-cache-on: \
             checksum {:#x} vs {:#x}, cycles {} vs {}",
            default_arm.checksum, cached.checksum, default_arm.cycles, cached.cycles
        );
        equivalence_ok = false;
    }

    // Multi-threaded YCSB-A over one shared pool: each worker is one
    // simulated core, throughput is ops over the makespan (the slowest
    // core's cycles), and the checksum must be identical at every thread
    // count — the sharded heap's determinism contract.
    let mt_runs: Vec<_> = [1u32, 2, 4, 8]
        .iter()
        .map(|&t| run_mt_ycsb(&MtSpec::new(records, operations, t, 42)).expect("mt ycsb"))
        .collect();
    let mt_checksum_ok = mt_runs.iter().all(|r| r.checksum == mt_runs[0].checksum);
    if !mt_checksum_ok {
        eprintln!("hotpath: mt checksum varies with thread count");
        equivalence_ok = false;
    }
    let mt_speedup_8 =
        mt_runs[0].makespan_cycles / mt_runs.last().expect("runs").makespan_cycles;

    println!("\n=== Hot path: software lookasides (host ns; YCSB-A hit rates) ===");
    println!("va2ra speedup (cached vs cold walk): {speedup:.1}x single, {speedup_16:.1}x 16-pool");
    println!("YCSB-A sVALB hit rate: {:.4}  sPOLB hit rate: {:.4}", hit_rate, spolb_rate);
    println!(
        "SW site-check ablation: {} executed + {} elided (off: {}), cycles {:.0} vs {:.0}",
        cached.ptr.dynamic_checks,
        cached.ptr.checks_elided,
        on.ptr.dynamic_checks,
        cached.cycles,
        on.cycles
    );
    println!(
        "builder defaults: {}",
        if default_is_cached { "site-cache-on arm (bit-identical)" } else { "DIVERGED" }
    );
    println!(
        "MT YCSB-A modelled speedup at 8 cores: {mt_speedup_8:.2}x  (checksums {})",
        if mt_checksum_ok { "thread-count-invariant" } else { "DIVERGED" }
    );
    for r in &mt_runs {
        println!(
            "  t{}: makespan {:.0} cycles, {} refills, {} slab overflows",
            r.threads, r.makespan_cycles, r.refills, r.slab_overflows
        );
    }
    println!("equivalence: {}", if equivalence_ok { "ok" } else { "DIVERGED" });

    let mut rep = BenchReport::new("hotpath", par::jobs(), t0.elapsed());
    rep.set_extra("speedup", Json::F64(speedup));
    rep.set_extra("speedup_16pool", Json::F64(speedup_16));
    rep.set_extra("svalb_hit_rate", Json::F64(hit_rate));
    rep.set_extra("spolb_hit_rate", Json::F64(spolb_rate));
    rep.set_extra("equivalence_ok", Json::Bool(equivalence_ok));
    rep.set_extra("mt_speedup_8", Json::F64(mt_speedup_8));
    rep.set_extra("mt_checksum_ok", Json::Bool(mt_checksum_ok));
    rep.set_extra("default_is_sitecache_on", Json::Bool(default_is_cached));
    for s in c.summaries() {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(s.name.clone())),
            ("median_ns", Json::F64(s.median_ns)),
            ("p95_ns", Json::F64(s.p95_ns)),
            ("min_ns", Json::F64(s.min_ns)),
            ("iters_per_sample", Json::U64(s.iters_per_sample)),
            ("samples", Json::U64(s.samples as u64)),
        ]));
    }
    for (label, r) in
        [("ycsb_a_sw_cached", &on), ("ycsb_a_sw_uncached", &off), ("ycsb_a_sw_sitecache", &cached)]
    {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(label.to_string())),
            ("cycles", Json::F64(r.cycles)),
            ("checksum", Json::U64(r.checksum)),
            ("dynamic_checks", Json::U64(r.ptr.dynamic_checks)),
            ("checks_elided", Json::U64(r.ptr.checks_elided)),
            ("spolb_hits", Json::U64(r.trans.spolb_hits)),
            ("spolb_misses", Json::U64(r.trans.spolb_misses)),
            ("svalb_hits", Json::U64(r.trans.svalb_hits)),
            ("svalb_misses", Json::U64(r.trans.svalb_misses)),
            ("trans_epoch_bumps", Json::U64(r.trans.epoch_bumps)),
        ]));
    }
    for r in &mt_runs {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(format!("ycsb_a_mt_t{}", r.threads))),
            ("cycles", Json::F64(r.makespan_cycles)),
            ("checksum", Json::U64(r.checksum)),
            ("total_cycles", Json::F64(r.total_cycles)),
            ("refills", Json::U64(r.refills)),
            ("central_allocs", Json::U64(r.central_allocs)),
            ("slab_overflows", Json::U64(r.slab_overflows)),
            ("spolb_hits", Json::U64(r.trans.spolb_hits)),
            ("svalb_hits", Json::U64(r.trans.svalb_hits)),
        ]));
    }
    rep.write();
    if !equivalence_ok {
        std::process::exit(1);
    }
}
