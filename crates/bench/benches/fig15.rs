//! Regenerates paper Fig. 15: the fraction of memory accesses that are
//! storeP instructions, access the VALB/VAW, and access the POLB/POW in the
//! HW build. Expect storeP ~= VALB << POLB (the paper reports 0.38%, 0.22%
//! and 12.6% on whole-program traces; ours count only data-structure
//! accesses, so the fractions are proportionally larger).

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{collect_suite, fig15, par, scale_spec};
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!("fig15: running 6 benchmarks x 4 modes on {jobs} workers ...");
    let t0 = Instant::now();
    let suite = collect_suite(SimConfig::table_iv(), &spec);
    let wall = t0.elapsed();
    println!("\n=== Fig. 15: access mix of the HW build ===");
    println!("{}", fig15(&suite));
    BenchReport::new("fig15", jobs, wall).push_suite(&suite).write();
}
