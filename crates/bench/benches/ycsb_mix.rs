//! Extension beyond the paper: how the four builds compare under the
//! standard YCSB preset mixes (A: update-heavy, B: read-mostly, C:
//! read-only, D: read-latest — the paper evaluates only a D-like mix).
//! The expectation: the SW build's penalty grows with write intensity
//! (more storeP sites check and convert), while HW stays flat.

use utpr_bench::Table;
use utpr_ds::RbTree;
use utpr_heap::AddressSpace;
use utpr_kv::ycsb::{generate_preset, Preset};
use utpr_kv::KvStore;
use utpr_ptr::{ExecEnv, Mode};
use utpr_sim::{Machine, RangeEntry, SimConfig};

fn run(preset: Preset, mode: Mode, records: u64, operations: u64) -> f64 {
    let mut space = AddressSpace::new(0x9C5B);
    let pool = space.create_pool("ycsb", 256 << 20).expect("pool");
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(SimConfig::table_iv());
    machine.set_pool_ranges(ranges);
    let mut env = ExecEnv::new(space, mode, Some(pool), machine);
    let w = generate_preset(preset, records, operations, 42);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    env.sink_mut().reset_measurement();
    store.run(&mut env, &w).expect("run");
    let (_s, _p, machine) = env.into_parts();
    machine.cycles()
}

fn main() {
    let (records, operations) = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => (1_000, 5_000),
        Ok("medium") => (5_000, 20_000),
        _ => (10_000, 100_000),
    };
    eprintln!("ycsb_mix: 4 presets x 4 modes on RB at {records} records ...");
    println!("\n=== Extension: YCSB preset mixes, RB tree, normalized to Volatile ===");
    let mut t = Table::new(&["preset", "mix", "explicit", "sw", "hw"]);
    for preset in Preset::ALL {
        let vol = run(preset, Mode::Volatile, records, operations);
        let (r, u, i) = preset.mix();
        t.row(vec![
            preset.name().to_string(),
            format!("{:.0}R/{:.0}U/{:.0}I", r * 100.0, u * 100.0, i * 100.0),
            format!("{:.2}", run(preset, Mode::Explicit, records, operations) / vol),
            format!("{:.2}", run(preset, Mode::Sw, records, operations) / vol),
            format!("{:.2}", run(preset, Mode::Hw, records, operations) / vol),
        ]);
    }
    println!("{}", t.render());
}
