//! Extension beyond the paper: how the four builds compare under the
//! standard YCSB preset mixes (A: update-heavy, B: read-mostly, C:
//! read-only, D: read-latest — the paper evaluates only a D-like mix).
//! The expectation: the SW build's penalty grows with write intensity
//! (more storeP sites check and convert), while HW stays flat.

use std::time::Instant;
use utpr_bench::report::{BenchReport, Json};
use utpr_bench::{par, Table};
use utpr_ds::RbTree;
use utpr_heap::AddressSpace;
use utpr_kv::ycsb::{generate_preset, Preset};
use utpr_kv::KvStore;
use utpr_ptr::{ExecEnv, Mode};
use utpr_sim::{Machine, RangeEntry, SimConfig, SimStats};

struct Run {
    cycles: f64,
    sim: SimStats,
    resident_bytes: u64,
}

fn run(preset: Preset, mode: Mode, records: u64, operations: u64) -> Run {
    let mut space = AddressSpace::new(0x9C5B);
    let pool = space.create_pool("ycsb", 256 << 20).expect("pool");
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(SimConfig::table_iv());
    machine.set_pool_ranges(ranges);
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).sink(machine).build();
    let w = generate_preset(preset, records, operations, 42);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    env.sink_mut().reset_measurement();
    store.run(&mut env, &w).expect("run");
    let (space, _p, machine) = env.into_parts();
    Run { cycles: machine.cycles(), sim: machine.stats(), resident_bytes: space.resident_bytes() }
}

fn main() {
    let (records, operations) = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => (1_000, 5_000),
        Ok("medium") => (5_000, 20_000),
        _ => (10_000, 100_000),
    };
    let jobs = par::jobs();
    eprintln!("ycsb_mix: 4 presets x 4 modes on RB at {records} records on {jobs} workers ...");
    let grid: Vec<(Preset, Mode)> =
        Preset::ALL.iter().flat_map(|p| Mode::ALL.iter().map(move |m| (*p, *m))).collect();
    let t0 = Instant::now();
    let flat = par::par_map(&grid, jobs, |_, &(p, m)| run(p, m, records, operations));
    let wall = t0.elapsed();
    println!("\n=== Extension: YCSB preset mixes, RB tree, normalized to Volatile ===");
    let mut t = Table::new(&["preset", "mix", "explicit", "sw", "hw"]);
    let mut rep = BenchReport::new("ycsb_mix", jobs, wall);
    for (pi, preset) in Preset::ALL.iter().enumerate() {
        let rs = &flat[pi * Mode::ALL.len()..(pi + 1) * Mode::ALL.len()];
        let vol = rs[0].cycles;
        let (r, u, i) = preset.mix();
        t.row(vec![
            preset.name().to_string(),
            format!("{:.0}R/{:.0}U/{:.0}I", r * 100.0, u * 100.0, i * 100.0),
            format!("{:.2}", rs[1].cycles / vol),
            format!("{:.2}", rs[2].cycles / vol),
            format!("{:.2}", rs[3].cycles / vol),
        ]);
        for (mi, mode) in Mode::ALL.iter().enumerate() {
            let run = &rs[mi];
            rep.push_record(Json::obj(vec![
                ("preset", Json::Str(preset.name().to_string())),
                ("mode", Json::Str(mode.label().to_string())),
                ("cycles", Json::F64(run.cycles)),
                ("resident_bytes", Json::U64(run.resident_bytes)),
                ("branch_mispredicts", Json::U64(run.sim.branch_mispredicts)),
                ("storep_fraction", Json::F64(run.sim.storep_fraction())),
                ("valb_fraction", Json::F64(run.sim.valb_fraction())),
                ("polb_fraction", Json::F64(run.sim.polb_fraction())),
            ]));
        }
    }
    println!("{}", t.render());
    rep.write();
}
