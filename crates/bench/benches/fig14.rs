//! Regenerates paper Fig. 14: sensitivity of the HW build to the VALB/VAW
//! latency (1..50 cycles), normalized to the Explicit build. The paper
//! finds less than 10% impact even at 50 cycles because storeP (and hence
//! VALB traffic) is a tiny fraction of accesses.

use utpr_bench::{fig14, scale_spec};

fn main() {
    let spec = scale_spec();
    eprintln!("fig14: sweeping VALB latency over 6 benchmarks ...");
    println!("\n=== Fig. 14: HW runtime vs VALB latency, normalized to Explicit ===");
    println!("{}", fig14(&spec, &[1, 10, 20, 30, 40, 50]));
}
