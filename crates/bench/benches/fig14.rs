//! Regenerates paper Fig. 14: sensitivity of the HW build to the VALB/VAW
//! latency (1..50 cycles), normalized to the Explicit build. The paper
//! finds less than 10% impact even at 50 cycles because storeP (and hence
//! VALB traffic) is a tiny fraction of accesses.

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{fig14, fig14_runs, par, scale_spec};

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    let latencies = [1u64, 10, 20, 30, 40, 50];
    eprintln!(
        "fig14: sweeping VALB latency over 6 benchmarks x {} points on {jobs} workers ...",
        latencies.len()
    );
    let t0 = Instant::now();
    let runs = fig14_runs(&spec, &latencies, jobs);
    let wall = t0.elapsed();
    println!("\n=== Fig. 14: HW runtime vs VALB latency, normalized to Explicit ===");
    println!("{}", fig14(&runs, &latencies));
    let mut rep = BenchReport::new("fig14", jobs, wall);
    for r in &runs {
        rep.push_run(r);
    }
    rep.write();
}
