//! Server bench tier: the networked KV front under closed-loop and
//! open-loop zipfian load, sweeping the group-commit `batch_window` to
//! measure fence amortization end to end — sockets, shard routing, undo
//! transactions, one persist barrier per batch.
//!
//! Emits `BENCH_server.json`:
//! - one record per (mode, window) cell with throughput (ops/s),
//!   nearest-rank p50/p99/p999 latency, `fences/op`, `flushes/op`,
//!   `ops`, and the contents checksum — a pure function of the load
//!   spec (disjoint per-vuser insert keys, derived values), so it is
//!   bit-identical across windows and modes and diffable as a baseline;
//! - one `serve_kill` record for the kill-the-server-mid-load arm
//!   (crash boundary, acked/unacked PUTs, oracle verdicts) — this row
//!   deliberately carries no `ops`/`cycles`/`checksum` so baseline
//!   diffing skips it (crash timing is seeded but boundary counts move
//!   with code changes);
//! - extras `fence_amortization` (fences/op at window 1 ÷ window 8 —
//!   the tentpole gate wants ≥ 2.0), `checksum_ok`, and
//!   `kill_oracles_ok`. Exits nonzero when a gate fails.

use std::time::Instant;

use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_heap::FlushModel;
use utpr_kv::workload::key_of_index;
use utpr_serve::{
    expected_put_keys, kill_arm, preload, run_load, DirectView, KillSpec, LoadMode, LoadSpec,
    ServeConfig, Server,
};

const SEED: u64 = 0x5EED_C0DE;
const WINDOWS: [usize; 3] = [1, 8, 32];

struct Cell {
    name: String,
    window: usize,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    fences_per_op: f64,
    flushes_per_op: f64,
    ops: u64,
    checksum: u64,
}

fn cfg(window: usize) -> ServeConfig {
    ServeConfig {
        shards: 4,
        batch_window: window,
        pool_bytes: 64 << 20,
        slab_bytes: 1 << 20,
        flush_model: FlushModel::Eadr,
        seed: SEED,
    }
}

fn main() {
    let t0 = Instant::now();
    let (operations, connections) = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => (4_000u64, 16u32),
        Ok("medium") => (10_000, 24),
        _ => (24_000, 32),
    };
    let records = (operations / 8).max(256);
    let base = LoadSpec {
        connections,
        threads: 2,
        records,
        operations,
        read_fraction: 0.5,
        mode: LoadMode::Closed { pipeline: 16 },
        seed: SEED,
        track_acks: false,
    };
    eprintln!(
        "server: closed w{{1,8,32}} + open, {operations} ops x {connections} vusers, \
         {records} records ..."
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &window in &WINDOWS {
        let name = format!("serve_closed_w{window}");
        let cell = run_and_audit(&name, window, &base);
        eprintln!(
            "  {name}: {:.0} ops/s, p99 {:.0}us, {:.3} fences/op",
            cell.throughput, cell.p99_us, cell.fences_per_op
        );
        cells.push(cell);
    }

    // Open loop at ~60% of the batched closed-loop rate: pacing changes,
    // contents must not.
    let rate = (cells[1].throughput * 0.6).max(500.0);
    let open = LoadSpec { mode: LoadMode::Open { ops_per_sec: rate }, ..base };
    let cell = run_and_audit("serve_open_w8", 8, &open);
    eprintln!(
        "  serve_open_w8: {:.0} ops/s offered {rate:.0}, p99 {:.0}us, {:.3} fences/op",
        cell.throughput, cell.p99_us, cell.fences_per_op
    );
    cells.push(cell);

    // Gate 1: fence amortization — window 8 must at least halve fences
    // per write against the unbatched server.
    let unbatched = cells[0].fences_per_op;
    let batched = cells[1].fences_per_op;
    let amortization = if batched > 0.0 { unbatched / batched } else { f64::INFINITY };
    let amortization_ok = amortization >= 2.0;

    // Gate 2: contents are window- and mode-invariant.
    let reference = cells[0].checksum;
    let checksum_ok = cells.iter().all(|c| c.checksum == reference);

    // Gate 3: the kill arm recovers with zero oracle failures.
    let kill = kill_arm(&KillSpec {
        cfg: cfg(16),
        load: LoadSpec {
            operations: (operations / 4).max(1_000),
            track_acks: true,
            ..base
        },
        crash_window: 0.5,
        seed: SEED,
    })
    .expect("kill arm harness");
    for f in &kill.oracle_failures {
        eprintln!("server: kill-arm oracle failure: {f}");
    }
    let kill_ok = kill.crashed && kill.oracle_failures.is_empty() && kill.revived;
    eprintln!(
        "  serve_kill: boundary {}, {} acked / {} unacked, crashed={}, revived={}, oracles {}",
        kill.boundary,
        kill.acked,
        kill.unacked,
        kill.crashed,
        kill.revived,
        if kill.oracle_failures.is_empty() { "clean" } else { "VIOLATED" },
    );

    println!("\n=== Group-commit server: fences/op by batch window ===");
    for c in &cells {
        println!(
            "{}: {:.0} ops/s, p50 {:.0}us p99 {:.0}us p999 {:.0}us, {:.3} fences/op",
            c.name, c.throughput, c.p50_us, c.p99_us, c.p999_us, c.fences_per_op
        );
    }
    println!(
        "amortization w1/w8: {amortization:.1}x ({}), checksums {}, kill arm {}",
        if amortization_ok { "gate >= 2.0 holds" } else { "GATE FAILED" },
        if checksum_ok { "invariant" } else { "DIVERGED" },
        if kill_ok { "recovered clean" } else { "ORACLE FAILURES" },
    );

    let mut rep = BenchReport::new("server", par::jobs(), t0.elapsed());
    rep.set_extra("fence_amortization", Json::F64(amortization));
    rep.set_extra("checksum_ok", Json::Bool(checksum_ok));
    rep.set_extra("kill_oracles_ok", Json::Bool(kill_ok));
    for c in &cells {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(c.name.clone())),
            ("window", Json::U64(c.window as u64)),
            ("throughput_ops", Json::F64(c.throughput)),
            ("p50_us", Json::F64(c.p50_us)),
            ("p99_us", Json::F64(c.p99_us)),
            ("p999_us", Json::F64(c.p999_us)),
            ("fences_per_op", Json::F64(c.fences_per_op)),
            ("flushes_per_op", Json::F64(c.flushes_per_op)),
            ("ops", Json::U64(c.ops)),
            ("checksum", Json::U64(c.checksum)),
        ]));
    }
    rep.push_record(Json::obj(vec![
        ("name", Json::Str("serve_kill".into())),
        ("boundary", Json::U64(kill.boundary)),
        ("acked_puts", Json::U64(kill.acked)),
        ("unacked_puts", Json::U64(kill.unacked)),
        ("crashed", Json::Bool(kill.crashed)),
        ("revived", Json::Bool(kill.revived)),
        ("oracle_failures", Json::U64(kill.oracle_failures.len() as u64)),
    ]));
    rep.write();

    if !(amortization_ok && checksum_ok && kill_ok) {
        eprintln!("server: gate failure (see above)");
        std::process::exit(1);
    }
}

/// Runs a cell and audits final contents directly against the pool,
/// folding the deterministic checksum over preload ∪ expected inserts.
fn run_and_audit(name: &str, window: usize, spec: &LoadSpec) -> Cell {
    let cfg = cfg(window);
    let handle = Server::launch(&cfg).expect("launch");
    preload(handle.addr(), spec.records).expect("preload");
    let before = handle.counters();
    let report = run_load(handle.addr(), spec).expect("load");
    let after = handle.counters();
    let pool = handle.pool().clone();
    let (_, crashed) = handle.shutdown();
    assert!(!crashed, "{name}: server crashed without a fault plan");
    assert_eq!(report.dead_conns, 0, "{name}: connections died");
    assert_eq!(report.ops_acked, spec.operations, "{name}: lost acks");

    let writes = (after.writes() - before.writes()).max(1);
    let fences = after.pool_fences - before.pool_fences;
    let flushes = after.pool_lines_drained - before.pool_lines_drained;

    let mut view = DirectView::open(&pool, cfg.shards).expect("audit view");
    let keys = (0..spec.records)
        .map(key_of_index)
        .chain(expected_put_keys(spec));
    let checksum = view.checksum(keys).expect("audit checksum");

    Cell {
        name: name.to_string(),
        window,
        throughput: report.throughput,
        p50_us: report.latency.p50_us,
        p99_us: report.latency.p99_us,
        p999_us: report.latency.p999_us,
        fences_per_op: fences as f64 / writes as f64,
        flushes_per_op: flushes as f64 / writes as f64,
        ops: report.ops_acked,
        checksum,
    }
}
