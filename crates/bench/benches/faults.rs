//! Crash-point sweep over the six data structures: for every structure,
//! enumerate the durable-write boundaries of a transaction-wrapped
//! insert/remove workload, crash at each point (exhaustive at small scale,
//! seeded-sampled otherwise), recover, and check invariants + contents.
//! The per-(structure, crash-chunk) grid fans across worker threads.
//!
//! Scale: `UTPR_BENCH_SCALE=small` sweeps exhaustively with tier-1 sized
//! workloads; `medium`/`paper` grow the workload and sample crash points.
//! Replay a failure with `UTPR_QC_SEED=<seed>`. Filter structures with
//! `UTPR_FAULTS_ONLY=RB` (a Table III name).
//!
//! Exits nonzero when any crash point fails an oracle — the sweep is a
//! verification harness as much as a benchmark.

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_kv::faultsweep::{sweep_structure, SweepReport, SweepSpec};
use utpr_kv::Benchmark;

fn spec() -> SweepSpec {
    let seed = utpr_qc::runner::base_seed();
    match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => SweepSpec::small(seed),
        Ok("medium") => SweepSpec::sampled(seed, 48, 96),
        _ => SweepSpec::sampled(seed, 96, 192),
    }
}

fn report_json(r: &SweepReport) -> Json {
    Json::obj(vec![
        ("benchmark", Json::Str(r.benchmark.to_string())),
        ("crash_points", Json::U64(r.boundaries)),
        ("tested", Json::U64(r.tested)),
        ("rollbacks", Json::U64(r.rollbacks)),
        ("failures", Json::U64(r.failures.len() as u64)),
    ])
}

fn main() {
    let t0 = Instant::now();
    let spec = spec();
    let only = std::env::var("UTPR_FAULTS_ONLY").ok();
    let structures: Vec<Benchmark> = Benchmark::ALL
        .into_iter()
        .filter(|b| only.as_deref().is_none_or(|o| o == b.name()))
        .collect();
    assert!(!structures.is_empty(), "UTPR_FAULTS_ONLY matched no structure");

    let reports: Vec<SweepReport> = par::par_map_auto(&structures, |_, b| {
        sweep_structure(*b, &spec).expect("sweep setup failed")
    });

    println!("\n=== Crash-point sweep (seed {}) ===", spec.seed);
    let mut table = utpr_bench::Table::new(&["bench", "crash points", "tested", "rollbacks", "failures"]);
    let mut failed = 0usize;
    for r in &reports {
        table.row(vec![
            r.benchmark.to_string(),
            r.boundaries.to_string(),
            r.tested.to_string(),
            r.rollbacks.to_string(),
            r.failures.len().to_string(),
        ]);
        failed += r.failures.len();
        for f in &r.failures {
            eprintln!("FAIL {}: {f}", r.benchmark);
        }
    }
    println!("{}", table.render());

    let mut report = BenchReport::new("faults", par::jobs(), t0.elapsed());
    report.set_extra("seed", Json::U64(spec.seed));
    report.set_extra("total_failures", Json::U64(failed as u64));
    for r in &reports {
        report.push_record(report_json(r));
    }
    report.write();

    if failed > 0 {
        eprintln!("{failed} crash point(s) failed — replay with UTPR_QC_SEED={}", spec.seed);
        std::process::exit(1);
    }
}
