//! Regenerates paper Table III: the benchmark inventory (the six Boost data
//! structures re-implemented over the simulated persistent heap).

fn main() {
    println!("\n=== Table III: benchmarks ===");
    println!("{}", utpr_bench::table3());
}
