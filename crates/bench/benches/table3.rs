//! Regenerates paper Table III: the benchmark inventory (the six Boost data
//! structures re-implemented over the simulated persistent heap).

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};

fn main() {
    let t0 = Instant::now();
    let table = utpr_bench::table3();
    println!("\n=== Table III: benchmarks ===");
    println!("{table}");
    BenchReport::new("table3", par::jobs(), t0.elapsed())
        .set_extra("table", Json::Str(table))
        .write();
}
