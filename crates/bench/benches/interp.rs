//! Guest-MIPS benchmark tier for the IR interpreter's pre-decoded fast
//! path: fixed IR mixes (ALU, predictable/unpredictable branches,
//! sequential/strided memory, call/return) run through both execution
//! paths — the tree-walking reference and the flat pre-decoded dispatch
//! loop — plus the paper kernels with intra- vs inter-procedural check
//! inference.
//!
//! Emits `BENCH_interp.json` with the acceptance extras:
//! - `checksums_ok` — every mix and kernel produced bit-identical results,
//!   stats, and fuel across reference/decoded/inter arms;
//! - `speedup_mem` — min of the mem-seq/mem-stride decoded-vs-reference
//!   speedups, each the median of per-round time ratios with the two arms
//!   timed back-to-back inside every round (expected ≥ 2×);
//! - `residual_check_fraction` — max dynamic residual-check fraction over
//!   the paper-kernel drivers with interprocedural inference on (expected
//!   < 0.42, the paper's measured residual);
//! - `residual_check_fraction_intra` — same with intra-only inference, for
//!   contrast.
//!
//! Guest instruction counts and checksums are deterministic and gated by
//! `scripts/bench_baseline.sh`; `median_ns`/`guest_mips` are host timing
//! and never compared. Exits nonzero when a deterministic gate fails.

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_cc::analysis::InferOptions;
use utpr_cc::interp::{FnChecks, Interp, InterpStats, Val};
use utpr_cc::ir::{CmpOp, FnBuilder, IntOp, Module, Operand::*};
use utpr_cc::kernels;
use utpr_heap::AddressSpace;
use utpr_qc::bench::Bench;

const POOL_BYTES: u64 = 16 << 20;

/// `long alu(long n)` — arithmetic scrambling loop, no memory traffic.
fn mix_alu() -> utpr_cc::Function {
    let mut b = FnBuilder::new("alu", 1);
    let n = b.param(0);
    let (i, acc) = (b.fresh(), b.fresh());
    let check = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    let t = b.fresh();
    b.int_op(t, IntOp::Mul, Reg(acc), Imm(31));
    b.int_op(t, IntOp::Add, Reg(t), Reg(i));
    b.int_op(t, IntOp::Xor, Reg(t), Imm(0x5D5B));
    b.int_op(t, IntOp::Sub, Reg(t), Reg(i));
    b.int_op(t, IntOp::And, Reg(t), Imm(0x7FFF_FFFF));
    b.copy(acc, Reg(t));
    b.int_add(i, Reg(i), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// `long branch_pred(long n)` — a loop-carried branch that always goes the
/// same way (the interpreter-level equivalent of a well-predicted branch).
fn mix_branch_pred() -> utpr_cc::Function {
    let mut b = FnBuilder::new("branch_pred", 1);
    let n = b.param(0);
    let (i, acc) = (b.fresh(), b.fresh());
    let check = b.new_block();
    let body = b.new_block();
    let taken = b.new_block();
    let skipped = b.new_block();
    let cont = b.new_block();
    let done = b.new_block();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    let c2 = b.fresh();
    b.cmp_int(c2, CmpOp::Ge, Reg(i), Imm(0)); // always true
    b.cond_br(Reg(c2), taken, skipped);
    b.switch_to(taken);
    b.int_add(acc, Reg(acc), Reg(i));
    b.br(cont);
    b.switch_to(skipped);
    b.int_op(acc, IntOp::Sub, Reg(acc), Reg(i));
    b.br(cont);
    b.switch_to(cont);
    b.int_add(i, Reg(i), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// `long branch_unpred(long n)` — branches on a scrambled bit of the
/// induction variable (data-dependent, alternates irregularly).
fn mix_branch_unpred() -> utpr_cc::Function {
    let mut b = FnBuilder::new("branch_unpred", 1);
    let n = b.param(0);
    let (i, acc) = (b.fresh(), b.fresh());
    let check = b.new_block();
    let body = b.new_block();
    let odd = b.new_block();
    let even = b.new_block();
    let cont = b.new_block();
    let done = b.new_block();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    let h = b.fresh();
    b.int_op(h, IntOp::Mul, Reg(i), Imm(1_103_515_245));
    b.int_op(h, IntOp::And, Reg(h), Imm(1 << 12));
    b.cond_br(Reg(h), odd, even);
    b.switch_to(odd);
    b.int_op(acc, IntOp::Xor, Reg(acc), Reg(i));
    b.br(cont);
    b.switch_to(even);
    b.int_add(acc, Reg(acc), Imm(3));
    b.br(cont);
    b.switch_to(cont);
    b.int_add(i, Reg(i), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// `void* mem_setup(long words)` — persistent array initialised to
/// `slot[j] = j * 7`, run once outside the timed region so the timed mixes
/// are allocation-free and can iterate indefinitely.
fn mix_mem_setup() -> utpr_cc::Function {
    let mut b = FnBuilder::new("mem_setup", 1);
    let words = b.param(0);
    let p = b.fresh();
    let j = b.fresh();
    let check = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    let bytes = b.fresh();
    b.int_op(bytes, IntOp::Mul, Reg(words), Imm(8));
    b.pmalloc(p, Reg(bytes));
    b.const_int(j, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(j), Reg(words));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    let off = b.fresh();
    b.int_op(off, IntOp::Mul, Reg(j), Imm(8));
    let q = b.fresh();
    b.gep(q, Reg(p), Reg(off));
    let v = b.fresh();
    b.int_op(v, IntOp::Mul, Reg(j), Imm(7));
    b.store(Reg(q), 0, Reg(v));
    b.int_add(j, Reg(j), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(p)));
    b.finish()
}

/// `long mem_seq(void* p, long n)` — one sequential read-modify-write pass
/// over the array (`n` must equal the array length in words).
fn mix_mem_seq() -> utpr_cc::Function {
    let mut b = FnBuilder::new("mem_seq", 2);
    let p = b.param(0);
    let n = b.param(1);
    let (i, acc) = (b.fresh(), b.fresh());
    let check = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    let off = b.fresh();
    b.int_op(off, IntOp::Mul, Reg(i), Imm(8));
    let q = b.fresh();
    b.gep(q, Reg(p), Reg(off));
    let v = b.fresh();
    b.load(v, Reg(q), 0);
    b.int_add(acc, Reg(acc), Reg(v));
    let v2 = b.fresh();
    b.int_op(v2, IntOp::Xor, Reg(v), Imm(0xA5));
    b.store(Reg(q), 0, Reg(v2));
    b.int_add(i, Reg(i), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// `long mem_stride(void* p, long n)` — strided pointer-hopping pass:
/// index jumps by 17 modulo the (power-of-two) array length.
fn mix_mem_stride() -> utpr_cc::Function {
    let mut b = FnBuilder::new("mem_stride", 2);
    let p = b.param(0);
    let n = b.param(1);
    let (i, idx, acc) = (b.fresh(), b.fresh(), b.fresh());
    let check = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    let mask = b.fresh();
    b.int_op(mask, IntOp::Sub, Reg(n), Imm(1));
    b.const_int(i, 0);
    b.const_int(idx, 0);
    b.const_int(acc, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    b.int_add(idx, Reg(idx), Imm(17));
    b.int_op(idx, IntOp::And, Reg(idx), Reg(mask));
    let off = b.fresh();
    b.int_op(off, IntOp::Mul, Reg(idx), Imm(8));
    let q = b.fresh();
    b.gep(q, Reg(p), Reg(off));
    let v = b.fresh();
    b.load(v, Reg(q), 0);
    b.int_add(acc, Reg(acc), Reg(v));
    b.int_add(i, Reg(i), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// `long leaf_add(long a, long b)` — the call/return mix's callee.
fn mix_leaf_add() -> utpr_cc::Function {
    let mut b = FnBuilder::new("leaf_add", 2);
    let x = b.param(0);
    let y = b.param(1);
    let r = b.fresh();
    b.int_add(r, Reg(x), Reg(y));
    b.ret(Some(Reg(r)));
    b.finish()
}

/// `long call_ret(long n)` — a loop dominated by call/return transitions.
fn mix_call_ret() -> utpr_cc::Function {
    let mut b = FnBuilder::new("call_ret", 1);
    let n = b.param(0);
    let (i, acc) = (b.fresh(), b.fresh());
    let check = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(check);
    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);
    b.switch_to(body);
    b.call(Some(acc), "leaf_add", vec![Reg(acc), Reg(i)]);
    b.int_add(i, Reg(i), Imm(1));
    b.br(check);
    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// The mix module: all six measured entry points plus their helpers.
fn mix_module() -> Module {
    let mut m = Module::new();
    m.add(mix_alu());
    m.add(mix_branch_pred());
    m.add(mix_branch_unpred());
    m.add(mix_mem_setup());
    m.add(mix_mem_seq());
    m.add(mix_mem_stride());
    m.add(mix_leaf_add());
    m.add(mix_call_ret());
    m.verify().expect("mix module verifies");
    m
}

const MIXES: [&str; 6] =
    ["alu", "branch_pred", "branch_unpred", "mem_seq", "mem_stride", "call_ret"];

/// Whether a mix runs over the pre-built persistent array.
fn is_mem(mix: &str) -> bool {
    mix.starts_with("mem_")
}

/// One observed execution: result checksum plus every counter both paths
/// must agree on.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Observed {
    result: Result<Option<Val>, utpr_cc::InterpError>,
    stats: InterpStats,
    fuel_spent: u64,
    per_fn: Vec<(String, FnChecks)>,
}

/// Runs `entry(args)` in a fresh twin space through one path/inference
/// combination. `decoded` selects the fast path; both paths share the
/// inference report selected by `opts`.
fn observe(m: &Module, opts: &InferOptions, decoded: bool, entry: &str, n: i64) -> Observed {
    let mut space = AddressSpace::new(0x1217);
    let pool = space.create_pool("interp", POOL_BYTES).expect("pool");
    let fuel = u64::MAX;
    let mut it = Interp::new(&mut space, pool, m).with_fuel(fuel).with_inference(opts);
    let result = if decoded {
        let dm = it.decode();
        let args = prepare_args(&mut it, Some(&dm), entry, n);
        it.run_decoded(&dm, entry, args)
    } else {
        let args = prepare_args(&mut it, None, entry, n);
        it.run(entry, args)
    };
    Observed {
        result,
        stats: it.stats(),
        fuel_spent: fuel - it.fuel_left(),
        per_fn: it
            .per_function_checks()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    }
}

/// Builds the argument vector for `entry`, running `mem_setup` first on
/// the same path when the mix needs the persistent array.
fn prepare_args(
    it: &mut Interp<'_>,
    dm: Option<&utpr_cc::decode::DecodedModule>,
    entry: &str,
    n: i64,
) -> Vec<Val> {
    if !is_mem(entry) {
        return vec![Val::Int(n)];
    }
    let setup = vec![Val::Int(n)];
    let p = match dm {
        Some(dm) => it.run_decoded(dm, "mem_setup", setup),
        None => it.run("mem_setup", setup),
    };
    let p = p.expect("mem_setup succeeds").expect("mem_setup returns a pointer");
    vec![p, Val::Int(n)]
}

/// Differential verification of one entry point: reference and decoded
/// must agree bit-for-bit under both inference modes, and interprocedural
/// inference must only shrink executed checks (identical `max_checks`).
fn verify_entry(m: &Module, entry: &str, n: i64) -> Vec<String> {
    let mut problems = Vec::new();
    let intra = InferOptions::intra();
    let inter = InferOptions::inter();
    let r_intra = observe(m, &intra, false, entry, n);
    let d_intra = observe(m, &intra, true, entry, n);
    let r_inter = observe(m, &inter, false, entry, n);
    let d_inter = observe(m, &inter, true, entry, n);
    if r_intra != d_intra {
        problems.push(format!("{entry}: decoded diverged from reference (intra)"));
    }
    if r_inter != d_inter {
        problems.push(format!("{entry}: decoded diverged from reference (inter)"));
    }
    if r_intra.result != r_inter.result {
        problems.push(format!("{entry}: inference mode changed the result"));
    }
    if r_intra.stats.insts != r_inter.stats.insts
        || r_intra.stats.max_checks != r_inter.stats.max_checks
    {
        problems.push(format!("{entry}: inference mode changed insts/max_checks"));
    }
    if r_inter.stats.executed_checks > r_intra.stats.executed_checks {
        problems.push(format!(
            "{entry}: interprocedural inference increased checks ({} > {})",
            r_inter.stats.executed_checks, r_intra.stats.executed_checks
        ));
    }
    problems
}

/// Checksum of a run result, for the JSON report and the baseline gate.
fn checksum(o: &Observed) -> u64 {
    match &o.result {
        Ok(Some(Val::Int(i))) => *i as u64,
        Ok(Some(Val::Ptr(_))) => 1,
        Ok(None) => 0,
        Err(_) => u64::MAX,
    }
}

struct TimedArm {
    mix: String,
    arm: &'static str,
    guest_insts: u64,
    checksum: u64,
    median_ns: f64,
    min_ns: f64,
    guest_mips: f64,
}

/// Times one mix on one path: fresh space, `mem_setup` outside the timed
/// region, then repeated allocation-free runs of the entry point.
fn time_arm(c: &mut Bench, m: &Module, mix: &str, decoded: bool, n: i64) -> TimedArm {
    let mut space = AddressSpace::new(0x1217);
    let pool = space.create_pool("interp", POOL_BYTES).expect("pool");
    let mut it = Interp::new(&mut space, pool, m).with_fuel(u64::MAX);
    let dm = it.decode();
    let dm_ref = decoded.then_some(&dm);
    let args = prepare_args(&mut it, dm_ref, mix, n);
    // One untimed run pins the per-invocation guest instruction count and
    // the checksum (repeat runs retrace the same path: the mixes mutate
    // nothing that changes control flow).
    let before = it.stats().insts;
    let r0 = match dm_ref {
        Some(dm) => it.run_decoded(dm, mix, args.clone()),
        None => it.run(mix, args.clone()),
    };
    let guest_insts = it.stats().insts - before;
    let sum = checksum(&Observed {
        result: r0,
        stats: InterpStats::default(),
        fuel_spent: 0,
        per_fn: Vec::new(),
    });
    let arm = if decoded { "decoded" } else { "reference" };
    let name = format!("interp/{mix}/{arm}");
    c.bench_function(&name, |b| {
        b.iter(|| match dm_ref {
            Some(dm) => it.run_decoded(dm, mix, args.clone()),
            None => it.run(mix, args.clone()),
        });
    });
    let s = c.summaries().last().expect("just benched");
    let median_ns = s.median_ns;
    let min_ns = s.min_ns;
    TimedArm {
        mix: mix.to_string(),
        arm,
        guest_insts,
        checksum: sum,
        median_ns,
        min_ns,
        // Guest MIPS from the *minimum* sample: interpreter runs are
        // deterministic, so the true cost is the fastest observation and
        // scheduler noise is strictly additive — the median wanders by 2×
        // on a contended host while the min is stable.
        guest_mips: guest_insts as f64 * 1e3 / min_ns,
    }
}

/// Median of per-round reference/decoded time ratios for one mix, the two
/// arms timed back-to-back within each round. The per-arm minima above
/// are measured seconds apart, so host frequency drift between the two
/// measurements biases their ratio by far more than the 2× gate's margin;
/// pairing the arms inside each round makes the drift multiply *both*
/// sides of the ratio and cancel.
fn paired_speedup(m: &Module, mix: &str, n: i64) -> f64 {
    let mut space_r = AddressSpace::new(0x1217);
    let pool_r = space_r.create_pool("interp", POOL_BYTES).expect("pool");
    let mut it_r = Interp::new(&mut space_r, pool_r, m).with_fuel(u64::MAX);
    let args_r = prepare_args(&mut it_r, None, mix, n);

    let mut space_d = AddressSpace::new(0x1217);
    let pool_d = space_d.create_pool("interp", POOL_BYTES).expect("pool");
    let mut it_d = Interp::new(&mut space_d, pool_d, m).with_fuel(u64::MAX);
    let dm = it_d.decode();
    let args_d = prepare_args(&mut it_d, Some(&dm), mix, n);

    // Size rounds so each side runs ~0.5 ms: long enough to amortize the
    // timer, short enough that drift within a round is negligible.
    let probe = Instant::now();
    std::hint::black_box(it_r.run(mix, args_r.clone())).ok();
    let per = (probe.elapsed().as_nanos().max(1)) as u64;
    let iters = (500_000u64 / per).clamp(1, 4096);
    let rounds = 25usize;
    let warmup = 3usize;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds + warmup {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(it_r.run(mix, args_r.clone())).ok();
        }
        let tr = t0.elapsed().as_nanos() as f64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(it_d.run_decoded(&dm, mix, args_d.clone())).ok();
        }
        let td = t1.elapsed().as_nanos() as f64;
        if round >= warmup && td > 0.0 {
            ratios.push(tr / td);
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    ratios[ratios.len() / 2]
}

struct KernelRow {
    name: &'static str,
    checksum: u64,
    guest_insts: u64,
    residual_intra: f64,
    residual_inter: f64,
    per_fn: Vec<(String, f64)>,
}

/// Runs one paper-kernel driver through both inference modes on the
/// decoded path (already differentially verified against the reference)
/// and reports its residual-check fractions.
fn kernel_row(name: &'static str, n: i64) -> KernelRow {
    let m = kernels::module();
    let intra = observe(&m, &InferOptions::intra(), true, name, n);
    let inter = observe(&m, &InferOptions::inter(), true, name, n);
    KernelRow {
        name,
        checksum: checksum(&inter),
        guest_insts: inter.stats.insts,
        residual_intra: intra.stats.dynamic_check_fraction(),
        residual_inter: inter.stats.dynamic_check_fraction(),
        per_fn: inter
            .per_fn
            .iter()
            .filter(|(_, fc)| fc.max_checks > 0)
            .map(|(f, fc)| (f.clone(), fc.residual_fraction()))
            .collect(),
    }
}

fn main() {
    let t0 = Instant::now();
    // Mix iteration counts must stay powers of two (mem_stride masks with
    // n-1); kernel sizes follow the other tiers' scale knob.
    let (mix_n, kernel_n) = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => (256i64, 64i64),
        Ok("medium") => (1024, 128),
        _ => (4096, 256),
    };
    eprintln!("interp: guest-MIPS tier at mix_n={mix_n}, kernel_n={kernel_n} ...");

    let mixes = mix_module();
    let kernels_m = kernels::module();

    // Differential verification grid, fanned across workers: every mix and
    // every paper driver, reference vs decoded, intra vs inter.
    let mut grid: Vec<(&Module, &str, i64)> =
        MIXES.iter().map(|&mx| (&mixes, mx, mix_n)).collect();
    for name in kernels::DRIVERS {
        grid.push((&kernels_m, name, kernel_n));
    }
    let problems: Vec<String> = par::par_map_auto(&grid, |_, &(m, entry, n)| {
        verify_entry(m, entry, n)
    })
    .into_iter()
    .flatten()
    .collect();
    let mut checksums_ok = problems.is_empty();
    for p in &problems {
        eprintln!("interp: {p}");
    }

    // Timing, strictly serial for stable medians.
    let mut c = Bench::new();
    let mut rows: Vec<TimedArm> = Vec::new();
    for mix in MIXES {
        for decoded in [false, true] {
            rows.push(time_arm(&mut c, &mixes, mix, decoded, mix_n));
        }
    }
    c.report();
    for pair in rows.chunks(2) {
        if pair[0].checksum != pair[1].checksum || pair[0].guest_insts != pair[1].guest_insts {
            eprintln!("interp: timed arms diverged on {}", pair[0].mix);
            checksums_ok = false;
        }
    }
    // The gated number comes from the drift-cancelling paired design, not
    // from the two independently-timed arms above.
    let speedup_seq = paired_speedup(&mixes, "mem_seq", mix_n);
    let speedup_stride = paired_speedup(&mixes, "mem_stride", mix_n);
    let speedup_mem = speedup_seq.min(speedup_stride);

    // Paper kernels: residual dynamic-check fractions under both
    // inference modes, per whole run and per function.
    let kernel_rows: Vec<KernelRow> =
        kernels::DRIVERS.iter().map(|&name| kernel_row(name, kernel_n)).collect();
    let residual_inter =
        kernel_rows.iter().map(|r| r.residual_inter).fold(0.0f64, f64::max);
    let residual_intra =
        kernel_rows.iter().map(|r| r.residual_intra).fold(0.0f64, f64::max);
    if residual_inter >= 0.42 {
        eprintln!(
            "interp: residual check fraction {residual_inter:.3} >= 0.42 with inter inference"
        );
        checksums_ok = false;
    }

    println!("\n=== Interp tier: guest MIPS (decoded vs reference) ===");
    for pair in rows.chunks(2) {
        println!(
            "{:<16} {:>8.1} -> {:>8.1} MIPS  ({:.2}x, {} guest insts)",
            pair[0].mix,
            pair[0].guest_mips,
            pair[1].guest_mips,
            pair[1].guest_mips / pair[0].guest_mips,
            pair[0].guest_insts
        );
    }
    println!(
        "mem speedup, paired rounds (seq {speedup_seq:.2}x, stride {speedup_stride:.2}x): {speedup_mem:.2}x"
    );
    for r in &kernel_rows {
        println!(
            "{:<22} residual {:.3} intra -> {:.3} inter  (checksum {:#x})",
            r.name, r.residual_intra, r.residual_inter, r.checksum
        );
    }
    println!("residual check fraction (inter, max): {residual_inter:.3}");
    println!("differential: {}", if checksums_ok { "ok" } else { "DIVERGED" });

    let mut rep = BenchReport::new("interp", par::jobs(), t0.elapsed());
    rep.set_extra("checksums_ok", Json::Bool(checksums_ok));
    rep.set_extra("speedup_mem", Json::F64(speedup_mem));
    rep.set_extra("speedup_mem_seq", Json::F64(speedup_seq));
    rep.set_extra("speedup_mem_stride", Json::F64(speedup_stride));
    rep.set_extra("residual_check_fraction", Json::F64(residual_inter));
    rep.set_extra("residual_check_fraction_intra", Json::F64(residual_intra));
    for r in &rows {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(format!("mix/{}/{}", r.mix, r.arm))),
            ("guest_insts", Json::U64(r.guest_insts)),
            ("checksum", Json::U64(r.checksum)),
            ("median_ns", Json::F64(r.median_ns)),
            ("min_ns", Json::F64(r.min_ns)),
            ("guest_mips", Json::F64(r.guest_mips)),
        ]));
    }
    for r in &kernel_rows {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(format!("kernel/{}", r.name))),
            ("guest_insts", Json::U64(r.guest_insts)),
            ("checksum", Json::U64(r.checksum)),
            ("residual_intra", Json::F64(r.residual_intra)),
            ("residual_inter", Json::F64(r.residual_inter)),
            (
                "residual",
                Json::Obj(
                    r.per_fn
                        .iter()
                        .map(|(f, v)| (f.clone(), Json::F64(*v)))
                        .collect(),
                ),
            ),
        ]));
    }
    rep.write();
    if !checksums_ok {
        std::process::exit(1);
    }
}
