//! Regenerates paper Table IV: the simulated machine's parameters.

fn main() {
    println!("\n=== Table IV: simulator parameters ===");
    println!("{}", utpr_bench::table4());
}
