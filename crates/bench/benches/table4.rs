//! Regenerates paper Table IV: the simulated machine's parameters.

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};

fn main() {
    let t0 = Instant::now();
    let table = utpr_bench::table4();
    println!("\n=== Table IV: simulator parameters ===");
    println!("{table}");
    BenchReport::new("table4", par::jobs(), t0.elapsed())
        .set_extra("table", Json::Str(table))
        .write();
}
