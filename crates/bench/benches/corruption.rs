//! Media-fault campaign: torn-write crash sweeps, bit-flip retention
//! trials, CRC write-path overhead, and scrub throughput.
//!
//! Three questions, one harness:
//!
//! 1. **Torn sweeps** — under the ADR flush model, crash every structure
//!    at every durable-write boundary with the in-flight write landing
//!    partially and unfenced lines draining word-by-lottery. The oracle
//!    is *no silent wrong answer*: after recovery each structure
//!    validates and matches its transaction-prefix model, or recovery
//!    surfaces a typed corruption error.
//! 2. **Bit-flip campaigns** — seeded retention errors injected while the
//!    "machine" is off. The CRC arm must detect every observable flip at
//!    re-attach (`MediaCorruption`), then quarantine → salvage → reseal
//!    and report recovered vs lost keys. The CRC-off arm measures the
//!    silent-wrong rate the integrity layer exists to prevent.
//! 3. **Cost** — wall-clock overhead of the CRC write path (dirty-page
//!    tracking) on the Fig. 11 RB workload, and scrub throughput over a
//!    sealed pool.
//!
//! Scale via `UTPR_BENCH_SCALE=small|medium|paper`; replay any failure
//! with `UTPR_QC_SEED=<seed>`. Exits nonzero when any oracle fails — the
//! campaign is a verification harness as much as a benchmark.

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_heap::{AddressSpace, IntegrityMode};
use utpr_kv::faultsweep::{
    bitflip_campaign, sweep_structure, BitflipReport, BitflipSpec, SweepReport, SweepSpec,
};
use utpr_kv::workload::{generate, WorkloadSpec};
use utpr_kv::{Benchmark, KvStore, Op};
use utpr_ds::RbTree;
use utpr_ptr::{ExecEnv, Mode, NullSink};

fn torn_spec(seed: u64) -> SweepSpec {
    match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => SweepSpec::small(seed).torn(),
        Ok("medium") => SweepSpec::sampled(seed, 32, 64).torn(),
        _ => SweepSpec::sampled(seed, 64, 128).torn(),
    }
}

fn flip_spec(seed: u64) -> BitflipSpec {
    match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => BitflipSpec::small(seed),
        Ok("medium") => BitflipSpec { prepopulate: 64, flips: 4, trials: 16, seed, crc: true },
        _ => BitflipSpec { prepopulate: 128, flips: 6, trials: 32, seed, crc: true },
    }
}

fn torn_json(r: &SweepReport) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("torn_sweep".into())),
        ("benchmark", Json::Str(r.benchmark.to_string())),
        ("crash_points", Json::U64(r.boundaries)),
        ("tested", Json::U64(r.tested)),
        ("rollbacks", Json::U64(r.rollbacks)),
        ("detected", Json::U64(r.detected)),
        ("failures", Json::U64(r.failures.len() as u64)),
    ])
}

fn flip_json(r: &BitflipReport, crc: bool) -> Json {
    let observable = r.trials - r.clean;
    let detection_rate =
        if observable == 0 { 1.0 } else { r.detected as f64 / observable as f64 };
    Json::obj(vec![
        ("kind", Json::Str("bitflip".into())),
        ("benchmark", Json::Str(r.benchmark.to_string())),
        ("crc", Json::Bool(crc)),
        ("trials", Json::U64(r.trials)),
        ("detected", Json::U64(r.detected)),
        ("silent_wrong", Json::U64(r.silent_wrong)),
        ("clean", Json::U64(r.clean)),
        ("detection_rate", Json::F64(detection_rate)),
        ("recovered_keys", Json::U64(r.recovered_keys)),
        ("lost_keys", Json::U64(r.lost_keys)),
        ("salvaged_blocks", Json::U64(r.salvage.blocks_recovered)),
        ("salvage_intact_bytes", Json::U64(r.salvage.intact_bytes)),
        ("salvage_lost_bytes", Json::U64(r.salvage.lost_bytes)),
        ("failures", Json::U64(r.failures.len() as u64)),
    ])
}

/// Runs the Fig. 11 RB workload on a plain (unsimulated) env and returns
/// the measured wall seconds — the write path is the only variable, so
/// the CRC-on/off delta isolates the dirty-tracking cost.
fn rb_wall_seconds(spec: &WorkloadSpec, integrity: IntegrityMode, seed: u64) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..3 {
        let mut space = AddressSpace::new(seed ^ rep);
        space.set_integrity(integrity);
        let pool = space.create_pool("corruption-bench", 64 << 20).expect("pool");
        let mut env: ExecEnv<NullSink> =
            ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
        let w = generate(spec);
        let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
        store.load(&mut env, &w).expect("load");
        let t0 = Instant::now();
        for op in &w.ops {
            match op {
                Op::Get(k) => {
                    store.get(&mut env, *k).expect("get");
                }
                Op::Set(k, v) => {
                    store.set(&mut env, *k, *v).expect("set");
                }
            }
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Seals a populated pool and times a full scrub pass; returns
/// (MB scanned, MB/s).
fn scrub_throughput(spec: &WorkloadSpec, seed: u64) -> (f64, f64) {
    let mut space = AddressSpace::new(seed);
    space.set_integrity(IntegrityMode::Crc);
    let pool = space.create_pool("scrub-bench", 64 << 20).expect("pool");
    let mut env: ExecEnv<NullSink> = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let w = generate(spec);
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).expect("create");
    store.load(&mut env, &w).expect("load");
    let (mut space, _, _) = env.into_parts();
    space.restart(); // quiesce: seals every resident page
    let id = space.pool_store().id_of("scrub-bench").expect("id");
    let t0 = Instant::now();
    let scrub = space.pool_store_mut().scrub(id).expect("scrub");
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(scrub.corrupt_page.is_none(), "pristine pool must scrub clean");
    let mb = scrub.bytes_scanned as f64 / (1024.0 * 1024.0);
    (mb, mb / secs)
}

fn main() {
    let t0 = Instant::now();
    let seed = utpr_qc::runner::base_seed();
    let torn = torn_spec(seed);
    let flips = flip_spec(seed);
    let wl = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => WorkloadSpec::small(),
        _ => WorkloadSpec { records: 5_000, operations: 20_000, read_fraction: 0.95, seed: 42 },
    };

    // Fan the (structure, campaign) grid: torn sweep + two bitflip arms
    // per structure.
    #[derive(Clone, Copy)]
    enum Job {
        Torn(Benchmark),
        Flip(Benchmark, bool),
    }
    let grid: Vec<Job> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| [Job::Torn(b), Job::Flip(b, true), Job::Flip(b, false)])
        .collect();

    enum Out {
        Torn(SweepReport),
        Flip(BitflipReport, bool),
    }
    let outs: Vec<Out> = par::par_map_auto(&grid, |_, job| match *job {
        Job::Torn(b) => Out::Torn(sweep_structure(b, &torn).expect("torn sweep setup")),
        Job::Flip(b, crc) => {
            let s = if crc { flips } else { flips.crc_off() };
            Out::Flip(bitflip_campaign(b, &s).expect("bitflip setup"), crc)
        }
    });

    let mut failures = 0usize;
    let mut torn_table =
        utpr_bench::Table::new(&["bench", "points", "tested", "rollbacks", "detected", "failures"]);
    let mut flip_table = utpr_bench::Table::new(&[
        "bench", "crc", "trials", "detected", "silent", "recovered", "lost", "failures",
    ]);
    let mut records = Vec::new();
    for out in &outs {
        match out {
            Out::Torn(r) => {
                torn_table.row(vec![
                    r.benchmark.to_string(),
                    r.boundaries.to_string(),
                    r.tested.to_string(),
                    r.rollbacks.to_string(),
                    r.detected.to_string(),
                    r.failures.len().to_string(),
                ]);
                failures += r.failures.len();
                for f in &r.failures {
                    eprintln!("FAIL torn {}: {f}", r.benchmark);
                }
                records.push(torn_json(r));
            }
            Out::Flip(r, crc) => {
                flip_table.row(vec![
                    r.benchmark.to_string(),
                    crc.to_string(),
                    r.trials.to_string(),
                    r.detected.to_string(),
                    r.silent_wrong.to_string(),
                    r.recovered_keys.to_string(),
                    r.lost_keys.to_string(),
                    r.failures.len().to_string(),
                ]);
                failures += r.failures.len();
                for f in &r.failures {
                    eprintln!("FAIL bitflip {} (crc={crc}): {f}", r.benchmark);
                }
                records.push(flip_json(r, *crc));
            }
        }
    }
    println!("\n=== Torn-write crash sweep (ADR drain, seed {seed}) ===");
    println!("{}", torn_table.render());
    println!("=== Bit-flip retention campaign (seed {seed}) ===");
    println!("{}", flip_table.render());

    // CRC write-path overhead on the Fig. 11 RB workload.
    let t_off = rb_wall_seconds(&wl, IntegrityMode::Off, seed ^ 0xc0c0);
    let t_crc = rb_wall_seconds(&wl, IntegrityMode::Crc, seed ^ 0xc0c0);
    let overhead = t_crc / t_off - 1.0;
    println!(
        "CRC write-path overhead (RB, {} ops): {:.2}% ({:.3}s vs {:.3}s)",
        wl.operations,
        overhead * 100.0,
        t_crc,
        t_off
    );

    let (scrub_mb, scrub_mbps) = scrub_throughput(&wl, seed ^ 0x5c4b);
    println!("Scrub throughput: {scrub_mb:.1} MB sealed, {scrub_mbps:.0} MB/s");

    let mut report = BenchReport::new("corruption", par::jobs(), t0.elapsed());
    report.set_extra("seed", Json::U64(seed));
    report.set_extra("total_failures", Json::U64(failures as u64));
    report.set_extra("crc_overhead_frac", Json::F64(overhead));
    report.set_extra("crc_wall_s", Json::F64(t_crc));
    report.set_extra("crc_off_wall_s", Json::F64(t_off));
    report.set_extra("scrub_mb", Json::F64(scrub_mb));
    report.set_extra("scrub_mb_per_s", Json::F64(scrub_mbps));
    for r in records {
        report.push_record(r);
    }
    report.write();

    if failures > 0 {
        eprintln!("{failures} media-fault oracle failure(s) — replay with UTPR_QC_SEED={seed}");
        std::process::exit(1);
    }
}
