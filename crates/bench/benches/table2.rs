//! Regenerates paper Table II: on-chip storage and 45nm die area of the
//! three added hardware structures (storeP FSM buffer, POLB, VALB).

use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};

fn main() {
    let t0 = Instant::now();
    let table = utpr_bench::table2();
    println!("\n=== Table II: hardware storage costs ===");
    println!("{table}");
    BenchReport::new("table2", par::jobs(), t0.elapsed())
        .set_extra("table", Json::Str(table))
        .write();
}
