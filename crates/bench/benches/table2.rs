//! Regenerates paper Table II: on-chip storage and 45nm die area of the
//! three added hardware structures (storeP FSM buffer, POLB, VALB).

fn main() {
    println!("\n=== Table II: hardware storage costs ===");
    println!("{}", utpr_bench::table2());
}
