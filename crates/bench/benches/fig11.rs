//! Regenerates paper Fig. 11: execution time of the Explicit, SW and HW
//! builds normalized to the Volatile build, per benchmark plus geomean.
//!
//! Paper shapes to expect: HW within a few percent of Volatile (worst on
//! Splay), SW ≈ 2.75x on average, Explicit between HW and SW.

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{collect_suite, fig11, par, scale_spec};
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!(
        "fig11: running 6 benchmarks x 4 modes at {} records / {} ops on {jobs} workers ...",
        spec.records, spec.operations
    );
    let t0 = Instant::now();
    let suite = collect_suite(SimConfig::table_iv(), &spec);
    let wall = t0.elapsed();
    println!("\n=== Fig. 11: execution time normalized to Volatile ===");
    println!("{}", fig11(&suite));
    BenchReport::new("fig11", jobs, wall).push_suite(&suite).write();
}
