//! Micro-benchmarks of the core primitives: pointer encode/decode,
//! translations, allocator, zipfian sampling, and the simulated cache.
//! These track the cost of the library itself, not the simulated machine.
//! Runs on the in-workspace `utpr-qc` harness (median/p95/min per op).

use std::hint::black_box;
use utpr_qc::bench::Bench;
use utpr_qc::{bench_group, bench_main};
use utpr_heap::{AddressSpace, PageStore, Region};
use utpr_kv::rng::Rng;
use utpr_kv::workload::Zipfian;
use utpr_ptr::{C11Engine, UPtr};
use utpr_sim::cache::Cache;
use utpr_sim::config::CacheCfg;

fn bench_ptr_ops(c: &mut Bench) {
    let mut space = AddressSpace::new(3);
    let pool = space.create_pool("micro", 1 << 20).unwrap();
    let loc = space.pmalloc(pool, 64).unwrap();
    let rel = UPtr::from_rel(loc);
    c.bench_function("uptr/kind_decode", |b| {
        b.iter(|| black_box(black_box(rel).kind()));
    });
    c.bench_function("uptr/ra2va", |b| {
        b.iter(|| {
            let mut eng = C11Engine::new(&space);
            black_box(eng.ra2va(black_box(rel)).unwrap())
        });
    });
    c.bench_function("uptr/offset_arith", |b| {
        b.iter(|| black_box(black_box(rel).offset(24)));
    });
}

fn bench_allocator(c: &mut Bench) {
    c.bench_function("heap/alloc_free_cycle", |b| {
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, 1 << 20).unwrap();
        b.iter(|| {
            let p = region.alloc(&mut mem, 64).unwrap();
            region.free(&mut mem, black_box(p)).unwrap();
        });
    });
}

fn bench_workload(c: &mut Bench) {
    c.bench_function("kv/zipfian_sample", |b| {
        let z = Zipfian::new(10_000);
        let mut rng = Rng::new(1);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn bench_sim(c: &mut Bench) {
    c.bench_function("sim/cache_access", |b| {
        let mut cache = Cache::new(CacheCfg { sets: 64, ways: 8, line: 64, hit_cycles: 4 });
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xffff;
            black_box(cache.access(black_box(addr)))
        });
    });
}

bench_group!(benches, bench_ptr_ops, bench_allocator, bench_workload, bench_sim);
bench_main!(benches);
