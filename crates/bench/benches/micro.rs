//! Micro-benchmarks of the core primitives: pointer encode/decode,
//! translations, allocator, zipfian sampling, the simulated cache, and the
//! PageStore word fast paths. These track the cost of the library itself,
//! not the simulated machine. Runs on the in-workspace `utpr-qc` harness
//! (median/p95/min per op) and emits `BENCH_micro.json` per summary.

use std::hint::black_box;
use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_heap::pagestore::PAGE_SIZE;
use utpr_heap::{AddressSpace, PageStore, Region};
use utpr_kv::rng::Rng;
use utpr_kv::workload::Zipfian;
use utpr_ptr::{C11Engine, UPtr};
use utpr_qc::bench::Bench;
use utpr_qc::bench_group;
use utpr_sim::cache::Cache;
use utpr_sim::config::CacheCfg;

fn bench_ptr_ops(c: &mut Bench) {
    let mut space = AddressSpace::new(3);
    let pool = space.create_pool("micro", 1 << 20).unwrap();
    let loc = space.pmalloc(pool, 64).unwrap();
    let rel = UPtr::from_rel(loc);
    c.bench_function("uptr/kind_decode", |b| {
        b.iter(|| black_box(black_box(rel).kind()));
    });
    c.bench_function("uptr/ra2va", |b| {
        b.iter(|| {
            let mut eng = C11Engine::new(&space);
            black_box(eng.ra2va(black_box(rel)).unwrap())
        });
    });
    c.bench_function("uptr/offset_arith", |b| {
        b.iter(|| black_box(black_box(rel).offset(24)));
    });
}

fn bench_allocator(c: &mut Bench) {
    c.bench_function("heap/alloc_free_cycle", |b| {
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, 1 << 20).unwrap();
        b.iter(|| {
            let p = region.alloc(&mut mem, 64).unwrap();
            region.free(&mut mem, black_box(p)).unwrap();
        });
    });
}

fn bench_pagestore(c: &mut Bench) {
    // The three paths a u64 access can take: memoized same-page (fast),
    // alternating pages (memo miss, hash probe), page-straddling (slow
    // multi-page copy loop).
    let mut mem = PageStore::new();
    for page in 0..4u64 {
        mem.write_u64(page * PAGE_SIZE, page);
    }
    c.bench_function("pagestore/read_u64_same_page", |b| {
        b.iter(|| black_box(mem.read_u64(black_box(128))));
    });
    c.bench_function("pagestore/read_u64_alternating", |b| {
        let mut flip = 0u64;
        b.iter(|| {
            flip ^= PAGE_SIZE;
            black_box(mem.read_u64(black_box(flip + 128)))
        });
    });
    c.bench_function("pagestore/read_u64_straddle", |b| {
        b.iter(|| black_box(mem.read_u64(black_box(PAGE_SIZE - 4))));
    });
    c.bench_function("pagestore/write_u64_same_page", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            mem.write_u64(black_box(256), v);
        });
    });
}

fn bench_workload(c: &mut Bench) {
    c.bench_function("kv/zipfian_sample", |b| {
        let z = Zipfian::new(10_000);
        let mut rng = Rng::new(1);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn bench_sim(c: &mut Bench) {
    c.bench_function("sim/cache_access", |b| {
        let mut cache = Cache::new(CacheCfg { sets: 64, ways: 8, line: 64, hit_cycles: 4 });
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xffff;
            black_box(cache.access(black_box(addr)))
        });
    });
}

bench_group!(benches, bench_ptr_ops, bench_allocator, bench_pagestore, bench_workload, bench_sim);

fn main() {
    let t0 = Instant::now();
    let mut c = Bench::new();
    benches(&mut c);
    let mut rep = BenchReport::new("micro", par::jobs(), t0.elapsed());
    for s in c.summaries() {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(s.name.clone())),
            ("median_ns", Json::F64(s.median_ns)),
            ("p95_ns", Json::F64(s.p95_ns)),
            ("min_ns", Json::F64(s.min_ns)),
            ("iters_per_sample", Json::U64(s.iters_per_sample)),
            ("samples", Json::U64(s.samples as u64)),
        ]));
    }
    c.report();
    rep.write();
}
