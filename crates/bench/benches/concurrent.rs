//! Concurrent-index bench tier: throughput and persistence traffic of
//! the lock-free structures under the three flush strategies, over a
//! (structure × strategy × thread count) grid, plus lock-striped RB
//! rows as the locking baseline.
//!
//! Workload shape is YCSB-A-like (50 % GET / 30 % update-SET / 20 %
//! REMOVE) over a key space split into 8 fixed partitions assigned
//! round-robin to worker threads. Partition streams derive from the
//! seed alone, and every key belongs to exactly one partition, so the
//! final contents — and therefore the audit checksum — are a pure
//! function of the seed: bit-identical across flush strategies *and*
//! thread counts, even though the threads genuinely race on the shared
//! structure (bucket heads, neighbouring list links).
//!
//! Emits `BENCH_concurrent.json`:
//! - one record per grid cell with host-time throughput, `flushes/op`,
//!   `fences/op`, `elided/op`, and the audit checksum;
//! - extras `flit_savings_*` / `traverse_savings_*` — the fraction of
//!   Eager's `flushes/op` each strategy removed on the 4-thread run
//!   (the paper-motivated gate is ≥ 0.20 for both, enforced by
//!   `scripts/verify.sh --concurrent`);
//! - extra `checksum_ok` — strategy- and thread-invariance of the
//!   audit checksum. The process exits nonzero when it is false:
//!   flush strategies are persistence policies and must never change
//!   what the structure computes.

use std::sync::Arc;
use std::time::Instant;
use utpr_bench::par;
use utpr_bench::report::{BenchReport, Json};
use utpr_ds::concurrent::{ConcurrentIndex, FlushCounters, FlushStrategy, Handle};
use utpr_ds::{ConcHash, ConcList, RbTree, Striped};
use utpr_heap::{AddressSpace, FlushModel, HeapError, SharedPool, SlabId, UndoLog};
use utpr_ptr::{site, ExecEnv, Mode};

type Result<T> = std::result::Result<T, HeapError>;

/// Fixed partition count; thread counts in the grid must divide it.
const PARTS: u64 = 8;
const THREADS: [u32; 4] = [1, 2, 4, 8];
const SEED: u64 = 0xC0DE_5EED;

fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Key `i` of partition `p`: dense in `0..records`, disjoint across
/// partitions.
fn part_key(p: u64, i: u64, keys_per_part: u64) -> u64 {
    (i % keys_per_part) * PARTS + p
}

#[derive(Clone, Copy)]
struct GridSpec {
    records: u64,
    operations: u64,
}

struct CellRun {
    counters: FlushCounters,
    wall_ns: u64,
    checksum: u64,
}

/// Builds the shared base: pool in ADR mode (so unflushed lines are
/// genuinely volatile), per-thread arena slabs, the structure created
/// and prepopulated single-threaded, descriptor in the pool root.
fn build_base<I: ConcurrentIndex>(
    name: &str,
    spec: GridSpec,
    striped_slots: u32,
) -> Result<(Arc<SharedPool>, Vec<SlabId>)> {
    let sp = SharedPool::create(name, 64 << 20, 64)?;
    sp.set_flush_model(FlushModel::Adr);
    let slabs: Vec<SlabId> =
        (0..PARTS).map(|_| sp.carve_slab(2 << 20)).collect::<Result<Vec<_>>>()?;
    let mut space = AddressSpace::new(mix(SEED, 0xBA5E));
    let pool = space.adopt_shared(&sp)?;
    // Striped rows run sequential ops inside per-thread undo-log
    // transactions; slot directory installs are not thread-safe, so
    // every slot is materialized here, before any worker exists.
    for slot in 0..u64::from(striped_slots) {
        UndoLog::ensure_slot(&mut space, pool, 1 << 16, slot)?;
    }
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let idx = I::create(&mut env)?;
    let keys_per_part = (spec.records / PARTS).max(1);
    let mut h = Handle::new(&mut env, FlushStrategy::Eager)?;
    for p in 0..PARTS {
        for i in 0..keys_per_part {
            idx.insert(&mut h, part_key(p, i, keys_per_part), mix(SEED, 0x10AD ^ (p << 32) ^ i))?;
        }
    }
    env.set_root(site!("conc-bench.root", StackLocal), idx.descriptor())?;
    env.space_mut().fence();
    Ok((sp, slabs))
}

/// One worker: a private shard running its round-robin share of the
/// partition op streams through one handle.
fn worker<I: ConcurrentIndex>(
    sp: &Arc<SharedPool>,
    slabs: &[SlabId],
    spec: GridSpec,
    strategy: FlushStrategy,
    threads: u32,
    t: u32,
) -> Result<FlushCounters> {
    let mut space = AddressSpace::new(mix(SEED, 0x7268 ^ u64::from(t)));
    let pool = space.adopt_shared(sp)?;
    space.bind_arena_slab(pool, slabs[t as usize])?;
    let mut env =
        ExecEnv::builder(space).mode(Mode::Hw).pool(pool).txn_slot(u64::from(t)).build();
    let desc = env.root(site!("conc-bench.open", KnownReturn))?;
    let idx = I::open(desc);
    let mut h = Handle::new(&mut env, strategy)?;
    let keys_per_part = (spec.records / PARTS).max(1);
    let per_part_ops = (spec.operations / PARTS).max(1);
    let mut p = u64::from(t);
    while p < PARTS {
        for j in 0..per_part_ops {
            let r = mix(SEED, 0x09 ^ (p << 40) ^ j);
            let key = part_key(p, r % keys_per_part, keys_per_part);
            match (r >> 32) % 10 {
                0..=4 => drop(idx.get(&mut h, key)?),
                5..=7 => drop(idx.insert(&mut h, key, (r >> 8) ^ j)?),
                _ => drop(idx.remove(&mut h, key)?),
            }
        }
        p += u64::from(threads);
    }
    Ok(h.counters())
}

/// Single-threaded audit: folds `key → value` over the dense key space
/// in key order. Runs on a fresh shard so it sees only durable+cached
/// pool state, like any late-joining process would.
fn audit<I: ConcurrentIndex>(sp: &Arc<SharedPool>, spec: GridSpec) -> Result<u64> {
    let mut space = AddressSpace::new(mix(SEED, 0xA0D1));
    let pool = space.adopt_shared(sp)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let desc = env.root(site!("conc-bench.audit", KnownReturn))?;
    let idx = I::open(desc);
    let mut h = Handle::new(&mut env, FlushStrategy::Eager)?;
    let keys_per_part = (spec.records / PARTS).max(1);
    let mut checksum = 0u64;
    for key in 0..keys_per_part * PARTS {
        let v = idx.get(&mut h, key)?.map_or(0, |v| v ^ 0x5a5a);
        checksum = checksum.wrapping_mul(0x100_0000_01b3).wrapping_add(key ^ v.wrapping_add(1));
    }
    Ok(checksum)
}

/// Runs one grid cell: build, parallel measured phase, audit.
fn run_cell<I: ConcurrentIndex>(
    label: &str,
    spec: GridSpec,
    strategy: FlushStrategy,
    threads: u32,
    striped_slots: u32,
) -> Result<CellRun> {
    let name = format!("conc-bench-{label}-{}-t{threads}", strategy.label());
    let (sp, slabs) = build_base::<I>(&name, spec, striped_slots)?;
    let t0 = Instant::now();
    let outs: Vec<Result<FlushCounters>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (sp, slabs) = (&sp, &slabs[..]);
                s.spawn(move || worker::<I>(sp, slabs, spec, strategy, threads, t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut counters = FlushCounters::default();
    for o in outs {
        counters.merge(&o?);
    }
    let checksum = audit::<I>(&sp, spec)?;
    Ok(CellRun { counters, wall_ns, checksum })
}

fn per_op(n: u64, c: &FlushCounters) -> f64 {
    if c.ops == 0 {
        0.0
    } else {
        n as f64 / c.ops as f64
    }
}

fn throughput_kops(r: &CellRun) -> f64 {
    if r.wall_ns == 0 {
        0.0
    } else {
        r.counters.ops as f64 / (r.wall_ns as f64 / 1_000_000.0) // ops per ms = kops/s
    }
}

struct Row {
    structure: &'static str,
    strategy: &'static str,
    threads: u32,
    run: CellRun,
}

fn sweep_structure<I: ConcurrentIndex>(
    structure: &'static str,
    spec: GridSpec,
    rows: &mut Vec<Row>,
) -> Result<()> {
    for &threads in &THREADS {
        for strategy in FlushStrategy::ALL {
            let run = run_cell::<I>(structure, spec, strategy, threads, 0)?;
            eprintln!(
                "  {structure}/{}/t{threads}: {:.0} kops/s, {:.2} flushes/op, {:.2} elided/op",
                strategy.label(),
                throughput_kops(&run),
                run.counters.flushes_per_op(),
                per_op(run.counters.elided, &run.counters),
            );
            rows.push(Row { structure, strategy: strategy.label(), threads, run });
        }
    }
    Ok(())
}

fn find<'a>(rows: &'a [Row], s: &str, strat: &str, t: u32) -> &'a Row {
    rows.iter()
        .find(|r| r.structure == s && r.strategy == strat && r.threads == t)
        .expect("grid cell missing")
}

fn main() {
    let t0 = Instant::now();
    let (hash_spec, list_spec) = match std::env::var("UTPR_BENCH_SCALE").as_deref() {
        Ok("small") => (
            GridSpec { records: 512, operations: 4_096 },
            GridSpec { records: 64, operations: 512 },
        ),
        Ok("medium") => (
            GridSpec { records: 1_024, operations: 8_192 },
            GridSpec { records: 128, operations: 1_024 },
        ),
        _ => (
            GridSpec { records: 2_048, operations: 16_384 },
            GridSpec { records: 192, operations: 2_048 },
        ),
    };
    eprintln!(
        "concurrent: {{chash, clist}} x {{eager, flit, traverse}} x t{{1,2,4,8}} + striped-rb ..."
    );

    let mut rows: Vec<Row> = Vec::new();
    sweep_structure::<ConcHash>("chash", hash_spec, &mut rows).expect("chash sweep");
    sweep_structure::<ConcList>("clist", list_spec, &mut rows).expect("clist sweep");

    // Lock-striped RB baseline: strategies collapse behind the stripe
    // locks (stores go through the sequential write path), so it is
    // measured once per thread count under the eager label.
    for &threads in &THREADS {
        let run = run_cell::<Striped<RbTree>>("striped-rb", list_spec, FlushStrategy::Eager, threads, threads)
            .expect("striped sweep");
        eprintln!(
            "  striped-rb/eager/t{threads}: {:.0} kops/s, {:.2} fences/op",
            throughput_kops(&run),
            per_op(run.counters.fences, &run.counters),
        );
        rows.push(Row { structure: "striped-rb", strategy: "eager", threads, run });
    }

    // Gate inputs: flush savings at 4 threads, checksum invariance.
    let savings = |s: &str, strat: &str| {
        let eager = find(&rows, s, "eager", 4).run.counters.flushes_per_op();
        let this = find(&rows, s, strat, 4).run.counters.flushes_per_op();
        if eager == 0.0 {
            0.0
        } else {
            1.0 - this / eager
        }
    };
    let flit_hash = savings("chash", "flit");
    let trav_hash = savings("chash", "traverse");
    let flit_list = savings("clist", "flit");
    let trav_list = savings("clist", "traverse");

    let mut checksum_ok = true;
    for s in ["chash", "clist", "striped-rb"] {
        let strategies: &[&str] =
            if s == "striped-rb" { &["eager"] } else { &["eager", "flit", "traverse"] };
        let reference = find(&rows, s, "eager", 1).run.checksum;
        for &strat in strategies {
            for &t in &THREADS {
                let got = find(&rows, s, strat, t).run.checksum;
                if got != reference {
                    eprintln!(
                        "concurrent: {s}/{strat}/t{t} checksum {got:#x} != reference {reference:#x}"
                    );
                    checksum_ok = false;
                }
            }
        }
    }

    println!("\n=== Concurrent indexes: flush traffic by strategy (4 threads) ===");
    for s in ["chash", "clist"] {
        let e = find(&rows, s, "eager", 4).run.counters.flushes_per_op();
        let f = find(&rows, s, "flit", 4).run.counters.flushes_per_op();
        let t = find(&rows, s, "traverse", 4).run.counters.flushes_per_op();
        println!(
            "{s}: eager {e:.2} flushes/op, flit {f:.2} (-{:.0}%), traverse {t:.2} (-{:.0}%)",
            100.0 * (1.0 - f / e),
            100.0 * (1.0 - t / e)
        );
    }
    println!(
        "checksums: {}",
        if checksum_ok { "strategy- and thread-invariant" } else { "DIVERGED" }
    );

    let mut rep = BenchReport::new("concurrent", par::jobs(), t0.elapsed());
    rep.set_extra("flit_savings_chash_t4", Json::F64(flit_hash));
    rep.set_extra("traverse_savings_chash_t4", Json::F64(trav_hash));
    rep.set_extra("flit_savings_clist_t4", Json::F64(flit_list));
    rep.set_extra("traverse_savings_clist_t4", Json::F64(trav_list));
    rep.set_extra("checksum_ok", Json::Bool(checksum_ok));
    for r in &rows {
        rep.push_record(Json::obj(vec![
            ("name", Json::Str(format!("{}/{}/t{}", r.structure, r.strategy, r.threads))),
            ("structure", Json::Str(r.structure.to_string())),
            ("strategy", Json::Str(r.strategy.to_string())),
            ("threads", Json::U64(u64::from(r.threads))),
            ("throughput_kops", Json::F64(throughput_kops(&r.run))),
            ("ops", Json::U64(r.run.counters.ops)),
            ("flushes_per_op", Json::F64(r.run.counters.flushes_per_op())),
            ("fences_per_op", Json::F64(per_op(r.run.counters.fences, &r.run.counters))),
            ("elided_per_op", Json::F64(per_op(r.run.counters.elided, &r.run.counters))),
            ("checksum", Json::U64(r.run.checksum)),
        ]));
    }
    rep.write();
    if !checksum_ok {
        std::process::exit(1);
    }
}
