//! Regenerates paper Table V: the number of dynamic checks executed by the
//! SW build and the pointer-format conversions in each direction, per
//! benchmark.

use std::time::Instant;
use utpr_bench::report::BenchReport;
use utpr_bench::{collect_suite, par, scale_spec, table5};
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    let jobs = par::jobs();
    eprintln!("table5: running 6 benchmarks x 4 modes on {jobs} workers ...");
    let t0 = Instant::now();
    let suite = collect_suite(SimConfig::table_iv(), &spec);
    let wall = t0.elapsed();
    println!("\n=== Table V: dynamic checks and conversions (SW build) ===");
    println!("{}", table5(&suite));
    BenchReport::new("table5", jobs, wall).push_suite(&suite).write();
}
