//! Regenerates paper Table V: the number of dynamic checks executed by the
//! SW build and the pointer-format conversions in each direction, per
//! benchmark.

use utpr_bench::{collect_suite, scale_spec, table5};
use utpr_sim::SimConfig;

fn main() {
    let spec = scale_spec();
    eprintln!("table5: running 6 benchmarks x 4 modes ...");
    let suite = collect_suite(SimConfig::table_iv(), &spec);
    println!("\n=== Table V: dynamic checks and conversions (SW build) ===");
    println!("{}", table5(&suite));
}
