//! The tentpole guarantee of the parallel runner: fanning the benchmark
//! grid across workers changes wall-clock only. Every counter, cycle
//! count, checksum and footprint must be bit-identical to the sequential
//! run, and results must come back in the sequential order.

use utpr_bench::{collect_suite_jobs, fig12_runs, fig14_runs};
use utpr_kv::harness::BenchResult;
use utpr_kv::mt::{run_mt_ycsb, MtSpec};
use utpr_kv::WorkloadSpec;
use utpr_sim::SimConfig;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec { records: 200, operations: 800, ..WorkloadSpec::paper() }
}

/// Bit-exact equality, not approximate: cycles compare as raw bits.
fn assert_identical(a: &BenchResult, b: &BenchResult) {
    assert_eq!(a.benchmark.name(), b.benchmark.name());
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "{} {}", a.benchmark.name(), a.mode.label());
    assert_eq!(a.sim, b.sim, "{} {}", a.benchmark.name(), a.mode.label());
    assert_eq!(a.ptr, b.ptr, "{} {}", a.benchmark.name(), a.mode.label());
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.resident_bytes, b.resident_bytes);
}

#[test]
fn suite_is_bit_identical_across_worker_counts() {
    let spec = small_spec();
    let seq = collect_suite_jobs(SimConfig::table_iv(), &spec, 1);
    let par = collect_suite_jobs(SimConfig::table_iv(), &spec, 4);
    assert_eq!(seq.len(), par.len());
    for (s_rows, p_rows) in seq.iter().zip(&par) {
        assert_eq!(s_rows.len(), p_rows.len());
        for (s, p) in s_rows.iter().zip(p_rows) {
            assert_identical(s, p);
        }
    }
}

#[test]
fn fig12_and_fig14_grids_are_order_stable() {
    let spec = small_spec();
    let lat = [1u64, 30];
    for (seq, par) in [
        (fig12_runs(&spec, 1), fig12_runs(&spec, 4)),
        (fig14_runs(&spec, &lat, 1), fig14_runs(&spec, &lat, 4)),
    ] {
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_identical(s, p);
        }
    }
}

#[test]
fn mt_ycsb_checksums_are_bit_identical_across_thread_counts() {
    // The sharded-heap contract behind the multi-threaded YCSB arm: for a
    // fixed seed, the combined checksum is a pure function of the work
    // set, never of how partitions land on OS threads.
    let runs: Vec<_> = [1u32, 2, 4, 8]
        .iter()
        .map(|&t| run_mt_ycsb(&MtSpec::new(320, 1280, t, 0x5EED)).unwrap())
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.checksum, runs[0].checksum, "t{} diverged from t1", r.threads);
        assert_eq!(r.gets + r.sets, runs[0].gets + runs[0].sets, "same work set");
    }
    // Replay: same (seed, thread count) ⇒ same modelled makespan, bit for bit.
    let again = run_mt_ycsb(&MtSpec::new(320, 1280, 4, 0x5EED)).unwrap();
    assert_eq!(again.checksum, runs[2].checksum);
    assert_eq!(again.makespan_cycles.to_bits(), runs[2].makespan_cycles.to_bits());
}

#[test]
fn mt_ycsb_exercises_the_sharded_allocator() {
    // Non-vacuity: parallel loads must refill arena leases from the
    // slabs (not silently route everything through the central lock),
    // slabs must never overflow, and the modelled cores must genuinely
    // divide the work.
    let two = run_mt_ycsb(&MtSpec::new(320, 1280, 2, 9)).unwrap();
    assert!(two.refills > 0, "no arena refills at 2 threads: the arena layer is vacuous");
    assert_eq!(two.slab_overflows, 0, "slabs sized to never fall back to central");
    let one = run_mt_ycsb(&MtSpec::new(320, 1280, 1, 9)).unwrap();
    assert_eq!(one.checksum, two.checksum);
    assert!(
        one.makespan_cycles / two.makespan_cycles > 1.5,
        "2 modelled cores must beat 1 ({} vs {} cycles)",
        one.makespan_cycles,
        two.makespan_cycles
    );
}

#[test]
fn explicit_jobs_env_is_respected_by_helper() {
    // jobs() itself is env-driven; here we only pin the pure helper path:
    // an oversubscribed worker count (more workers than runs) still
    // produces the full, ordered grid.
    let spec = small_spec();
    let seq = collect_suite_jobs(SimConfig::table_iv(), &spec, 1);
    let wide = collect_suite_jobs(SimConfig::table_iv(), &spec, 64);
    for (s_rows, p_rows) in seq.iter().zip(&wide) {
        for (s, p) in s_rows.iter().zip(p_rows) {
            assert_identical(s, p);
        }
    }
}
