//! The tentpole guarantee of the parallel runner: fanning the benchmark
//! grid across workers changes wall-clock only. Every counter, cycle
//! count, checksum and footprint must be bit-identical to the sequential
//! run, and results must come back in the sequential order.

use utpr_bench::{collect_suite_jobs, fig12_runs, fig14_runs};
use utpr_kv::harness::BenchResult;
use utpr_kv::WorkloadSpec;
use utpr_sim::SimConfig;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec { records: 200, operations: 800, ..WorkloadSpec::paper() }
}

/// Bit-exact equality, not approximate: cycles compare as raw bits.
fn assert_identical(a: &BenchResult, b: &BenchResult) {
    assert_eq!(a.benchmark.name(), b.benchmark.name());
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "{} {}", a.benchmark.name(), a.mode.label());
    assert_eq!(a.sim, b.sim, "{} {}", a.benchmark.name(), a.mode.label());
    assert_eq!(a.ptr, b.ptr, "{} {}", a.benchmark.name(), a.mode.label());
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.resident_bytes, b.resident_bytes);
}

#[test]
fn suite_is_bit_identical_across_worker_counts() {
    let spec = small_spec();
    let seq = collect_suite_jobs(SimConfig::table_iv(), &spec, 1);
    let par = collect_suite_jobs(SimConfig::table_iv(), &spec, 4);
    assert_eq!(seq.len(), par.len());
    for (s_rows, p_rows) in seq.iter().zip(&par) {
        assert_eq!(s_rows.len(), p_rows.len());
        for (s, p) in s_rows.iter().zip(p_rows) {
            assert_identical(s, p);
        }
    }
}

#[test]
fn fig12_and_fig14_grids_are_order_stable() {
    let spec = small_spec();
    let lat = [1u64, 30];
    for (seq, par) in [
        (fig12_runs(&spec, 1), fig12_runs(&spec, 4)),
        (fig14_runs(&spec, &lat, 1), fig14_runs(&spec, &lat, 4)),
    ] {
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_identical(s, p);
        }
    }
}

#[test]
fn explicit_jobs_env_is_respected_by_helper() {
    // jobs() itself is env-driven; here we only pin the pure helper path:
    // an oversubscribed worker count (more workers than runs) still
    // produces the full, ordered grid.
    let spec = small_spec();
    let seq = collect_suite_jobs(SimConfig::table_iv(), &spec, 1);
    let wide = collect_suite_jobs(SimConfig::table_iv(), &spec, 64);
    for (s_rows, p_rows) in seq.iter().zip(&wide) {
        for (s, p) in s_rows.iter().zip(p_rows) {
            assert_identical(s, p);
        }
    }
}
