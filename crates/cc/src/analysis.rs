//! Pointer-property dataflow inference — the paper's compiler-based method.
//!
//! A forward fixed-point analysis over each function's CFG propagates two
//! lattices per register: the pointer's storage *format* (virtual /
//! relative) and its target *space* (DRAM / NVM). Seeds come from the
//! definitions the paper cites (§V-B): `malloc` returns a DRAM virtual
//! address, `pmalloc` returns a relative address; parameters and values
//! loaded from memory start unknown — exactly the cases that force dynamic
//! checks to remain in library code.
//!
//! The output is a per-site [`Decision`]: how many dynamic checks the
//! generated code must execute at that instruction. The paper measures that
//! roughly 42 % of checks survive inference on its benchmarks; the kernel
//! suite in [`crate::kernels`] reproduces that magnitude.

use crate::ir::{BlockId, Function, Inst, Module, Operand};
use std::collections::{BTreeMap, VecDeque};

/// A three-point lattice over a small fact domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lat<T> {
    /// Unreached / uninitialized.
    Bottom,
    /// Exactly this fact on every path.
    Known(T),
    /// Conflicting or unknowable.
    Top,
}

impl<T: PartialEq + Copy> Lat<T> {
    /// Least upper bound.
    pub fn join(self, other: Self) -> Self {
        match (self, other) {
            (Lat::Bottom, x) | (x, Lat::Bottom) => x,
            (Lat::Known(a), Lat::Known(b)) if a == b => Lat::Known(a),
            _ => Lat::Top,
        }
    }

    /// True when the fact is statically known.
    pub fn is_known(self) -> bool {
        matches!(self, Lat::Known(_))
    }
}

/// Pointer storage format fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FmtFact {
    /// Virtual-address format.
    Va,
    /// Relative format.
    Rel,
}

/// Pointer target space fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpaceFact {
    /// Volatile memory.
    Dram,
    /// Persistent memory.
    Nvm,
}

/// Per-register abstract state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fact {
    /// Storage format lattice.
    pub format: Lat<FmtFact>,
    /// Target space lattice.
    pub space: Lat<SpaceFact>,
}

impl Fact {
    /// Bottom (unreached).
    pub const BOTTOM: Fact = Fact { format: Lat::Bottom, space: Lat::Bottom };
    /// Completely unknown.
    pub const TOP: Fact = Fact { format: Lat::Top, space: Lat::Top };

    /// Join of both components.
    pub fn join(self, other: Fact) -> Fact {
        Fact { format: self.format.join(other.format), space: self.space.join(other.space) }
    }
}

/// Identifies one instruction: (block, index within block).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteKey {
    /// Containing block.
    pub block: BlockId,
    /// Index within the block.
    pub index: usize,
}

/// What the generated code must do at a pointer-operation site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Dynamic checks the code must execute here (0 = fully resolved).
    pub checks: u8,
    /// Total checks the operation would need with no inference at all.
    pub max_checks: u8,
}

impl Decision {
    /// True when inference removed every check.
    pub fn resolved(&self) -> bool {
        self.checks == 0
    }

    /// Checks inference removed at this site (`max_checks - checks`).
    pub fn elided(&self) -> u8 {
        self.max_checks - self.checks
    }
}

/// Analysis result for one function.
#[derive(Clone, Debug)]
pub struct FnAnalysis {
    /// Entry-state fact per register at each block (fixed point).
    pub block_in: Vec<Vec<Fact>>,
    /// Check decision per pointer-operation site.
    pub decisions: BTreeMap<SiteKey, Decision>,
}

impl FnAnalysis {
    /// Static sites that still need at least one check.
    pub fn checked_sites(&self) -> usize {
        self.decisions.values().filter(|d| !d.resolved()).count()
    }

    /// All pointer-operation sites.
    pub fn total_sites(&self) -> usize {
        self.decisions.len()
    }

    /// `(checks kept, checks a no-inference compiler would insert)` summed
    /// over this function's sites.
    pub fn check_counts(&self) -> (u64, u64) {
        let mut kept = 0u64;
        let mut max = 0u64;
        for d in self.decisions.values() {
            kept += u64::from(d.checks);
            max += u64::from(d.max_checks);
        }
        (kept, max)
    }

    /// Fraction of this function's *static* checks surviving inference.
    pub fn static_check_fraction(&self) -> f64 {
        let (kept, max) = self.check_counts();
        if max == 0 {
            0.0
        } else {
            kept as f64 / max as f64
        }
    }
}

/// Whole-module inference report.
#[derive(Clone, Debug, Default)]
pub struct InferenceReport {
    /// Per-function analyses.
    pub functions: BTreeMap<String, FnAnalysis>,
}

impl InferenceReport {
    /// Fraction of *static* checks that survive inference (checks kept /
    /// checks a no-inference compiler would insert).
    pub fn static_check_fraction(&self) -> f64 {
        let mut kept = 0u64;
        let mut max = 0u64;
        for f in self.functions.values() {
            for d in f.decisions.values() {
                kept += u64::from(d.checks);
                max += u64::from(d.max_checks);
            }
        }
        if max == 0 {
            0.0
        } else {
            kept as f64 / max as f64
        }
    }

    /// Per-function static residual-check fractions, sorted by name.
    pub fn per_function_fractions(&self) -> Vec<(&str, f64)> {
        self.functions
            .iter()
            .map(|(name, f)| (name.as_str(), f.static_check_fraction()))
            .collect()
    }
}

fn operand_fact(state: &[Fact], op: Operand) -> Fact {
    match op {
        Operand::Reg(r) => state[r.0 as usize],
        // Integer immediates used as pointers are virtual by Fig. 4; null is
        // a known-virtual constant.
        Operand::Imm(_) | Operand::Null => {
            Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) }
        }
    }
}

/// Interprocedural analysis options.
///
/// The default is the paper's intraprocedural inference (§V-B): parameters,
/// loaded pointers, and call results all start `Top`. With
/// `interprocedural` set, three extra fact sources are layered on (bottom-up
/// over the call graph, iterated to a module fixpoint):
///
/// - **parameter facts**: the join of argument facts over every in-module
///   call site (roots keep `Top` — they are callable from outside);
/// - **return facts**: the join of `Ret` operand facts per callee;
/// - **heap cells**: a field-insensitive points-to split into one abstract
///   NVM cell and one DRAM cell. `StorePtr` joins the *post-conversion*
///   stored representation into the cell(s) its address may target;
///   `LoadPtr` reads the cell(s) its address space fact selects instead of
///   collapsing to `Top`. Pointer and integer fields are type-separated
///   (the IR distinguishes `Load`/`LoadPtr`), and null stores are skipped
///   — null behaves identically under both formats, so it constrains
///   nothing.
#[derive(Clone, Debug, Default)]
pub struct InferOptions {
    /// Enable the interprocedural layer.
    pub interprocedural: bool,
    /// Functions assumed callable from outside the module with unknown
    /// arguments. `None` selects the call-graph sources; functions never
    /// called in-module are always treated as roots.
    pub roots: Option<Vec<String>>,
}

impl InferOptions {
    /// The paper's intraprocedural inference.
    pub fn intra() -> Self {
        InferOptions::default()
    }

    /// Interprocedural inference with call-graph sources as roots.
    pub fn inter() -> Self {
        InferOptions { interprocedural: true, roots: None }
    }

    /// Interprocedural inference with an explicit root set.
    pub fn inter_with_roots<S: Into<String>, I: IntoIterator<Item = S>>(roots: I) -> Self {
        InferOptions {
            interprocedural: true,
            roots: Some(roots.into_iter().map(Into::into).collect()),
        }
    }
}

/// Module-level interprocedural context: per-function summaries plus the
/// two type-separated abstract heap cells.
#[derive(Clone, Debug, PartialEq)]
struct ModCtx {
    /// Entry fact per parameter, per function.
    params: BTreeMap<String, Vec<Fact>>,
    /// Return-value fact per function (join over `Ret` operands).
    rets: BTreeMap<String, Fact>,
    /// Abstract cell for pointer fields resident in NVM.
    nvm_cell: Fact,
    /// Abstract cell for pointer fields resident in DRAM.
    dram_cell: Fact,
}

impl ModCtx {
    fn new(m: &Module, roots: &[&str]) -> ModCtx {
        let mut called: std::collections::BTreeSet<&str> = Default::default();
        for f in m.functions.values() {
            for block in &f.blocks {
                for inst in &block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        called.insert(callee.as_str());
                    }
                }
            }
        }
        let mut params = BTreeMap::new();
        let mut rets = BTreeMap::new();
        for (name, f) in &m.functions {
            // Roots (and functions nothing in the module calls) face the
            // open world: their parameters stay unknown.
            let open = roots.contains(&name.as_str()) || !called.contains(name.as_str());
            let seed = if open { Fact::TOP } else { Fact::BOTTOM };
            params.insert(name.clone(), vec![seed; f.params as usize]);
            rets.insert(name.clone(), Fact::BOTTOM);
        }
        ModCtx { params, rets, nvm_cell: Fact::BOTTOM, dram_cell: Fact::BOTTOM }
    }

    /// Fact for a pointer loaded through an address with the given space
    /// fact: the matching cell, or the join of both when the target space
    /// is unknown.
    fn loaded_fact(&self, addr_space: Lat<SpaceFact>) -> Fact {
        match addr_space {
            Lat::Known(SpaceFact::Nvm) => self.nvm_cell,
            Lat::Known(SpaceFact::Dram) => self.dram_cell,
            Lat::Bottom | Lat::Top => self.nvm_cell.join(self.dram_cell),
        }
    }

    /// The representation `StorePtr` leaves in an NVM-resident field after
    /// the Fig. 4 assignment conversion: NVM-targeting values are stored
    /// relative, DRAM-targeting values stay virtual, and an
    /// already-relative value stays relative regardless of its space fact
    /// (relative pointers only ever target NVM).
    fn nvm_stored_repr(v: Fact) -> Fact {
        let format = match v.space {
            Lat::Known(SpaceFact::Nvm) => Lat::Known(FmtFact::Rel),
            Lat::Known(SpaceFact::Dram) => Lat::Known(FmtFact::Va),
            Lat::Bottom => Lat::Bottom,
            Lat::Top => {
                if v.format == Lat::Known(FmtFact::Rel) {
                    Lat::Known(FmtFact::Rel)
                } else {
                    Lat::Top
                }
            }
        };
        Fact { format, space: v.space }
    }

    /// Records one `StorePtr`'s contribution to the heap cells.
    fn absorb_store(&mut self, addr: Fact, value: Fact) {
        if value == Fact::BOTTOM {
            // Unreached stores constrain nothing.
            return;
        }
        let to_nvm = addr.space != Lat::Known(SpaceFact::Dram);
        let to_dram = addr.space != Lat::Known(SpaceFact::Nvm);
        if to_nvm {
            self.nvm_cell = self.nvm_cell.join(Self::nvm_stored_repr(value));
        }
        if to_dram {
            // DRAM-resident fields always hold virtual addresses (ra2va on
            // assignment); the target space is the value's.
            self.dram_cell = self
                .dram_cell
                .join(Fact { format: Lat::Known(FmtFact::Va), space: value.space });
        }
    }
}

/// Transfer function of one instruction over the register state. With a
/// module context, `Call` and `LoadPtr` results use the interprocedural
/// summaries instead of collapsing to `Top`.
fn transfer(state: &mut Vec<Fact>, inst: &Inst, ctx: Option<&ModCtx>) {
    let get = |state: &Vec<Fact>, op: Operand| operand_fact(state, op);
    match inst {
        Inst::ConstInt { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::Malloc { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::Pmalloc { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Rel), space: Lat::Known(SpaceFact::Nvm) };
        }
        Inst::Load { dst, .. } => {
            // Loaded integers: known non-pointer; treat as virtual/dram so
            // integer paths never demand checks.
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::LoadPtr { dst, addr, .. } => {
            // Intraprocedurally a pointer loaded from memory has unknown
            // format and space — the central source of residual checks.
            // Interprocedurally it reads the abstract heap cell its address
            // targets, so reloaded pointers keep their alloc-site facts.
            state[dst.0 as usize] = match ctx {
                Some(c) => c.loaded_fact(get(state, *addr).space),
                None => Fact::TOP,
            };
        }
        Inst::Gep { dst, base, .. } => {
            // Pointer arithmetic preserves both facts (Fig. 4 additive row).
            state[dst.0 as usize] = get(state, *base);
        }
        Inst::IntOp { dst, .. } | Inst::CmpInt { dst, .. } | Inst::CmpPtr { dst, .. }
        | Inst::PtrDiff { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::PtrToInt { dst, .. } => {
            // (I)p yields the virtual address per Fig. 4.
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Top };
        }
        Inst::IntToPtr { dst, src } => {
            // Bits adopted verbatim: format follows the source if it was a
            // tracked pointer-derived integer; conservatively virtual with
            // unknown space (ints normally carry virtual addresses).
            let f = get(state, *src);
            state[dst.0 as usize] = Fact {
                format: if f.format.is_known() { f.format } else { Lat::Known(FmtFact::Va) },
                space: Lat::Top,
            };
        }
        Inst::Copy { dst, src } => {
            state[dst.0 as usize] = get(state, *src);
        }
        Inst::Call { dst, callee, .. } => {
            // Intraprocedural: unknown return. Interprocedural: the
            // callee's return summary.
            if let Some(d) = dst {
                state[d.0 as usize] = match ctx {
                    Some(c) => c.rets.get(callee).copied().unwrap_or(Fact::TOP),
                    None => Fact::TOP,
                };
            }
        }
        Inst::Free { .. } | Inst::Store { .. } | Inst::StorePtr { .. } => {}
    }
}

/// The checks an instruction needs given the incoming state.
fn decide(state: &[Fact], inst: &Inst) -> Option<Decision> {
    let f = |op: &Operand| operand_fact(state, *op);
    match inst {
        // Dereferences: one determineY on the address operand.
        Inst::Load { addr, .. } | Inst::LoadPtr { addr, .. } | Inst::Store { addr, .. } => {
            let needs = !f(addr).format.is_known();
            Some(Decision { checks: needs.into(), max_checks: 1 })
        }
        // Pointer store: determineY on the address, then determineX on the
        // resolved destination and determineY on the value (Fig. 3).
        Inst::StorePtr { addr, value, .. } => {
            let a = f(addr);
            let v = f(value);
            let mut checks = 0u8;
            if !a.format.is_known() {
                checks += 1;
            }
            if !a.space.is_known() {
                checks += 1;
            }
            if !v.format.is_known() {
                checks += 1;
            }
            Some(Decision { checks, max_checks: 3 })
        }
        // Casts and comparisons: determineY per pointer operand.
        Inst::PtrToInt { src, .. } => {
            Some(Decision { checks: (!f(src).format.is_known()).into(), max_checks: 1 })
        }
        Inst::CmpPtr { lhs, rhs, .. } | Inst::PtrDiff { lhs, rhs, .. } => {
            let c = u8::from(!f(lhs).format.is_known()) + u8::from(!f(rhs).format.is_known());
            Some(Decision { checks: c, max_checks: 2 })
        }
        Inst::Free { ptr } => {
            Some(Decision { checks: (!f(ptr).format.is_known()).into(), max_checks: 1 })
        }
        _ => None,
    }
}

/// Runs the intraprocedural inference on one function.
pub fn analyze_function(f: &Function) -> FnAnalysis {
    analyze_function_ctx(f, None)
}

fn analyze_function_ctx(f: &Function, ctx: Option<&ModCtx>) -> FnAnalysis {
    let nregs = f.regs as usize;
    let nblocks = f.blocks.len();
    let mut block_in: Vec<Vec<Fact>> = vec![vec![Fact::BOTTOM; nregs]; nblocks];
    // Parameters: unknown at entry (the library-migration problem), unless
    // the interprocedural context has a summary of every call site.
    for r in 0..f.params as usize {
        block_in[0][r] = match ctx {
            Some(c) => c.params[&f.name][r],
            None => Fact::TOP,
        };
    }
    let mut work: VecDeque<usize> = VecDeque::from(vec![0]);
    let mut queued = vec![false; nblocks];
    let mut visited = vec![false; nblocks];
    queued[0] = true;

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        visited[b] = true;
        let mut state = block_in[b].clone();
        for inst in &f.blocks[b].insts {
            transfer(&mut state, inst, ctx);
        }
        for succ in f.blocks[b].term.successors() {
            let s = succ.0 as usize;
            let mut changed = false;
            for r in 0..nregs {
                let joined = block_in[s][r].join(state[r]);
                if joined != block_in[s][r] {
                    block_in[s][r] = joined;
                    changed = true;
                }
            }
            // Every block is processed at least once even if the join is a
            // no-op (all-Bottom propagation).
            if (changed || !visited[s]) && !queued[s] {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }

    // Second pass: decisions at the fixed point.
    let mut decisions = BTreeMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut state = block_in[bi].clone();
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Some(d) = decide(&state, inst) {
                decisions.insert(SiteKey { block: BlockId(bi as u32), index: ii }, d);
            }
            transfer(&mut state, inst, ctx);
        }
    }
    FnAnalysis { block_in, decisions }
}

/// Replays one function at its fixed point and joins its outward effects —
/// call arguments, return facts, heap-cell stores — into `ctx`. Returns
/// whether anything grew.
fn absorb_effects(f: &Function, fa: &FnAnalysis, ctx: &mut ModCtx) -> bool {
    let read = ctx.clone();
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut state = fa.block_in[bi].clone();
        for inst in &block.insts {
            match inst {
                Inst::Call { callee, args, .. } => {
                    if let Some(ps) = ctx.params.get_mut(callee.as_str()) {
                        for (i, a) in args.iter().enumerate() {
                            if let Some(p) = ps.get_mut(i) {
                                *p = p.join(operand_fact(&state, *a));
                            }
                        }
                    }
                }
                Inst::StorePtr { addr, value, .. } => {
                    // Null stores constrain nothing: null reads back as
                    // null, behaving identically under both formats.
                    if *value != Operand::Null {
                        ctx.absorb_store(operand_fact(&state, *addr), operand_fact(&state, *value));
                    }
                }
                _ => {}
            }
            transfer(&mut state, inst, Some(&read));
        }
        if let crate::ir::Term::Ret(Some(op)) = &block.term {
            let r = ctx.rets.get_mut(&f.name).expect("ret summary exists");
            *r = r.join(operand_fact(&state, *op));
        }
    }
    *ctx != read
}

/// Runs the intraprocedural inference on every function of a module.
pub fn analyze_module(m: &Module) -> InferenceReport {
    analyze_module_with(m, &InferOptions::intra())
}

/// Runs the inference on every function of a module with explicit options.
///
/// Interprocedural facts only ever *refine* the intraprocedural result
/// (each summary replaces a `Top` seed with something at or below `Top`,
/// and transfer/join are monotone), so per-site `checks` can only shrink
/// while `max_checks` is identical — the conservation property the
/// interpreter's counters rely on.
pub fn analyze_module_with(m: &Module, opts: &InferOptions) -> InferenceReport {
    let mut report = InferenceReport::default();
    if !opts.interprocedural {
        for (name, f) in &m.functions {
            report.functions.insert(name.clone(), analyze_function(f));
        }
        return report;
    }

    let roots: Vec<&str> = match &opts.roots {
        Some(r) => r.iter().map(String::as_str).collect(),
        None => crate::passes::call_graph_roots(m),
    };
    let order = crate::passes::bottom_up_order(m);
    let mut ctx = ModCtx::new(m, &roots);
    // Module fixpoint: every lattice chain has height ≤ 2 per component,
    // so this converges in a handful of rounds; the bound is a backstop.
    for _round in 0..64 {
        let mut changed = false;
        for name in &order {
            let f = &m.functions[*name];
            let fa = analyze_function_ctx(f, Some(&ctx));
            changed |= absorb_effects(f, &fa, &mut ctx);
        }
        if !changed {
            break;
        }
    }
    for (name, f) in &m.functions {
        report.functions.insert(name.clone(), analyze_function_ctx(f, Some(&ctx)));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, FnBuilder, Operand::*};

    #[test]
    fn lattice_join_rules() {
        use Lat::*;
        assert_eq!(Bottom.join(Known(FmtFact::Va)), Known(FmtFact::Va));
        assert_eq!(Known(FmtFact::Va).join(Known(FmtFact::Va)), Known(FmtFact::Va));
        assert_eq!(Known(FmtFact::Va).join(Known(FmtFact::Rel)), Top);
        assert_eq!(Top::<FmtFact>.join(Bottom), Top);
    }

    #[test]
    fn malloc_result_needs_no_checks() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.malloc(p, Imm(64));
        b.store(Reg(p), 0, Imm(1));
        let v = b.fresh();
        b.load(v, Reg(p), 0);
        b.ret(Some(Reg(v)));
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 0);
        assert_eq!(a.total_sites(), 2);
    }

    #[test]
    fn pmalloc_result_needs_no_checks_either() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(64));
        b.store(Reg(p), 0, Imm(1));
        b.ret(None);
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 0, "known-relative deref is direct ra2va, no check");
    }

    #[test]
    fn param_deref_needs_check() {
        let mut b = FnBuilder::new("f", 1);
        let v = b.fresh();
        b.load(v, Reg(b.param(0)), 0);
        b.ret(Some(Reg(v)));
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 1);
    }

    #[test]
    fn loaded_pointer_needs_check() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(64));
        let q = b.fresh();
        b.load_ptr(q, Reg(p), 0); // deref of p: resolved
        let v = b.fresh();
        b.load(v, Reg(q), 0); // deref of q: loaded pointer, unknown
        b.ret(Some(Reg(v)));
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 1);
        assert_eq!(a.total_sites(), 2);
    }

    #[test]
    fn gep_preserves_facts() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(64));
        let q = b.fresh();
        b.gep(q, Reg(p), Imm(8));
        b.store(Reg(q), 0, Imm(1));
        b.ret(None);
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 0);
    }

    #[test]
    fn join_of_conflicting_formats_forces_check() {
        // if (c) p = malloc() else p = pmalloc(); *p — format differs on the
        // two paths, so the merged deref keeps its check.
        let mut b = FnBuilder::new("f", 1);
        let p = b.fresh();
        let t = b.new_block();
        let e = b.new_block();
        let m = b.new_block();
        b.cond_br(Reg(b.param(0)), t, e);
        b.switch_to(t);
        b.malloc(p, Imm(32));
        b.br(m);
        b.switch_to(e);
        b.pmalloc(p, Imm(32));
        b.br(m);
        b.switch_to(m);
        b.store(Reg(p), 0, Imm(7));
        b.ret(None);
        let a = analyze_function(&b.finish());
        let merged_deref_checked = a
            .decisions
            .iter()
            .any(|(k, d)| k.block == BlockId(3) && !d.resolved());
        assert!(merged_deref_checked);
    }

    #[test]
    fn store_ptr_decision_counts_three_potential_checks() {
        let mut b = FnBuilder::new("f", 2);
        b.store_ptr(Reg(b.param(0)), 0, Reg(b.param(1)));
        b.ret(None);
        let a = analyze_function(&b.finish());
        let d = a.decisions.values().next().unwrap();
        assert_eq!(d.max_checks, 3);
        assert_eq!(d.checks, 3, "param address and value: all three unknown");
    }

    #[test]
    fn cmp_ptr_checks_each_unknown_side() {
        let mut b = FnBuilder::new("f", 1);
        let q = b.fresh();
        b.pmalloc(q, Imm(16));
        let c = b.fresh();
        b.cmp_ptr(c, CmpOp::Ne, Reg(b.param(0)), Reg(q));
        b.ret(Some(Reg(c)));
        let a = analyze_function(&b.finish());
        let d = a.decisions.values().next().unwrap();
        assert_eq!(d.checks, 1, "only the parameter side is unknown");
        assert_eq!(d.max_checks, 2);
    }

    #[test]
    fn interprocedural_param_facts_resolve_callee_derefs() {
        // driver() pmallocs and calls leaf(p); leaf derefs its parameter.
        // Intra: the deref is checked. Inter: the only call site passes a
        // known-relative pointer, so the check is elided.
        let mut m = crate::ir::Module::new();
        let mut leaf = FnBuilder::new("leaf", 1);
        let v = leaf.fresh();
        leaf.load(v, Reg(leaf.param(0)), 0);
        leaf.ret(Some(Reg(v)));
        m.add(leaf.finish());
        let mut drv = FnBuilder::new("driver", 0);
        let p = drv.fresh();
        drv.pmalloc(p, Imm(16));
        drv.store(Reg(p), 0, Imm(9));
        let r = drv.fresh();
        drv.call(Some(r), "leaf", vec![Reg(p)]);
        drv.ret(Some(Reg(r)));
        m.add(drv.finish());
        m.verify().unwrap();

        let intra = analyze_module(&m);
        let inter = analyze_module_with(&m, &InferOptions::inter());
        assert_eq!(intra.functions["leaf"].checked_sites(), 1);
        assert_eq!(inter.functions["leaf"].checked_sites(), 0, "call-site fact propagated");
        // Return summary: driver's call result is leaf's loaded int.
        assert_eq!(inter.functions["driver"].checked_sites(), 0);
    }

    #[test]
    fn interprocedural_heap_cell_resolves_reloaded_pointers() {
        // p = pmalloc; *p = pmalloc (rel into NVM); q = loadp p; *q.
        // Intra: the loaded pointer is Top. Inter: the NVM cell only ever
        // holds relative NVM pointers, so the reload keeps its facts.
        let mut b = FnBuilder::new("chase", 0);
        let p = b.fresh();
        let n = b.fresh();
        b.pmalloc(p, Imm(16));
        b.pmalloc(n, Imm(16));
        b.store_ptr(Reg(p), 0, Reg(n));
        let q = b.fresh();
        b.load_ptr(q, Reg(p), 0);
        let v = b.fresh();
        b.load(v, Reg(q), 0);
        b.ret(Some(Reg(v)));
        let mut m = crate::ir::Module::new();
        m.add(b.finish());
        let intra = analyze_module(&m);
        let inter = analyze_module_with(&m, &InferOptions::inter());
        assert_eq!(intra.functions["chase"].checked_sites(), 1, "reload deref checked");
        assert_eq!(inter.functions["chase"].checked_sites(), 0, "cell fact resolves reload");
    }

    #[test]
    fn interprocedural_mixed_stores_keep_cell_unknown() {
        // Both a DRAM va and an NVM rel flow into NVM-resident fields: the
        // cell joins to Top format and reloads stay checked.
        let mut b = FnBuilder::new("mix", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(32));
        let d = b.fresh();
        b.malloc(d, Imm(32));
        let n = b.fresh();
        b.pmalloc(n, Imm(32));
        b.store_ptr(Reg(p), 0, Reg(d));
        b.store_ptr(Reg(p), 8, Reg(n));
        let q = b.fresh();
        b.load_ptr(q, Reg(p), 0);
        let v = b.fresh();
        b.load(v, Reg(q), 0);
        b.ret(Some(Reg(v)));
        let mut m = crate::ir::Module::new();
        m.add(b.finish());
        let inter = analyze_module_with(&m, &InferOptions::inter());
        // The final deref of the reloaded pointer stays checked: the NVM
        // cell saw both a va (DRAM-target store stays va) and a rel.
        assert_eq!(inter.functions["mix"].checked_sites(), 1);
    }

    #[test]
    fn interprocedural_never_increases_checks() {
        let m = crate::kernels::module();
        let intra = analyze_module(&m);
        let inter = analyze_module_with(&m, &InferOptions::inter());
        for (name, fa) in &intra.functions {
            let fb = &inter.functions[name];
            assert_eq!(fa.decisions.len(), fb.decisions.len(), "{name}: site sets differ");
            for (k, da) in &fa.decisions {
                let db = &fb.decisions[k];
                assert_eq!(da.max_checks, db.max_checks, "{name}:{k:?}");
                assert!(db.checks <= da.checks, "{name}:{k:?}: inter added a check");
            }
        }
        assert!(
            inter.static_check_fraction() < intra.static_check_fraction(),
            "inter {} !< intra {}",
            inter.static_check_fraction(),
            intra.static_check_fraction()
        );
    }

    #[test]
    fn explicit_roots_keep_params_unknown() {
        // Same module as the param-facts test, but leaf is forced open.
        let mut m = crate::ir::Module::new();
        let mut leaf = FnBuilder::new("leaf", 1);
        let v = leaf.fresh();
        leaf.load(v, Reg(leaf.param(0)), 0);
        leaf.ret(Some(Reg(v)));
        m.add(leaf.finish());
        let mut drv = FnBuilder::new("driver", 0);
        let p = drv.fresh();
        drv.pmalloc(p, Imm(16));
        let r = drv.fresh();
        drv.call(Some(r), "leaf", vec![Reg(p)]);
        drv.ret(Some(Reg(r)));
        m.add(drv.finish());
        let inter =
            analyze_module_with(&m, &InferOptions::inter_with_roots(["driver", "leaf"]));
        assert_eq!(inter.functions["leaf"].checked_sites(), 1, "open-world leaf keeps checks");
    }

    #[test]
    fn report_fraction_over_module() {
        let mut m = crate::ir::Module::new();
        // One fully resolved function, one fully unresolved.
        let mut b1 = FnBuilder::new("res", 0);
        let p = b1.fresh();
        b1.malloc(p, Imm(8));
        b1.store(Reg(p), 0, Imm(1));
        b1.ret(None);
        m.add(b1.finish());
        let mut b2 = FnBuilder::new("unres", 1);
        let v = b2.fresh();
        b2.load(v, Reg(b2.param(0)), 0);
        b2.ret(Some(Reg(v)));
        m.add(b2.finish());
        let r = analyze_module(&m);
        let f = r.static_check_fraction();
        assert!((f - 0.5).abs() < 1e-12, "one of two checks kept: {f}");
    }
}
