//! Pointer-property dataflow inference — the paper's compiler-based method.
//!
//! A forward fixed-point analysis over each function's CFG propagates two
//! lattices per register: the pointer's storage *format* (virtual /
//! relative) and its target *space* (DRAM / NVM). Seeds come from the
//! definitions the paper cites (§V-B): `malloc` returns a DRAM virtual
//! address, `pmalloc` returns a relative address; parameters and values
//! loaded from memory start unknown — exactly the cases that force dynamic
//! checks to remain in library code.
//!
//! The output is a per-site [`Decision`]: how many dynamic checks the
//! generated code must execute at that instruction. The paper measures that
//! roughly 42 % of checks survive inference on its benchmarks; the kernel
//! suite in [`crate::kernels`] reproduces that magnitude.

use crate::ir::{BlockId, Function, Inst, Module, Operand};
use std::collections::{BTreeMap, VecDeque};

/// A three-point lattice over a small fact domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lat<T> {
    /// Unreached / uninitialized.
    Bottom,
    /// Exactly this fact on every path.
    Known(T),
    /// Conflicting or unknowable.
    Top,
}

impl<T: PartialEq + Copy> Lat<T> {
    /// Least upper bound.
    pub fn join(self, other: Self) -> Self {
        match (self, other) {
            (Lat::Bottom, x) | (x, Lat::Bottom) => x,
            (Lat::Known(a), Lat::Known(b)) if a == b => Lat::Known(a),
            _ => Lat::Top,
        }
    }

    /// True when the fact is statically known.
    pub fn is_known(self) -> bool {
        matches!(self, Lat::Known(_))
    }
}

/// Pointer storage format fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FmtFact {
    /// Virtual-address format.
    Va,
    /// Relative format.
    Rel,
}

/// Pointer target space fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpaceFact {
    /// Volatile memory.
    Dram,
    /// Persistent memory.
    Nvm,
}

/// Per-register abstract state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fact {
    /// Storage format lattice.
    pub format: Lat<FmtFact>,
    /// Target space lattice.
    pub space: Lat<SpaceFact>,
}

impl Fact {
    /// Bottom (unreached).
    pub const BOTTOM: Fact = Fact { format: Lat::Bottom, space: Lat::Bottom };
    /// Completely unknown.
    pub const TOP: Fact = Fact { format: Lat::Top, space: Lat::Top };

    /// Join of both components.
    pub fn join(self, other: Fact) -> Fact {
        Fact { format: self.format.join(other.format), space: self.space.join(other.space) }
    }
}

/// Identifies one instruction: (block, index within block).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteKey {
    /// Containing block.
    pub block: BlockId,
    /// Index within the block.
    pub index: usize,
}

/// What the generated code must do at a pointer-operation site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Dynamic checks the code must execute here (0 = fully resolved).
    pub checks: u8,
    /// Total checks the operation would need with no inference at all.
    pub max_checks: u8,
}

impl Decision {
    /// True when inference removed every check.
    pub fn resolved(&self) -> bool {
        self.checks == 0
    }
}

/// Analysis result for one function.
#[derive(Clone, Debug)]
pub struct FnAnalysis {
    /// Entry-state fact per register at each block (fixed point).
    pub block_in: Vec<Vec<Fact>>,
    /// Check decision per pointer-operation site.
    pub decisions: BTreeMap<SiteKey, Decision>,
}

impl FnAnalysis {
    /// Static sites that still need at least one check.
    pub fn checked_sites(&self) -> usize {
        self.decisions.values().filter(|d| !d.resolved()).count()
    }

    /// All pointer-operation sites.
    pub fn total_sites(&self) -> usize {
        self.decisions.len()
    }
}

/// Whole-module inference report.
#[derive(Clone, Debug, Default)]
pub struct InferenceReport {
    /// Per-function analyses.
    pub functions: BTreeMap<String, FnAnalysis>,
}

impl InferenceReport {
    /// Fraction of *static* checks that survive inference (checks kept /
    /// checks a no-inference compiler would insert).
    pub fn static_check_fraction(&self) -> f64 {
        let mut kept = 0u64;
        let mut max = 0u64;
        for f in self.functions.values() {
            for d in f.decisions.values() {
                kept += u64::from(d.checks);
                max += u64::from(d.max_checks);
            }
        }
        if max == 0 {
            0.0
        } else {
            kept as f64 / max as f64
        }
    }
}

fn operand_fact(state: &[Fact], op: Operand) -> Fact {
    match op {
        Operand::Reg(r) => state[r.0 as usize],
        // Integer immediates used as pointers are virtual by Fig. 4; null is
        // a known-virtual constant.
        Operand::Imm(_) | Operand::Null => {
            Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) }
        }
    }
}

/// Transfer function of one instruction over the register state.
fn transfer(state: &mut Vec<Fact>, inst: &Inst) {
    let get = |state: &Vec<Fact>, op: Operand| operand_fact(state, op);
    match inst {
        Inst::ConstInt { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::Malloc { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::Pmalloc { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Rel), space: Lat::Known(SpaceFact::Nvm) };
        }
        Inst::Load { dst, .. } => {
            // Loaded integers: known non-pointer; treat as virtual/dram so
            // integer paths never demand checks.
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::LoadPtr { dst, .. } => {
            // A pointer loaded from memory has unknown format and space —
            // the central source of residual checks.
            state[dst.0 as usize] = Fact::TOP;
        }
        Inst::Gep { dst, base, .. } => {
            // Pointer arithmetic preserves both facts (Fig. 4 additive row).
            state[dst.0 as usize] = get(state, *base);
        }
        Inst::IntOp { dst, .. } | Inst::CmpInt { dst, .. } | Inst::CmpPtr { dst, .. }
        | Inst::PtrDiff { dst, .. } => {
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Known(SpaceFact::Dram) };
        }
        Inst::PtrToInt { dst, .. } => {
            // (I)p yields the virtual address per Fig. 4.
            state[dst.0 as usize] =
                Fact { format: Lat::Known(FmtFact::Va), space: Lat::Top };
        }
        Inst::IntToPtr { dst, src } => {
            // Bits adopted verbatim: format follows the source if it was a
            // tracked pointer-derived integer; conservatively virtual with
            // unknown space (ints normally carry virtual addresses).
            let f = get(state, *src);
            state[dst.0 as usize] = Fact {
                format: if f.format.is_known() { f.format } else { Lat::Known(FmtFact::Va) },
                space: Lat::Top,
            };
        }
        Inst::Copy { dst, src } => {
            state[dst.0 as usize] = get(state, *src);
        }
        Inst::Call { dst, .. } => {
            // Intra-procedural: unknown return.
            if let Some(d) = dst {
                state[d.0 as usize] = Fact::TOP;
            }
        }
        Inst::Free { .. } | Inst::Store { .. } | Inst::StorePtr { .. } => {}
    }
}

/// The checks an instruction needs given the incoming state.
fn decide(state: &[Fact], inst: &Inst) -> Option<Decision> {
    let f = |op: &Operand| operand_fact(state, *op);
    match inst {
        // Dereferences: one determineY on the address operand.
        Inst::Load { addr, .. } | Inst::LoadPtr { addr, .. } | Inst::Store { addr, .. } => {
            let needs = !f(addr).format.is_known();
            Some(Decision { checks: needs.into(), max_checks: 1 })
        }
        // Pointer store: determineY on the address, then determineX on the
        // resolved destination and determineY on the value (Fig. 3).
        Inst::StorePtr { addr, value, .. } => {
            let a = f(addr);
            let v = f(value);
            let mut checks = 0u8;
            if !a.format.is_known() {
                checks += 1;
            }
            if !a.space.is_known() {
                checks += 1;
            }
            if !v.format.is_known() {
                checks += 1;
            }
            Some(Decision { checks, max_checks: 3 })
        }
        // Casts and comparisons: determineY per pointer operand.
        Inst::PtrToInt { src, .. } => {
            Some(Decision { checks: (!f(src).format.is_known()).into(), max_checks: 1 })
        }
        Inst::CmpPtr { lhs, rhs, .. } | Inst::PtrDiff { lhs, rhs, .. } => {
            let c = u8::from(!f(lhs).format.is_known()) + u8::from(!f(rhs).format.is_known());
            Some(Decision { checks: c, max_checks: 2 })
        }
        Inst::Free { ptr } => {
            Some(Decision { checks: (!f(ptr).format.is_known()).into(), max_checks: 1 })
        }
        _ => None,
    }
}

/// Runs the inference on one function.
pub fn analyze_function(f: &Function) -> FnAnalysis {
    let nregs = f.regs as usize;
    let nblocks = f.blocks.len();
    let mut block_in: Vec<Vec<Fact>> = vec![vec![Fact::BOTTOM; nregs]; nblocks];
    // Parameters are unknown at entry — the library-migration problem.
    for r in 0..f.params as usize {
        block_in[0][r] = Fact::TOP;
    }
    let mut work: VecDeque<usize> = VecDeque::from(vec![0]);
    let mut queued = vec![false; nblocks];
    let mut visited = vec![false; nblocks];
    queued[0] = true;

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        visited[b] = true;
        let mut state = block_in[b].clone();
        for inst in &f.blocks[b].insts {
            transfer(&mut state, inst);
        }
        for succ in f.blocks[b].term.successors() {
            let s = succ.0 as usize;
            let mut changed = false;
            for r in 0..nregs {
                let joined = block_in[s][r].join(state[r]);
                if joined != block_in[s][r] {
                    block_in[s][r] = joined;
                    changed = true;
                }
            }
            // Every block is processed at least once even if the join is a
            // no-op (all-Bottom propagation).
            if (changed || !visited[s]) && !queued[s] {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }

    // Second pass: decisions at the fixed point.
    let mut decisions = BTreeMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut state = block_in[bi].clone();
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Some(d) = decide(&state, inst) {
                decisions.insert(SiteKey { block: BlockId(bi as u32), index: ii }, d);
            }
            transfer(&mut state, inst);
        }
    }
    FnAnalysis { block_in, decisions }
}

/// Runs the inference on every function of a module.
pub fn analyze_module(m: &Module) -> InferenceReport {
    let mut report = InferenceReport::default();
    for (name, f) in &m.functions {
        report.functions.insert(name.clone(), analyze_function(f));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, FnBuilder, Operand::*};

    #[test]
    fn lattice_join_rules() {
        use Lat::*;
        assert_eq!(Bottom.join(Known(FmtFact::Va)), Known(FmtFact::Va));
        assert_eq!(Known(FmtFact::Va).join(Known(FmtFact::Va)), Known(FmtFact::Va));
        assert_eq!(Known(FmtFact::Va).join(Known(FmtFact::Rel)), Top);
        assert_eq!(Top::<FmtFact>.join(Bottom), Top);
    }

    #[test]
    fn malloc_result_needs_no_checks() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.malloc(p, Imm(64));
        b.store(Reg(p), 0, Imm(1));
        let v = b.fresh();
        b.load(v, Reg(p), 0);
        b.ret(Some(Reg(v)));
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 0);
        assert_eq!(a.total_sites(), 2);
    }

    #[test]
    fn pmalloc_result_needs_no_checks_either() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(64));
        b.store(Reg(p), 0, Imm(1));
        b.ret(None);
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 0, "known-relative deref is direct ra2va, no check");
    }

    #[test]
    fn param_deref_needs_check() {
        let mut b = FnBuilder::new("f", 1);
        let v = b.fresh();
        b.load(v, Reg(b.param(0)), 0);
        b.ret(Some(Reg(v)));
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 1);
    }

    #[test]
    fn loaded_pointer_needs_check() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(64));
        let q = b.fresh();
        b.load_ptr(q, Reg(p), 0); // deref of p: resolved
        let v = b.fresh();
        b.load(v, Reg(q), 0); // deref of q: loaded pointer, unknown
        b.ret(Some(Reg(v)));
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 1);
        assert_eq!(a.total_sites(), 2);
    }

    #[test]
    fn gep_preserves_facts() {
        let mut b = FnBuilder::new("f", 0);
        let p = b.fresh();
        b.pmalloc(p, Imm(64));
        let q = b.fresh();
        b.gep(q, Reg(p), Imm(8));
        b.store(Reg(q), 0, Imm(1));
        b.ret(None);
        let a = analyze_function(&b.finish());
        assert_eq!(a.checked_sites(), 0);
    }

    #[test]
    fn join_of_conflicting_formats_forces_check() {
        // if (c) p = malloc() else p = pmalloc(); *p — format differs on the
        // two paths, so the merged deref keeps its check.
        let mut b = FnBuilder::new("f", 1);
        let p = b.fresh();
        let t = b.new_block();
        let e = b.new_block();
        let m = b.new_block();
        b.cond_br(Reg(b.param(0)), t, e);
        b.switch_to(t);
        b.malloc(p, Imm(32));
        b.br(m);
        b.switch_to(e);
        b.pmalloc(p, Imm(32));
        b.br(m);
        b.switch_to(m);
        b.store(Reg(p), 0, Imm(7));
        b.ret(None);
        let a = analyze_function(&b.finish());
        let merged_deref_checked = a
            .decisions
            .iter()
            .any(|(k, d)| k.block == BlockId(3) && !d.resolved());
        assert!(merged_deref_checked);
    }

    #[test]
    fn store_ptr_decision_counts_three_potential_checks() {
        let mut b = FnBuilder::new("f", 2);
        b.store_ptr(Reg(b.param(0)), 0, Reg(b.param(1)));
        b.ret(None);
        let a = analyze_function(&b.finish());
        let d = a.decisions.values().next().unwrap();
        assert_eq!(d.max_checks, 3);
        assert_eq!(d.checks, 3, "param address and value: all three unknown");
    }

    #[test]
    fn cmp_ptr_checks_each_unknown_side() {
        let mut b = FnBuilder::new("f", 1);
        let q = b.fresh();
        b.pmalloc(q, Imm(16));
        let c = b.fresh();
        b.cmp_ptr(c, CmpOp::Ne, Reg(b.param(0)), Reg(q));
        b.ret(Some(Reg(c)));
        let a = analyze_function(&b.finish());
        let d = a.decisions.values().next().unwrap();
        assert_eq!(d.checks, 1, "only the parameter side is unknown");
        assert_eq!(d.max_checks, 2);
    }

    #[test]
    fn report_fraction_over_module() {
        let mut m = crate::ir::Module::new();
        // One fully resolved function, one fully unresolved.
        let mut b1 = FnBuilder::new("res", 0);
        let p = b1.fresh();
        b1.malloc(p, Imm(8));
        b1.store(Reg(p), 0, Imm(1));
        b1.ret(None);
        m.add(b1.finish());
        let mut b2 = FnBuilder::new("unres", 1);
        let v = b2.fresh();
        b2.load(v, Reg(b2.param(0)), 0);
        b2.ret(Some(Reg(v)));
        m.add(b2.finish());
        let r = analyze_module(&m);
        let f = r.static_check_fraction();
        assert!((f - 0.5).abs() < 1e-12, "one of two checks kept: {f}");
    }
}
