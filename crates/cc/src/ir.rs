//! A small register-based intermediate representation.
//!
//! The paper implements its compiler support as an LLVM pass over C
//! programs. Here we model the part that matters — pointer operations and
//! their dataflow — with a compact IR: functions of basic blocks over a
//! register file, with explicit pointer instructions (`LoadPtr`,
//! `StorePtr`, `Gep`, `CmpPtr`, …) mirroring the operation classes of the
//! paper's Fig. 4 soundness table.

use std::collections::BTreeMap;
use std::fmt;

/// A virtual register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u32);

/// A basic-block id within a function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

/// An instruction operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A register value.
    Reg(Reg),
    /// An integer immediate.
    Imm(i64),
    /// The null pointer constant.
    Null,
}

/// Integer arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering-comparable pair.
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// One IR instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `dst = imm`.
    ConstInt {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = malloc(size)` — volatile allocation, returns a virtual
    /// address (DRAM).
    Malloc {
        /// Destination register.
        dst: Reg,
        /// Size in bytes.
        size: Operand,
    },
    /// `dst = pmalloc(size)` — persistent allocation, returns a relative
    /// address by definition.
    Pmalloc {
        /// Destination register.
        dst: Reg,
        /// Size in bytes.
        size: Operand,
    },
    /// `free(ptr)` in whichever space the pointer lives.
    Free {
        /// Pointer to release.
        ptr: Operand,
    },
    /// `dst = *(i64*)(addr + off)`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address.
        addr: Operand,
        /// Byte offset.
        off: i64,
    },
    /// `*(i64*)(addr + off) = value` (storeD).
    Store {
        /// Base address.
        addr: Operand,
        /// Byte offset.
        off: i64,
        /// Value stored.
        value: Operand,
    },
    /// `dst = *(void**)(addr + off)` — pointer load.
    LoadPtr {
        /// Destination register.
        dst: Reg,
        /// Base address.
        addr: Operand,
        /// Byte offset.
        off: i64,
    },
    /// `*(void**)(addr + off) = value` — pointer store (storeP).
    StorePtr {
        /// Base address.
        addr: Operand,
        /// Byte offset.
        off: i64,
        /// Pointer value stored.
        value: Operand,
    },
    /// `dst = base + off` in bytes (pointer arithmetic / field address).
    Gep {
        /// Destination register.
        dst: Reg,
        /// Base pointer.
        base: Operand,
        /// Byte offset.
        off: Operand,
    },
    /// Integer arithmetic.
    IntOp {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: IntOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `(intptr_t)src` — Fig. 4 cast row: relative operands convert.
    PtrToInt {
        /// Destination register.
        dst: Reg,
        /// Pointer operand.
        src: Operand,
    },
    /// `(T*)src` — raw adoption of the bits.
    IntToPtr {
        /// Destination register.
        dst: Reg,
        /// Integer operand.
        src: Operand,
    },
    /// `dst = lhs - rhs` over pointers (bytes).
    PtrDiff {
        /// Destination register.
        dst: Reg,
        /// Left pointer.
        lhs: Operand,
        /// Right pointer.
        rhs: Operand,
    },
    /// Pointer comparison producing 0/1.
    CmpPtr {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: CmpOp,
        /// Left pointer.
        lhs: Operand,
        /// Right pointer.
        rhs: Operand,
    },
    /// Integer comparison producing 0/1.
    CmpInt {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Register copy / materialization of an operand.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Call of another function in the module.
    Call {
        /// Destination for the return value, if used.
        dst: Option<Reg>,
        /// Callee name.
        callee: String,
        /// Argument operands.
        args: Vec<Operand>,
    },
}

impl Inst {
    /// The destination register, if the instruction produces a value.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::ConstInt { dst, .. }
            | Inst::Malloc { dst, .. }
            | Inst::Pmalloc { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadPtr { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::IntOp { dst, .. }
            | Inst::PtrToInt { dst, .. }
            | Inst::IntToPtr { dst, .. }
            | Inst::PtrDiff { dst, .. }
            | Inst::CmpPtr { dst, .. }
            | Inst::CmpInt { dst, .. }
            | Inst::Copy { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Free { .. } | Inst::Store { .. } | Inst::StorePtr { .. } => None,
        }
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on a non-zero / non-null condition.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
}

impl Term {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Term::Ret(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Instructions in order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// A function: parameters arrive in registers `0..params`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Number of parameters (registers `0..params`).
    pub params: u32,
    /// Total registers used.
    pub regs: u32,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }
}

/// A module: a set of functions.
#[derive(Clone, Default, Debug)]
pub struct Module {
    /// Functions by name.
    pub functions: BTreeMap<String, Function>,
}

/// Structural verification errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A branch targets a nonexistent block.
    BadBlockTarget(String, BlockId),
    /// An instruction references a register beyond the declared count.
    BadRegister(String, Reg),
    /// A function has no blocks.
    EmptyFunction(String),
    /// A call names a function not in the module.
    UnknownCallee(String, String),
    /// A call passes the wrong number of arguments.
    BadArity(String, String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadBlockTarget(func, b) => {
                write!(f, "function {func}: branch to nonexistent {b:?}")
            }
            VerifyError::BadRegister(func, r) => {
                write!(f, "function {func}: register {r:?} out of range")
            }
            VerifyError::EmptyFunction(func) => write!(f, "function {func} has no blocks"),
            VerifyError::UnknownCallee(func, callee) => {
                write!(f, "function {func} calls unknown {callee}")
            }
            VerifyError::BadArity(func, callee) => {
                write!(f, "function {func} calls {callee} with wrong arity")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, replacing any previous one with the same name.
    pub fn add(&mut self, f: Function) {
        self.functions.insert(f.name.clone(), f);
    }

    /// Structural verification of every function.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for (name, f) in &self.functions {
            if f.blocks.is_empty() {
                return Err(VerifyError::EmptyFunction(name.clone()));
            }
            let check_op = |op: &Operand| -> Result<(), VerifyError> {
                if let Operand::Reg(r) = op {
                    if r.0 >= f.regs {
                        return Err(VerifyError::BadRegister(name.clone(), *r));
                    }
                }
                Ok(())
            };
            for block in &f.blocks {
                for inst in &block.insts {
                    if let Some(d) = inst.dst() {
                        if d.0 >= f.regs {
                            return Err(VerifyError::BadRegister(name.clone(), d));
                        }
                    }
                    for op in operands_of(inst) {
                        check_op(&op)?;
                    }
                    if let Inst::Call { callee, args, .. } = inst {
                        match self.functions.get(callee) {
                            None => {
                                return Err(VerifyError::UnknownCallee(
                                    name.clone(),
                                    callee.clone(),
                                ))
                            }
                            Some(target) => {
                                if args.len() as u32 != target.params {
                                    return Err(VerifyError::BadArity(
                                        name.clone(),
                                        callee.clone(),
                                    ));
                                }
                            }
                        }
                    }
                }
                for succ in block.term.successors() {
                    if succ.0 as usize >= f.blocks.len() {
                        return Err(VerifyError::BadBlockTarget(name.clone(), succ));
                    }
                }
                if let Term::CondBr { cond, .. } = &block.term {
                    check_op(cond)?;
                }
                if let Term::Ret(Some(v)) = &block.term {
                    check_op(v)?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{}", r.0),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Null => f.write_str("null"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::ConstInt { dst, value } => write!(f, "r{} = const {value}", dst.0),
            Inst::Malloc { dst, size } => write!(f, "r{} = malloc {size}", dst.0),
            Inst::Pmalloc { dst, size } => write!(f, "r{} = pmalloc {size}", dst.0),
            Inst::Free { ptr } => write!(f, "free {ptr}"),
            Inst::Load { dst, addr, off } => write!(f, "r{} = load [{addr}+{off}]", dst.0),
            Inst::Store { addr, off, value } => write!(f, "store [{addr}+{off}], {value}"),
            Inst::LoadPtr { dst, addr, off } => write!(f, "r{} = loadp [{addr}+{off}]", dst.0),
            Inst::StorePtr { addr, off, value } => write!(f, "storep [{addr}+{off}], {value}"),
            Inst::Gep { dst, base, off } => write!(f, "r{} = gep {base}, {off}", dst.0),
            Inst::IntOp { dst, op, lhs, rhs } => {
                write!(f, "r{} = {op:?} {lhs}, {rhs}", dst.0)
            }
            Inst::PtrToInt { dst, src } => write!(f, "r{} = ptrtoint {src}", dst.0),
            Inst::IntToPtr { dst, src } => write!(f, "r{} = inttoptr {src}", dst.0),
            Inst::PtrDiff { dst, lhs, rhs } => write!(f, "r{} = ptrdiff {lhs}, {rhs}", dst.0),
            Inst::CmpPtr { dst, op, lhs, rhs } => {
                write!(f, "r{} = cmpp.{op:?} {lhs}, {rhs}", dst.0)
            }
            Inst::CmpInt { dst, op, lhs, rhs } => {
                write!(f, "r{} = cmpi.{op:?} {lhs}, {rhs}", dst.0)
            }
            Inst::Copy { dst, src } => write!(f, "r{} = {src}", dst.0),
            Inst::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "r{} = call {callee}(", d.0)?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Br(b) => write!(f, "br bb{}", b.0),
            Term::CondBr { cond, then_bb, else_bb } => {
                write!(f, "br {cond}, bb{}, bb{}", then_bb.0, else_bb.0)
            }
            Term::Ret(None) => f.write_str("ret"),
            Term::Ret(Some(v)) => write!(f, "ret {v}"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for i in 0..self.params {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "r{i}")?;
        }
        writeln!(f, ") {{")?;
        for (bi, block) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{bi}:")?;
            for inst in &block.insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", block.term)?;
        }
        f.write_str("}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.values().enumerate() {
            if i > 0 {
                writeln!(f)?;
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

/// All operands an instruction reads.
pub fn operands_of(inst: &Inst) -> Vec<Operand> {
    match inst {
        Inst::ConstInt { .. } => vec![],
        Inst::Malloc { size, .. } | Inst::Pmalloc { size, .. } => vec![*size],
        Inst::Free { ptr } => vec![*ptr],
        Inst::Load { addr, .. } | Inst::LoadPtr { addr, .. } => vec![*addr],
        Inst::Store { addr, value, .. } | Inst::StorePtr { addr, value, .. } => {
            vec![*addr, *value]
        }
        Inst::Gep { base, off, .. } => vec![*base, *off],
        Inst::IntOp { lhs, rhs, .. }
        | Inst::PtrDiff { lhs, rhs, .. }
        | Inst::CmpPtr { lhs, rhs, .. }
        | Inst::CmpInt { lhs, rhs, .. } => vec![*lhs, *rhs],
        Inst::PtrToInt { src, .. } | Inst::IntToPtr { src, .. } | Inst::Copy { src, .. } => {
            vec![*src]
        }
        Inst::Call { args, .. } => args.clone(),
    }
}

/// A convenience builder for one function.
///
/// # Examples
///
/// ```
/// use utpr_cc::ir::{FnBuilder, Operand};
///
/// let mut b = FnBuilder::new("double_it", 1);
/// let p = b.param(0);
/// let v = b.fresh();
/// b.load(v, Operand::Reg(p), 0);
/// let d = b.fresh();
/// b.int_add(d, Operand::Reg(v), Operand::Reg(v));
/// b.store(Operand::Reg(p), 0, Operand::Reg(d));
/// b.ret(Some(Operand::Reg(d)));
/// let f = b.finish();
/// assert_eq!(f.params, 1);
/// ```
#[derive(Debug)]
pub struct FnBuilder {
    name: String,
    params: u32,
    next_reg: u32,
    blocks: Vec<Block>,
    current: usize,
}

impl FnBuilder {
    /// Starts a function with `params` parameters (in registers `0..params`)
    /// and an open entry block.
    pub fn new(name: &str, params: u32) -> Self {
        FnBuilder {
            name: name.to_string(),
            params,
            next_reg: params,
            blocks: vec![Block { insts: vec![], term: Term::Ret(None) }],
            current: 0,
        }
    }

    /// Parameter register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a parameter index.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.params);
        Reg(i)
    }

    /// Allocates a fresh register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates a new (empty) block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block { insts: vec![], term: Term::Ret(None) });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Makes `b` the block subsequent instructions append to.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b.0 as usize;
    }

    fn push(&mut self, inst: Inst) {
        self.blocks[self.current].insts.push(inst);
    }

    /// Emits `dst = imm`.
    pub fn const_int(&mut self, dst: Reg, value: i64) {
        self.push(Inst::ConstInt { dst, value });
    }
    /// Emits a volatile allocation.
    pub fn malloc(&mut self, dst: Reg, size: Operand) {
        self.push(Inst::Malloc { dst, size });
    }
    /// Emits a persistent allocation.
    pub fn pmalloc(&mut self, dst: Reg, size: Operand) {
        self.push(Inst::Pmalloc { dst, size });
    }
    /// Emits a free.
    pub fn free(&mut self, ptr: Operand) {
        self.push(Inst::Free { ptr });
    }
    /// Emits an integer load.
    pub fn load(&mut self, dst: Reg, addr: Operand, off: i64) {
        self.push(Inst::Load { dst, addr, off });
    }
    /// Emits an integer store.
    pub fn store(&mut self, addr: Operand, off: i64, value: Operand) {
        self.push(Inst::Store { addr, off, value });
    }
    /// Emits a pointer load.
    pub fn load_ptr(&mut self, dst: Reg, addr: Operand, off: i64) {
        self.push(Inst::LoadPtr { dst, addr, off });
    }
    /// Emits a pointer store.
    pub fn store_ptr(&mut self, addr: Operand, off: i64, value: Operand) {
        self.push(Inst::StorePtr { addr, off, value });
    }
    /// Emits pointer arithmetic.
    pub fn gep(&mut self, dst: Reg, base: Operand, off: Operand) {
        self.push(Inst::Gep { dst, base, off });
    }
    /// Emits integer addition.
    pub fn int_add(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.push(Inst::IntOp { dst, op: IntOp::Add, lhs, rhs });
    }
    /// Emits an integer operation.
    pub fn int_op(&mut self, dst: Reg, op: IntOp, lhs: Operand, rhs: Operand) {
        self.push(Inst::IntOp { dst, op, lhs, rhs });
    }
    /// Emits a pointer→integer cast.
    pub fn ptr_to_int(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::PtrToInt { dst, src });
    }
    /// Emits an integer→pointer cast.
    pub fn int_to_ptr(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::IntToPtr { dst, src });
    }
    /// Emits a pointer difference.
    pub fn ptr_diff(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.push(Inst::PtrDiff { dst, lhs, rhs });
    }
    /// Emits a pointer comparison.
    pub fn cmp_ptr(&mut self, dst: Reg, op: CmpOp, lhs: Operand, rhs: Operand) {
        self.push(Inst::CmpPtr { dst, op, lhs, rhs });
    }
    /// Emits an integer comparison.
    pub fn cmp_int(&mut self, dst: Reg, op: CmpOp, lhs: Operand, rhs: Operand) {
        self.push(Inst::CmpInt { dst, op, lhs, rhs });
    }
    /// Emits a register copy.
    pub fn copy(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::Copy { dst, src });
    }
    /// Emits a call.
    pub fn call(&mut self, dst: Option<Reg>, callee: &str, args: Vec<Operand>) {
        self.push(Inst::Call { dst, callee: callee.to_string(), args });
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.blocks[self.current].term = Term::Br(target);
    }
    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.blocks[self.current].term = Term::CondBr { cond, then_bb, else_bb };
    }
    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.blocks[self.current].term = Term::Ret(value);
    }

    /// Finalizes the function.
    pub fn finish(self) -> Function {
        Function { name: self.name, params: self.params, regs: self.next_reg, blocks: self.blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial() -> Function {
        let mut b = FnBuilder::new("t", 1);
        let r = b.fresh();
        b.load(r, Operand::Reg(b.param(0)), 0);
        b.ret(Some(Operand::Reg(r)));
        b.finish()
    }

    #[test]
    fn builder_produces_valid_function() {
        let mut m = Module::new();
        m.add(trivial());
        m.verify().unwrap();
    }

    #[test]
    fn verify_catches_bad_register() {
        let mut f = trivial();
        f.blocks[0].insts.push(Inst::Copy { dst: Reg(99), src: Operand::Imm(0) });
        let mut m = Module::new();
        m.add(f);
        assert!(matches!(m.verify(), Err(VerifyError::BadRegister(_, _))));
    }

    #[test]
    fn verify_catches_bad_branch() {
        let mut f = trivial();
        f.blocks[0].term = Term::Br(BlockId(7));
        let mut m = Module::new();
        m.add(f);
        assert!(matches!(m.verify(), Err(VerifyError::BadBlockTarget(_, _))));
    }

    #[test]
    fn verify_catches_unknown_callee_and_arity() {
        let mut b = FnBuilder::new("caller", 0);
        b.call(None, "missing", vec![]);
        b.ret(None);
        let mut m = Module::new();
        m.add(b.finish());
        assert!(matches!(m.verify(), Err(VerifyError::UnknownCallee(_, _))));

        let mut m2 = Module::new();
        m2.add(trivial());
        let mut b2 = FnBuilder::new("caller", 0);
        b2.call(None, "t", vec![]); // t takes 1 arg
        b2.ret(None);
        m2.add(b2.finish());
        assert!(matches!(m2.verify(), Err(VerifyError::BadArity(_, _))));
    }

    #[test]
    fn successors_of_terminators() {
        assert_eq!(Term::Br(BlockId(1)).successors(), vec![BlockId(1)]);
        assert_eq!(Term::Ret(None).successors(), vec![]);
        let c = Term::CondBr { cond: Operand::Imm(1), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(c.successors().len(), 2);
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(!CmpOp::Ne.eval(3, 3));
    }

    #[test]
    fn display_renders_readable_ir() {
        let mut b = FnBuilder::new("show", 1);
        let p = b.fresh();
        b.pmalloc(p, Operand::Imm(16));
        b.store_ptr(Operand::Reg(b.param(0)), 0, Operand::Reg(p));
        let c = b.fresh();
        b.cmp_ptr(c, CmpOp::Ne, Operand::Reg(p), Operand::Null);
        b.ret(Some(Operand::Reg(c)));
        let mut m = Module::new();
        m.add(b.finish());
        let text = m.to_string();
        assert!(text.contains("fn show(r0)"), "{text}");
        assert!(text.contains("r1 = pmalloc 16"), "{text}");
        assert!(text.contains("storep [r0+0], r1"), "{text}");
        assert!(text.contains("cmpp.Ne r1, null"), "{text}");
        assert!(text.contains("ret r2"), "{text}");
    }
}
