//! Representative pointer-chasing kernels in IR form.
//!
//! These are the code shapes the paper's benchmarks execute — list pushes
//! and walks, BST descent with child-link updates, hash-bucket chains,
//! pointer swaps — expressed in the mini-IR so the inference pass and the
//! interpreter can (a) validate soundness against native Rust execution and
//! (b) measure how many dynamic checks survive inference (the paper reports
//! ≈ 42 % surviving on its benchmarks).

use crate::ir::{CmpOp, FnBuilder, IntOp, Module, Operand, Operand::*};

/// Builds the full kernel module.
///
/// Node layouts (all fields 8 bytes):
/// - list node: `[value, next]`
/// - BST node: `[key, left, right]`
/// - hash node: `[key, value, next]`
pub fn module() -> Module {
    let mut m = Module::new();
    m.add(list_push());
    m.add(list_sum());
    m.add(bst_insert());
    m.add(bst_contains());
    m.add(hash_put());
    m.add(hash_get());
    m.add(swap());
    m.add(memfill());
    m.add(list_build_and_sum());
    m.add(bst_build_and_probe());
    m.add(hash_build_and_probe());
    debug_assert!(m.verify().is_ok());
    m
}

/// Names of the whole-program drivers — the paper-kernel entry points the
/// bench tier runs (and the natural interprocedural inference roots).
pub const DRIVERS: [&str; 3] =
    ["list_build_and_sum", "bst_build_and_probe", "hash_build_and_probe"];

/// `void list_push(void** slot, long value)` — prepend a node.
fn list_push() -> crate::ir::Function {
    let mut b = FnBuilder::new("list_push", 2);
    let slot = b.param(0);
    let value = b.param(1);
    let n = b.fresh();
    b.pmalloc(n, Imm(16));
    b.store(Reg(n), 0, Reg(value));
    let old = b.fresh();
    b.load_ptr(old, Reg(slot), 0);
    b.store_ptr(Reg(n), 8, Reg(old));
    b.store_ptr(Reg(slot), 0, Reg(n));
    b.ret(None);
    b.finish()
}

/// `long list_sum(void** slot)` — walk and accumulate.
fn list_sum() -> crate::ir::Function {
    let mut b = FnBuilder::new("list_sum", 1);
    let slot = b.param(0);
    let sum = b.fresh();
    let p = b.fresh();
    let loop_bb = b.new_block();
    let body = b.new_block();
    let done = b.new_block();

    b.const_int(sum, 0);
    b.load_ptr(p, Reg(slot), 0);
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let c = b.fresh();
    b.cmp_ptr(c, CmpOp::Ne, Reg(p), Null);
    b.cond_br(Reg(c), body, done);

    b.switch_to(body);
    let v = b.fresh();
    b.load(v, Reg(p), 0);
    b.int_add(sum, Reg(sum), Reg(v));
    b.load_ptr(p, Reg(p), 8);
    b.br(loop_bb);

    b.switch_to(done);
    b.ret(Some(Reg(sum)));
    b.finish()
}

/// `void bst_insert(void** root_slot, long key)`.
fn bst_insert() -> crate::ir::Function {
    let mut b = FnBuilder::new("bst_insert", 2);
    let slot = b.param(0);
    let key = b.param(1);
    let n = b.fresh();
    let cur = b.fresh();

    let empty = b.new_block();
    let descend = b.new_block();
    let loop_bb = b.new_block();
    let left = b.new_block();
    let attach_left = b.new_block();
    let step_left = b.new_block();
    let right = b.new_block();
    let attach_right = b.new_block();
    let step_right = b.new_block();

    b.pmalloc(n, Imm(24));
    b.store(Reg(n), 0, Reg(key));
    b.store_ptr(Reg(n), 8, Null);
    b.store_ptr(Reg(n), 16, Null);
    let root = b.fresh();
    b.load_ptr(root, Reg(slot), 0);
    let c = b.fresh();
    b.cmp_ptr(c, CmpOp::Eq, Reg(root), Null);
    b.cond_br(Reg(c), empty, descend);

    b.switch_to(empty);
    b.store_ptr(Reg(slot), 0, Reg(n));
    b.ret(None);

    b.switch_to(descend);
    b.copy(cur, Reg(root));
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let k = b.fresh();
    b.load(k, Reg(cur), 0);
    let goleft = b.fresh();
    b.cmp_int(goleft, CmpOp::Lt, Reg(key), Reg(k));
    b.cond_br(Reg(goleft), left, right);

    b.switch_to(left);
    let lc = b.fresh();
    b.load_ptr(lc, Reg(cur), 8);
    let cl = b.fresh();
    b.cmp_ptr(cl, CmpOp::Eq, Reg(lc), Null);
    b.cond_br(Reg(cl), attach_left, step_left);

    b.switch_to(attach_left);
    b.store_ptr(Reg(cur), 8, Reg(n));
    b.ret(None);

    b.switch_to(step_left);
    b.copy(cur, Reg(lc));
    b.br(loop_bb);

    b.switch_to(right);
    let rc = b.fresh();
    b.load_ptr(rc, Reg(cur), 16);
    let cr = b.fresh();
    b.cmp_ptr(cr, CmpOp::Eq, Reg(rc), Null);
    b.cond_br(Reg(cr), attach_right, step_right);

    b.switch_to(attach_right);
    b.store_ptr(Reg(cur), 16, Reg(n));
    b.ret(None);

    b.switch_to(step_right);
    b.copy(cur, Reg(rc));
    b.br(loop_bb);

    b.finish()
}

/// `long bst_contains(void** root_slot, long key)` → 0/1.
fn bst_contains() -> crate::ir::Function {
    let mut b = FnBuilder::new("bst_contains", 2);
    let slot = b.param(0);
    let key = b.param(1);
    let cur = b.fresh();

    let loop_bb = b.new_block();
    let check = b.new_block();
    let step = b.new_block();
    let goleft = b.new_block();
    let goright = b.new_block();
    let found = b.new_block();
    let missing = b.new_block();

    b.load_ptr(cur, Reg(slot), 0);
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let c = b.fresh();
    b.cmp_ptr(c, CmpOp::Eq, Reg(cur), Null);
    b.cond_br(Reg(c), missing, check);

    b.switch_to(check);
    let k = b.fresh();
    b.load(k, Reg(cur), 0);
    let eq = b.fresh();
    b.cmp_int(eq, CmpOp::Eq, Reg(key), Reg(k));
    b.cond_br(Reg(eq), found, step);

    b.switch_to(step);
    let lt = b.fresh();
    b.cmp_int(lt, CmpOp::Lt, Reg(key), Reg(k));
    b.cond_br(Reg(lt), goleft, goright);

    b.switch_to(goleft);
    b.load_ptr(cur, Reg(cur), 8);
    b.br(loop_bb);

    b.switch_to(goright);
    b.load_ptr(cur, Reg(cur), 16);
    b.br(loop_bb);

    b.switch_to(found);
    b.ret(Some(Imm(1)));

    b.switch_to(missing);
    b.ret(Some(Imm(0)));
    b.finish()
}

/// `void hash_put(void* table, long mask, long key, long value)`.
fn hash_put() -> crate::ir::Function {
    let mut b = FnBuilder::new("hash_put", 4);
    let table = b.param(0);
    let mask = b.param(1);
    let key = b.param(2);
    let value = b.param(3);

    let idx = b.fresh();
    b.int_op(idx, IntOp::And, Reg(key), Reg(mask));
    let off = b.fresh();
    b.int_op(off, IntOp::Mul, Reg(idx), Imm(8));
    let slot = b.fresh();
    b.gep(slot, Reg(table), Reg(off));
    let n = b.fresh();
    b.pmalloc(n, Imm(24));
    b.store(Reg(n), 0, Reg(key));
    b.store(Reg(n), 8, Reg(value));
    let old = b.fresh();
    b.load_ptr(old, Reg(slot), 0);
    b.store_ptr(Reg(n), 16, Reg(old));
    b.store_ptr(Reg(slot), 0, Reg(n));
    b.ret(None);
    b.finish()
}

/// `long hash_get(void* table, long mask, long key)` → value or −1.
fn hash_get() -> crate::ir::Function {
    let mut b = FnBuilder::new("hash_get", 3);
    let table = b.param(0);
    let mask = b.param(1);
    let key = b.param(2);

    let loop_bb = b.new_block();
    let check = b.new_block();
    let step = b.new_block();
    let hit = b.new_block();
    let miss = b.new_block();

    let idx = b.fresh();
    b.int_op(idx, IntOp::And, Reg(key), Reg(mask));
    let off = b.fresh();
    b.int_op(off, IntOp::Mul, Reg(idx), Imm(8));
    let slot = b.fresh();
    b.gep(slot, Reg(table), Reg(off));
    let p = b.fresh();
    b.load_ptr(p, Reg(slot), 0);
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let c = b.fresh();
    b.cmp_ptr(c, CmpOp::Eq, Reg(p), Null);
    b.cond_br(Reg(c), miss, check);

    b.switch_to(check);
    let k = b.fresh();
    b.load(k, Reg(p), 0);
    let eq = b.fresh();
    b.cmp_int(eq, CmpOp::Eq, Reg(key), Reg(k));
    b.cond_br(Reg(eq), hit, step);

    b.switch_to(step);
    b.load_ptr(p, Reg(p), 16);
    b.br(loop_bb);

    b.switch_to(hit);
    let v = b.fresh();
    b.load(v, Reg(p), 8);
    b.ret(Some(Reg(v)));

    b.switch_to(miss);
    b.ret(Some(Imm(-1)));
    b.finish()
}

/// `void swap(void** a, void** b)` — exchange two stored pointers.
fn swap() -> crate::ir::Function {
    let mut b = FnBuilder::new("swap", 2);
    let a = b.param(0);
    let c = b.param(1);
    let x = b.fresh();
    let y = b.fresh();
    b.load_ptr(x, Reg(a), 0);
    b.load_ptr(y, Reg(c), 0);
    b.store_ptr(Reg(a), 0, Reg(y));
    b.store_ptr(Reg(c), 0, Reg(x));
    b.ret(None);
    b.finish()
}

/// `void memfill(void* p, long words, long v)`.
fn memfill() -> crate::ir::Function {
    let mut b = FnBuilder::new("memfill", 3);
    let p = b.param(0);
    let words = b.param(1);
    let v = b.param(2);
    let i = b.fresh();

    let loop_bb = b.new_block();
    let body = b.new_block();
    let done = b.new_block();

    b.const_int(i, 0);
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(words));
    b.cond_br(Reg(c), body, done);

    b.switch_to(body);
    let off = b.fresh();
    b.int_op(off, IntOp::Mul, Reg(i), Imm(8));
    let q = b.fresh();
    b.gep(q, Reg(p), Reg(off));
    b.store(Reg(q), 0, Reg(v));
    b.int_add(i, Reg(i), Imm(1));
    b.br(loop_bb);

    b.switch_to(done);
    b.ret(None);
    b.finish()
}

/// `long list_build_and_sum(long n)` — allocates a slot, pushes `1..=n`,
/// sums. Exercises calls and whole-program flow.
fn list_build_and_sum() -> crate::ir::Function {
    let mut b = FnBuilder::new("list_build_and_sum", 1);
    let n = b.param(0);
    let slot = b.fresh();
    let i = b.fresh();

    let loop_bb = b.new_block();
    let body = b.new_block();
    let done = b.new_block();

    b.pmalloc(slot, Imm(8));
    b.store_ptr(Reg(slot), 0, Null);
    b.const_int(i, 1);
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Le, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, done);

    b.switch_to(body);
    b.call(None, "list_push", vec![Operand::Reg(slot), Operand::Reg(i)]);
    b.int_add(i, Reg(i), Imm(1));
    b.br(loop_bb);

    b.switch_to(done);
    let s = b.fresh();
    b.call(Some(s), "list_sum", vec![Operand::Reg(slot)]);
    b.ret(Some(Reg(s)));
    b.finish()
}

/// `long bst_build_and_probe(long n)` — allocates a root slot, inserts
/// `n` scrambled keys, then counts how many probe back positive. Exercises
/// whole-program flow into the BST kernels.
fn bst_build_and_probe() -> crate::ir::Function {
    let mut b = FnBuilder::new("bst_build_and_probe", 1);
    let n = b.param(0);
    let slot = b.fresh();
    let i = b.fresh();
    let acc = b.fresh();

    let loop_bb = b.new_block();
    let body = b.new_block();
    let probe_bb = b.new_block();
    let pcheck = b.new_block();
    let pbody = b.new_block();
    let done = b.new_block();

    b.pmalloc(slot, Imm(8));
    b.store_ptr(Reg(slot), 0, Null);
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(loop_bb);

    b.switch_to(loop_bb);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), body, probe_bb);

    b.switch_to(body);
    // Scrambled key stream with duplicates: (i * 37) & 63.
    let k = b.fresh();
    b.int_op(k, IntOp::Mul, Reg(i), Imm(37));
    b.int_op(k, IntOp::And, Reg(k), Imm(63));
    b.call(None, "bst_insert", vec![Operand::Reg(slot), Operand::Reg(k)]);
    b.int_add(i, Reg(i), Imm(1));
    b.br(loop_bb);

    b.switch_to(probe_bb);
    b.const_int(i, 0);
    b.br(pcheck);

    b.switch_to(pcheck);
    let c2 = b.fresh();
    b.cmp_int(c2, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c2), pbody, done);

    b.switch_to(pbody);
    let k2 = b.fresh();
    b.int_op(k2, IntOp::Mul, Reg(i), Imm(37));
    b.int_op(k2, IntOp::And, Reg(k2), Imm(63));
    let hit = b.fresh();
    b.call(Some(hit), "bst_contains", vec![Operand::Reg(slot), Operand::Reg(k2)]);
    b.int_add(acc, Reg(acc), Reg(hit));
    b.int_add(i, Reg(i), Imm(1));
    b.br(pcheck);

    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

/// `long hash_build_and_probe(long n)` — allocates and zeroes an 8-slot
/// table, puts `n` keys, then sums the gets back. Exercises whole-program
/// flow into the hash kernels (and `memfill`).
fn hash_build_and_probe() -> crate::ir::Function {
    let mut b = FnBuilder::new("hash_build_and_probe", 1);
    let n = b.param(0);
    let table = b.fresh();
    let i = b.fresh();
    let acc = b.fresh();

    let put_bb = b.new_block();
    let put_body = b.new_block();
    let get_bb = b.new_block();
    let get_check = b.new_block();
    let get_body = b.new_block();
    let done = b.new_block();

    b.pmalloc(table, Imm(64));
    b.call(None, "memfill", vec![Operand::Reg(table), Operand::Imm(8), Operand::Imm(0)]);
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.br(put_bb);

    b.switch_to(put_bb);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c), put_body, get_bb);

    b.switch_to(put_body);
    let v = b.fresh();
    b.int_op(v, IntOp::Mul, Reg(i), Imm(3));
    b.call(
        None,
        "hash_put",
        vec![Operand::Reg(table), Operand::Imm(7), Operand::Reg(i), Operand::Reg(v)],
    );
    b.int_add(i, Reg(i), Imm(1));
    b.br(put_bb);

    b.switch_to(get_bb);
    b.const_int(i, 0);
    b.br(get_check);

    b.switch_to(get_check);
    let c2 = b.fresh();
    b.cmp_int(c2, CmpOp::Lt, Reg(i), Reg(n));
    b.cond_br(Reg(c2), get_body, done);

    b.switch_to(get_body);
    let got = b.fresh();
    b.call(Some(got), "hash_get", vec![Operand::Reg(table), Operand::Imm(7), Operand::Reg(i)]);
    b.int_add(acc, Reg(acc), Reg(got));
    b.int_add(i, Reg(i), Imm(1));
    b.br(get_check);

    b.switch_to(done);
    b.ret(Some(Reg(acc)));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_module;
    use crate::interp::{Interp, Val};
    use utpr_heap::{AddressSpace, PoolId};
    use utpr_ptr::UPtr;

    fn with_pool() -> (AddressSpace, PoolId) {
        let mut s = AddressSpace::new(41);
        let p = s.create_pool("kern", 4 << 20).unwrap();
        (s, p)
    }

    #[test]
    fn module_verifies() {
        module().verify().unwrap();
    }

    #[test]
    fn list_build_and_sum_is_gauss() {
        let m = module();
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        let out = i.run("list_build_and_sum", vec![Val::Int(100)]).unwrap();
        assert_eq!(out, Some(Val::Int(5050)));
    }

    #[test]
    fn bst_insert_and_contains() {
        let m = module();
        let (mut s, pool) = with_pool();
        let slot = s.pmalloc(pool, 8).unwrap();
        let slot_ptr = Val::Ptr(UPtr::from_rel(slot));
        let mut i = Interp::new(&mut s, pool, &m);
        for k in [50i64, 30, 80, 10, 40, 90, 85] {
            i.run("bst_insert", vec![slot_ptr, Val::Int(k)]).unwrap();
        }
        for k in [50i64, 30, 80, 10, 40, 90, 85] {
            assert_eq!(
                i.run("bst_contains", vec![slot_ptr, Val::Int(k)]).unwrap(),
                Some(Val::Int(1)),
                "missing {k}"
            );
        }
        for k in [0i64, 31, 79, 1000] {
            assert_eq!(
                i.run("bst_contains", vec![slot_ptr, Val::Int(k)]).unwrap(),
                Some(Val::Int(0)),
                "phantom {k}"
            );
        }
    }

    #[test]
    fn hash_put_get_round_trip() {
        let m = module();
        let (mut s, pool) = with_pool();
        // 8 bucket slots, zeroed.
        let table = s.pmalloc(pool, 64).unwrap();
        let tp = Val::Ptr(UPtr::from_rel(table));
        let mut i = Interp::new(&mut s, pool, &m);
        for k in 0..32i64 {
            i.run("hash_put", vec![tp, Val::Int(7), Val::Int(k), Val::Int(k * 3)]).unwrap();
        }
        for k in 0..32i64 {
            assert_eq!(
                i.run("hash_get", vec![tp, Val::Int(7), Val::Int(k)]).unwrap(),
                Some(Val::Int(k * 3))
            );
        }
        assert_eq!(
            i.run("hash_get", vec![tp, Val::Int(7), Val::Int(999)]).unwrap(),
            Some(Val::Int(-1))
        );
    }

    #[test]
    fn swap_exchanges_pointers() {
        let m = module();
        let (mut s, pool) = with_pool();
        let a = s.pmalloc(pool, 8).unwrap();
        let b = s.pmalloc(pool, 8).unwrap();
        let x = s.pmalloc(pool, 16).unwrap();
        let y = s.pmalloc(pool, 16).unwrap();
        // Seed slots with relative pointers (as a persistent program would).
        let va_a = s.ra2va(a).unwrap();
        let va_b = s.ra2va(b).unwrap();
        s.write_u64(va_a, UPtr::from_rel(x).raw()).unwrap();
        s.write_u64(va_b, UPtr::from_rel(y).raw()).unwrap();
        let mut i = Interp::new(&mut s, pool, &m);
        i.run(
            "swap",
            vec![Val::Ptr(UPtr::from_rel(a)), Val::Ptr(UPtr::from_rel(b))],
        )
        .unwrap();
        // Slots now point at each other's object, still in relative format.
        let ra = s.read_u64(s.ra2va(a).unwrap()).unwrap();
        let rb = s.read_u64(s.ra2va(b).unwrap()).unwrap();
        assert_eq!(UPtr::from_raw(ra).as_rel(), Some(y));
        assert_eq!(UPtr::from_raw(rb).as_rel(), Some(x));
    }

    #[test]
    fn memfill_writes_every_word() {
        let m = module();
        let (mut s, pool) = with_pool();
        let buf = s.pmalloc(pool, 256).unwrap();
        let mut i = Interp::new(&mut s, pool, &m);
        i.run(
            "memfill",
            vec![Val::Ptr(UPtr::from_rel(buf)), Val::Int(32), Val::Int(0x5a)],
        )
        .unwrap();
        let base = s.ra2va(buf).unwrap();
        for w in 0..32u64 {
            assert_eq!(s.read_u64(base.add(w * 8)).unwrap(), 0x5a);
        }
    }

    #[test]
    fn inference_leaves_roughly_the_papers_fraction_of_checks() {
        let m = module();
        let report = analyze_module(&m);
        let f = report.static_check_fraction();
        // The paper measures ≈ 42 % of dynamic checks remaining; the static
        // fraction on these kernels should land in the same region.
        assert!(f > 0.25 && f < 0.75, "static check fraction {f}");
    }

    #[test]
    fn dynamic_check_fraction_on_mixed_workload() {
        let m = module();
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        i.run("list_build_and_sum", vec![Val::Int(200)]).unwrap();
        let slot = {
            // Reuse the interpreter's pool for a BST too.
            drop(i);
            s.pmalloc(pool, 8).unwrap()
        };
        let mut i = Interp::new(&mut s, pool, &m);
        for k in 0..64i64 {
            i.run(
                "bst_insert",
                vec![Val::Ptr(UPtr::from_rel(slot)), Val::Int((k * 37) % 101)],
            )
            .unwrap();
        }
        let st = i.stats();
        let f = st.dynamic_check_fraction();
        assert!(st.max_checks > 0);
        assert!(f > 0.25 && f < 0.8, "dynamic check fraction {f}");
    }

    #[test]
    fn provenance_mapping_matches_inference() {
        use utpr_ptr::Provenance;
        let m = module();
        let report = analyze_module(&m);
        // list_push: store(n,0) with n = pmalloc result must be resolved
        // (AllocResult), load_ptr(slot) with slot = param must not (Param).
        let lp = &report.functions["list_push"];
        let mut alloc_deref_resolved = None;
        let mut param_deref_resolved = None;
        let f = &m.functions["list_push"];
        for (key, d) in &lp.decisions {
            match &f.blocks[key.block.0 as usize].insts[key.index] {
                crate::ir::Inst::Store { addr: Operand::Reg(r), .. } if r.0 >= 2 => {
                    alloc_deref_resolved = Some(d.resolved());
                }
                crate::ir::Inst::LoadPtr { addr: Operand::Reg(r), .. } if r.0 == 0 => {
                    param_deref_resolved = Some(d.resolved());
                }
                _ => {}
            }
        }
        assert_eq!(alloc_deref_resolved, Some(Provenance::AllocResult.is_statically_resolved()));
        assert_eq!(param_deref_resolved, Some(!Provenance::Param.is_statically_resolved() == false));
        assert_eq!(param_deref_resolved, Some(false));
    }
}
