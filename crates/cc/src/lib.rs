//! # utpr-cc — the compiler-based method: IR, inference, checks
//!
//! The paper's software path (§V-B) is an LLVM pass that infers pointer
//! properties with dataflow analysis and inserts dynamic checks only where
//! inference fails. This crate reproduces that pass over a compact
//! register-based IR:
//!
//! - [`ir`] — functions, basic blocks, and explicit pointer instructions
//!   mirroring the operation classes of the paper's Fig. 4;
//! - [`analysis`] — the forward dataflow inference over format/space
//!   lattices, producing per-site check [`analysis::Decision`]s;
//! - [`interp`] — an interpreter executing IR with the Fig. 4 semantics
//!   against the simulated heap, counting executed checks;
//! - [`kernels`] — list/BST/hash kernels validating both soundness (outputs
//!   match native execution) and the ≈ 42 % residual-check magnitude the
//!   paper measures.
//!
//! ```
//! use utpr_cc::{analysis::analyze_module, kernels};
//!
//! let m = kernels::module();
//! let report = analyze_module(&m);
//! let fraction = report.static_check_fraction();
//! assert!(fraction > 0.0 && fraction < 1.0);
//! ```

pub mod analysis;
pub mod decode;
pub mod interp;
pub mod ir;
pub mod kernels;
pub mod parser;
pub mod passes;

pub use analysis::{analyze_function, analyze_module, Decision, FnAnalysis, InferenceReport};
pub use interp::{Interp, InterpError, InterpStats, Val};
pub use ir::{FnBuilder, Function, Module, VerifyError};
pub use parser::{parse_module, ParseError};
pub use passes::{count_redundant_conversions, redundant_conversion_elimination};
