//! Pre-decoded execution fast path: each [`Function`] is flattened into a
//! single cache-friendly op array executed by a tight indexed-dispatch loop
//! (see `Interp::run_decoded`).
//!
//! What decoding resolves ahead of time, once per module instead of per
//! executed instruction:
//!
//! - **operands** become plain register slots: immediates and the null
//!   constant are interned into a per-function constant pool appended to
//!   the register file, so every operand fetch is one indexed load — no
//!   `Operand` re-interpretation per step;
//! - **block targets** become flat instruction indices — terminators are
//!   ordinary ops (`Jump`/`Branch`/`Ret`) and control flow is a `pc`
//!   assignment, not a block-table walk;
//! - **callees** become dense function indices — no name lookup per call;
//! - **check decisions** are baked into each op as a [`Charge`] — the
//!   per-site `BTreeMap` probe (and the per-invocation decisions clone) in
//!   the tree-walking reference path disappears entirely.
//!
//! The tree-walking interpreter remains the semantic oracle: decoding is
//! a pure representation change, and differential tests (plus the
//! `utpr-qc` property in `tests/decode_props.rs`) assert identical
//! results, errors, fuel, and stats on the same inputs.

use crate::analysis::{InferenceReport, SiteKey};
use crate::interp::Val;
use crate::ir::{BlockId, CmpOp, Inst, IntOp, Module, Operand, Term};
use std::collections::BTreeMap;
use utpr_ptr::UPtr;

/// The check decision baked into an op. `max_checks == 0` marks ops that
/// are not pointer-operation sites (the analysis never emits a decision
/// with zero `max_checks`), so charging is branchless arithmetic on two
/// bytes instead of a map probe.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Charge {
    /// Dynamic checks surviving inference at this site.
    pub checks: u8,
    /// Checks a no-inference compiler would execute here.
    pub max_checks: u8,
}

/// A decoded instruction. Mirrors [`Inst`]/[`Term`] with every operand
/// resolved to a register slot (immediates live in the constant pool) and
/// control-flow targets resolved to flat op indices.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    Malloc { dst: u32, size: u32 },
    Pmalloc { dst: u32, size: u32 },
    Free { ptr: u32 },
    Load { dst: u32, addr: u32, off: i64 },
    Store { addr: u32, off: i64, value: u32 },
    LoadPtr { dst: u32, addr: u32, off: i64 },
    StorePtr { addr: u32, off: i64, value: u32 },
    Gep { dst: u32, base: u32, off: u32 },
    IntOp { dst: u32, op: IntOp, lhs: u32, rhs: u32 },
    PtrToInt { dst: u32, src: u32 },
    IntToPtr { dst: u32, src: u32 },
    PtrDiff { dst: u32, lhs: u32, rhs: u32 },
    CmpPtr { dst: u32, op: CmpOp, lhs: u32, rhs: u32 },
    CmpInt { dst: u32, op: CmpOp, lhs: u32, rhs: u32 },
    Copy { dst: u32, src: u32 },
    Call { dst: Option<u32>, callee: u32, args_start: u32, args_len: u32 },
    Jump { target: u32 },
    Branch { cond: u32, then_pc: u32, else_pc: u32 },
    Ret { value: Option<u32> },
    // Superinstructions: adjacent pairs the decoder fuses into one
    // dispatch (classic interpreter quickening). Each fused arm replays
    // the per-instruction prologue (fuel, inst count, charge) between its
    // halves, so fuel accounting, stats, charges, register writes, and
    // error order are bit-identical with the unfused sequence.
    /// `gep g, base, off` immediately followed by `load dst, [g+loff]`.
    /// Both destination registers are still written, so later uses of the
    /// address register are unaffected. `charge2` is the load's charge.
    GepLoad { gdst: u32, base: u32, off: u32, ldst: u32, loff: i64, charge2: Charge },
    /// A block-final `intop` whose block ends in an unconditional branch.
    IntOpJump { dst: u32, op: IntOp, lhs: u32, rhs: u32, target: u32 },
    /// A block-final `cmp_int` feeding the block's own conditional branch
    /// (every counted loop's header). The compare result is still written.
    CmpBr { dst: u32, op: CmpOp, lhs: u32, rhs: u32, then_pc: u32, else_pc: u32 },
    /// Scaled-index addressing: `intop o, lhs, rhs` whose result is the
    /// offset of the immediately following `gep g, base, o`, feeding the
    /// immediately following `load dst, [g+loff]` — the `v = p[i*8]`
    /// shape of every array walk. All three destination registers are
    /// still written. `lcharge` is the load's charge; int ops and geps
    /// are never check sites (decode refuses to fuse otherwise).
    IntOpGepLoad {
        idst: u32,
        iop: IntOp,
        ilhs: u32,
        irhs: u32,
        gdst: u32,
        base: u32,
        ldst: u32,
        loff: i64,
        lcharge: Charge,
    },
    /// Block tail `intop; intop; br` in one dispatch (a loop latch that
    /// bumps two counters). Integer ops are never check sites.
    IntOp2Jump {
        a_dst: u32,
        a_op: IntOp,
        a_lhs: u32,
        a_rhs: u32,
        b_dst: u32,
        b_op: IntOp,
        b_lhs: u32,
        b_rhs: u32,
        target: u32,
    },
    /// Block tail `store; intop; br` in one dispatch (the array-walk
    /// latch: store the element, bump the counter, loop). The op's own
    /// charge is the store's; the int op is never a check site.
    StoreIntOpJump {
        addr: u32,
        off: i64,
        value: u32,
        dst: u32,
        op: IntOp,
        lhs: u32,
        rhs: u32,
        target: u32,
    },
    /// Two adjacent integer ops in one dispatch. Integer ops are never
    /// check sites, so no second charge is carried.
    IntOp2 {
        a_dst: u32,
        a_op: IntOp,
        a_lhs: u32,
        a_rhs: u32,
        b_dst: u32,
        b_op: IntOp,
        b_lhs: u32,
        b_rhs: u32,
    },
}

/// One flat-array slot: the decoded instruction and its baked-in charge.
/// The executor derives `InterpStats::insts` from the fuel identity
/// `insts = fuel_spent - terminators - callee_fuel`, so ops carry no
/// per-slot instruction flag.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub(crate) kind: OpKind,
    pub(crate) charge: Charge,
}

/// One decoded function: all blocks concatenated into `ops`, terminators
/// inline, call arguments pooled in `call_args` as register slots, and
/// the interned constants appended to the register file at frame entry.
#[derive(Clone, Debug)]
pub struct DecodedFn {
    pub(crate) name: String,
    pub(crate) params: u32,
    /// Total register-file size: the function's own registers plus one
    /// slot per interned constant.
    pub(crate) regs: u32,
    pub(crate) consts: Vec<Val>,
    pub(crate) ops: Vec<Op>,
    pub(crate) call_args: Vec<u32>,
}

impl DecodedFn {
    /// Flat op count (instructions + terminators).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Interns `ConstInt`/immediate/null operands into the constant pool.
struct ConstPool {
    base: u32,
    ints: BTreeMap<i64, u32>,
    null: Option<u32>,
    vals: Vec<Val>,
}

impl ConstPool {
    fn new(base: u32) -> Self {
        ConstPool { base, ints: BTreeMap::new(), null: None, vals: Vec::new() }
    }

    fn int(&mut self, v: i64) -> u32 {
        if let Some(&slot) = self.ints.get(&v) {
            return slot;
        }
        let slot = self.base + self.vals.len() as u32;
        self.vals.push(Val::Int(v));
        self.ints.insert(v, slot);
        slot
    }

    fn null(&mut self) -> u32 {
        if let Some(slot) = self.null {
            return slot;
        }
        let slot = self.base + self.vals.len() as u32;
        self.vals.push(Val::Ptr(UPtr::NULL));
        self.null = Some(slot);
        slot
    }

    fn slot(&mut self, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => r.0,
            Operand::Imm(i) => self.int(i),
            Operand::Null => self.null(),
        }
    }
}

/// A module decoded against one inference report.
///
/// Function indices follow the module's (sorted) function order — the same
/// order `Interp` uses for its per-function counters, so both execution
/// paths attribute checks identically.
#[derive(Clone, Debug)]
pub struct DecodedModule {
    pub(crate) fns: Vec<DecodedFn>,
    index: BTreeMap<String, u32>,
}

impl DecodedModule {
    /// Decodes `m` against `report`.
    ///
    /// The module must pass [`Module::verify`] (block targets, register
    /// ranges, callee existence/arity); decoding relies on those
    /// invariants. The report must be the one the executing `Interp`
    /// charges against, or differential stats will diverge.
    pub fn new(m: &Module, report: &InferenceReport) -> Self {
        let index: BTreeMap<String, u32> =
            m.functions.keys().enumerate().map(|(i, n)| (n.clone(), i as u32)).collect();
        let fns = m
            .functions
            .iter()
            .map(|(name, f)| {
                let decisions = &report.functions[name].decisions;
                let charge_at = |bi: usize, ii: usize| {
                    decisions
                        .get(&SiteKey { block: BlockId(bi as u32), index: ii })
                        .map(|d| Charge { checks: d.checks, max_checks: d.max_checks })
                        .unwrap_or_default()
                };
                let mut pool = ConstPool::new(f.regs);
                let mut ops = Vec::new();
                let mut call_args = Vec::new();
                // Single pass with branch targets emitted as *block ids*;
                // a fixup below maps them to flat indices once fusion has
                // settled each block's op count. Only block entries are
                // ever branch targets, so fusing within a block is safe.
                let mut block_entry = Vec::with_capacity(f.blocks.len());
                for (bi, block) in f.blocks.iter().enumerate() {
                    block_entry.push(ops.len() as u32);
                    let insts = block.insts.as_slice();
                    let mut ii = 0;
                    let mut term_fused = false;
                    while ii < insts.len() {
                        let charge = charge_at(bi, ii);
                        // Peephole: scaled-index addressing — an int op
                        // computing the offset of the next gep, whose
                        // result is the next load's address.
                        if let Inst::IntOp { dst: o, op, lhs, rhs } = &insts[ii] {
                            if let Some(Inst::Gep { dst: g, base, off: Operand::Reg(x) }) =
                                insts.get(ii + 1)
                            {
                                if let Some(Inst::Load {
                                    dst,
                                    addr: Operand::Reg(a),
                                    off: loff,
                                }) = insts.get(ii + 2)
                                {
                                    if x == o && a == g {
                                        ops.push(Op {
                                            kind: OpKind::IntOpGepLoad {
                                                idst: o.0,
                                                iop: *op,
                                                ilhs: pool.slot(*lhs),
                                                irhs: pool.slot(*rhs),
                                                gdst: g.0,
                                                base: pool.slot(*base),
                                                ldst: dst.0,
                                                loff: *loff,
                                                lcharge: charge_at(bi, ii + 2),
                                            },
                                            charge,
                                        });
                                        ii += 3;
                                        continue;
                                    }
                                }
                            }
                        }
                        // Peephole: gep feeding the immediately following
                        // load's address register.
                        if let Inst::Gep { dst: g, base, off } = &insts[ii] {
                            if let Some(Inst::Load { dst, addr: Operand::Reg(a), off: loff }) =
                                insts.get(ii + 1)
                            {
                                if a == g {
                                    ops.push(Op {
                                        kind: OpKind::GepLoad {
                                            gdst: g.0,
                                            base: pool.slot(*base),
                                            off: pool.slot(*off),
                                            ldst: dst.0,
                                            loff: *loff,
                                            charge2: charge_at(bi, ii + 1),
                                        },
                                        charge,
                                    });
                                    ii += 2;
                                    continue;
                                }
                            }
                        }
                        // Peephole: the last two instructions plus the
                        // terminator in one dispatch — checked before the
                        // generic pair fusions so the loop-latch shapes
                        // (`store; i += 1; br` and `i += k; j += 1; br`)
                        // keep their branch instead of degrading to a
                        // pair plus a bare Jump.
                        if ii + 2 == insts.len() {
                            let fused = match (&insts[ii], &insts[ii + 1], &block.term) {
                                (
                                    Inst::IntOp { dst: ad, op: aop, lhs: al, rhs: ar },
                                    Inst::IntOp { dst: bd, op: bop, lhs: bl, rhs: br2 },
                                    Term::Br(t),
                                ) => Some(OpKind::IntOp2Jump {
                                    a_dst: ad.0,
                                    a_op: *aop,
                                    a_lhs: pool.slot(*al),
                                    a_rhs: pool.slot(*ar),
                                    b_dst: bd.0,
                                    b_op: *bop,
                                    b_lhs: pool.slot(*bl),
                                    b_rhs: pool.slot(*br2),
                                    target: t.0,
                                }),
                                (
                                    Inst::Store { addr, off, value },
                                    Inst::IntOp { dst, op, lhs, rhs },
                                    Term::Br(t),
                                ) => Some(OpKind::StoreIntOpJump {
                                    addr: pool.slot(*addr),
                                    off: *off,
                                    value: pool.slot(*value),
                                    dst: dst.0,
                                    op: *op,
                                    lhs: pool.slot(*lhs),
                                    rhs: pool.slot(*rhs),
                                    target: t.0,
                                }),
                                _ => None,
                            };
                            if let Some(kind) = fused {
                                ops.push(Op { kind, charge });
                                ii += 2;
                                term_fused = true;
                                continue;
                            }
                        }
                        // Peephole: two adjacent integer ops in one
                        // dispatch. Greedy pairing never loses against the
                        // other fusions: any alternative grouping of the
                        // same window yields the same dispatch count.
                        if let Inst::IntOp { dst: ad, op: aop, lhs: al, rhs: ar } = &insts[ii] {
                            if let Some(Inst::IntOp { dst: bd, op: bop, lhs: bl, rhs: br }) =
                                insts.get(ii + 1)
                            {
                                ops.push(Op {
                                    kind: OpKind::IntOp2 {
                                        a_dst: ad.0,
                                        a_op: *aop,
                                        a_lhs: pool.slot(*al),
                                        a_rhs: pool.slot(*ar),
                                        b_dst: bd.0,
                                        b_op: *bop,
                                        b_lhs: pool.slot(*bl),
                                        b_rhs: pool.slot(*br),
                                    },
                                    charge,
                                });
                                ii += 2;
                                continue;
                            }
                        }
                        // Peephole: block-final instruction folded into the
                        // block's own terminator.
                        if ii + 1 == insts.len() {
                            let fused = match (&insts[ii], &block.term) {
                                (Inst::IntOp { dst, op, lhs, rhs }, Term::Br(t)) => {
                                    Some(OpKind::IntOpJump {
                                        dst: dst.0,
                                        op: *op,
                                        lhs: pool.slot(*lhs),
                                        rhs: pool.slot(*rhs),
                                        target: t.0,
                                    })
                                }
                                (
                                    Inst::CmpInt { dst, op, lhs, rhs },
                                    Term::CondBr { cond: Operand::Reg(c), then_bb, else_bb },
                                ) if c == dst => Some(OpKind::CmpBr {
                                    dst: dst.0,
                                    op: *op,
                                    lhs: pool.slot(*lhs),
                                    rhs: pool.slot(*rhs),
                                    then_pc: then_bb.0,
                                    else_pc: else_bb.0,
                                }),
                                _ => None,
                            };
                            if let Some(kind) = fused {
                                ops.push(Op { kind, charge });
                                ii += 1;
                                term_fused = true;
                                continue;
                            }
                        }
                        ops.push(Op {
                            kind: decode_inst(&insts[ii], &index, &mut pool, &mut call_args),
                            charge,
                        });
                        ii += 1;
                    }
                    if !term_fused {
                        let kind = match &block.term {
                            Term::Br(t) => OpKind::Jump { target: t.0 },
                            Term::CondBr { cond, then_bb, else_bb } => OpKind::Branch {
                                cond: pool.slot(*cond),
                                then_pc: then_bb.0,
                                else_pc: else_bb.0,
                            },
                            Term::Ret(v) => OpKind::Ret { value: v.map(|op| pool.slot(op)) },
                        };
                        ops.push(Op { kind, charge: Charge::default() });
                    }
                }
                // Charge conservation: the executor accounts `op.charge`
                // only on site-capable arms (and `charge2`/`lcharge` on
                // the gep+load fusions). Every other slot — including the
                // int-op/gep/cmp halves buried inside fusions — must be
                // chargeless. Holds because analysis only emits decisions
                // for load/store/pointer kinds.
                debug_assert!(ops.iter().all(|op| match op.kind {
                    OpKind::Load { .. }
                    | OpKind::LoadPtr { .. }
                    | OpKind::Store { .. }
                    | OpKind::StorePtr { .. }
                    | OpKind::PtrToInt { .. }
                    | OpKind::CmpPtr { .. }
                    | OpKind::PtrDiff { .. }
                    | OpKind::Free { .. }
                    | OpKind::StoreIntOpJump { .. } => true,
                    _ => op.charge == Charge::default(),
                }));
                // Fixup: block ids → flat op indices.
                for op in &mut ops {
                    match &mut op.kind {
                        OpKind::Jump { target }
                        | OpKind::IntOpJump { target, .. }
                        | OpKind::IntOp2Jump { target, .. }
                        | OpKind::StoreIntOpJump { target, .. } => {
                            *target = block_entry[*target as usize];
                        }
                        OpKind::Branch { then_pc, else_pc, .. }
                        | OpKind::CmpBr { then_pc, else_pc, .. } => {
                            *then_pc = block_entry[*then_pc as usize];
                            *else_pc = block_entry[*else_pc as usize];
                        }
                        _ => {}
                    }
                }
                DecodedFn {
                    name: name.clone(),
                    params: f.params,
                    regs: f.regs + pool.vals.len() as u32,
                    consts: pool.vals,
                    ops,
                    call_args,
                }
            })
            .collect();
        DecodedModule { fns, index }
    }

    /// Dense index of a function, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).map(|i| *i as usize)
    }

    /// Total flat ops across all functions (instructions + terminators).
    pub fn total_ops(&self) -> usize {
        self.fns.iter().map(DecodedFn::op_count).sum()
    }

    /// Number of decoded functions.
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }
}

fn decode_inst(
    inst: &Inst,
    index: &BTreeMap<String, u32>,
    pool: &mut ConstPool,
    call_args: &mut Vec<u32>,
) -> OpKind {
    match inst {
        // `dst = imm` decodes to a copy from the interned constant slot —
        // the dedicated ConstInt op disappears entirely.
        Inst::ConstInt { dst, value } => {
            OpKind::Copy { dst: dst.0, src: pool.int(*value) }
        }
        Inst::Malloc { dst, size } => OpKind::Malloc { dst: dst.0, size: pool.slot(*size) },
        Inst::Pmalloc { dst, size } => OpKind::Pmalloc { dst: dst.0, size: pool.slot(*size) },
        Inst::Free { ptr } => OpKind::Free { ptr: pool.slot(*ptr) },
        Inst::Load { dst, addr, off } => {
            OpKind::Load { dst: dst.0, addr: pool.slot(*addr), off: *off }
        }
        Inst::Store { addr, off, value } => {
            OpKind::Store { addr: pool.slot(*addr), off: *off, value: pool.slot(*value) }
        }
        Inst::LoadPtr { dst, addr, off } => {
            OpKind::LoadPtr { dst: dst.0, addr: pool.slot(*addr), off: *off }
        }
        Inst::StorePtr { addr, off, value } => {
            OpKind::StorePtr { addr: pool.slot(*addr), off: *off, value: pool.slot(*value) }
        }
        Inst::Gep { dst, base, off } => {
            OpKind::Gep { dst: dst.0, base: pool.slot(*base), off: pool.slot(*off) }
        }
        Inst::IntOp { dst, op, lhs, rhs } => {
            OpKind::IntOp { dst: dst.0, op: *op, lhs: pool.slot(*lhs), rhs: pool.slot(*rhs) }
        }
        Inst::PtrToInt { dst, src } => OpKind::PtrToInt { dst: dst.0, src: pool.slot(*src) },
        Inst::IntToPtr { dst, src } => OpKind::IntToPtr { dst: dst.0, src: pool.slot(*src) },
        Inst::PtrDiff { dst, lhs, rhs } => {
            OpKind::PtrDiff { dst: dst.0, lhs: pool.slot(*lhs), rhs: pool.slot(*rhs) }
        }
        Inst::CmpPtr { dst, op, lhs, rhs } => {
            OpKind::CmpPtr { dst: dst.0, op: *op, lhs: pool.slot(*lhs), rhs: pool.slot(*rhs) }
        }
        Inst::CmpInt { dst, op, lhs, rhs } => {
            OpKind::CmpInt { dst: dst.0, op: *op, lhs: pool.slot(*lhs), rhs: pool.slot(*rhs) }
        }
        Inst::Copy { dst, src } => OpKind::Copy { dst: dst.0, src: pool.slot(*src) },
        Inst::Call { dst, callee, args } => {
            let args_start = call_args.len() as u32;
            call_args.extend(args.iter().map(|a| pool.slot(*a)));
            OpKind::Call {
                dst: dst.map(|d| d.0),
                callee: *index.get(callee).expect("verified module: callee exists"),
                args_start,
                args_len: args.len() as u32,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_module;

    #[test]
    fn kernels_decode_flat_and_dense() {
        let m = crate::kernels::module();
        let report = analyze_module(&m);
        let d = DecodedModule::new(&m, &report);
        assert_eq!(d.fn_count(), m.functions.len());
        for (name, f) in &m.functions {
            let fi = d.index_of(name).unwrap();
            // Fusion only ever shrinks the op array, and never below one
            // op per block; the constant pool extends (never shrinks) the
            // register file.
            let unfused: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
            assert!(d.fns[fi].ops.len() <= unfused, "{name}");
            assert!(d.fns[fi].ops.len() >= f.blocks.len(), "{name}");
            assert_eq!(
                d.fns[fi].regs,
                f.regs + d.fns[fi].consts.len() as u32,
                "{name}"
            );
        }
        // Every site charge in the report appears exactly once in the ops
        // (fused ops carry the second instruction's charge in `charge2`).
        let report_sites: usize =
            report.functions.values().map(|f| f.decisions.len()).sum();
        let op_sites: usize = d
            .fns
            .iter()
            .flat_map(|f| f.ops.iter())
            .map(|o| {
                let extra = match o.kind {
                    OpKind::GepLoad { charge2, .. } => {
                        usize::from(charge2.max_checks != 0)
                    }
                    OpKind::IntOpGepLoad { lcharge, .. } => {
                        usize::from(lcharge.max_checks != 0)
                    }
                    _ => 0,
                };
                usize::from(o.charge.max_checks != 0) + extra
            })
            .sum();
        assert_eq!(report_sites, op_sites);
    }

    #[test]
    fn fusion_emits_superinstructions_for_loop_shapes() {
        use crate::ir::FnBuilder;
        // A counted loop whose body exercises every fusion shape: the
        // header fuses to CmpBr, scaled-index addressing to IntOpGepLoad,
        // a bare address+load pair to GepLoad, adjacent int ops to
        // IntOp2, and the block-final latch increment to IntOpJump.
        let mut b = FnBuilder::new("loop", 2);
        let (p, n) = (b.param(0), b.param(1));
        let (i, acc) = (b.fresh(), b.fresh());
        let check = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        b.br(check);
        b.switch_to(check);
        let c = b.fresh();
        b.cmp_int(c, CmpOp::Lt, Operand::Reg(i), Operand::Reg(n));
        b.cond_br(Operand::Reg(c), body, done);
        b.switch_to(body);
        let off = b.fresh();
        b.int_op(off, IntOp::Mul, Operand::Reg(i), Operand::Imm(8));
        let q = b.fresh();
        b.gep(q, Operand::Reg(p), Operand::Reg(off));
        let v = b.fresh();
        b.load(v, Operand::Reg(q), 0);
        let q2 = b.fresh();
        b.gep(q2, Operand::Reg(p), Operand::Reg(i));
        let v2 = b.fresh();
        b.load(v2, Operand::Reg(q2), 0);
        b.int_add(acc, Operand::Reg(acc), Operand::Reg(v));
        b.int_add(acc, Operand::Reg(acc), Operand::Reg(v2));
        b.int_add(i, Operand::Reg(i), Operand::Imm(8));
        b.br(check);
        b.switch_to(done);
        b.ret(Some(Operand::Reg(acc)));
        let mut m = Module::new();
        m.add(b.finish());
        m.verify().unwrap();
        let d = DecodedModule::new(&m, &analyze_module(&m));
        let kinds: Vec<&'static str> = d.fns[0]
            .ops
            .iter()
            .map(|o| match o.kind {
                OpKind::GepLoad { .. } => "gepload",
                OpKind::IntOpGepLoad { .. } => "intopgepload",
                OpKind::IntOp2 { .. } => "intop2",
                OpKind::CmpBr { .. } => "cmpbr",
                OpKind::IntOpJump { .. } => "intopjump",
                _ => "other",
            })
            .collect();
        for want in ["gepload", "intopgepload", "intop2", "cmpbr", "intopjump"] {
            assert!(kinds.contains(&want), "missing {want}: {kinds:?}");
        }
    }

    #[test]
    fn constant_pool_interns_and_dedups() {
        use crate::ir::FnBuilder;
        let mut b = FnBuilder::new("c", 0);
        let r = b.fresh();
        b.const_int(r, 5);
        let s = b.fresh();
        b.int_op(s, IntOp::Add, Operand::Reg(r), Operand::Imm(5));
        b.int_op(s, IntOp::Add, Operand::Reg(s), Operand::Imm(5));
        b.int_op(s, IntOp::Add, Operand::Reg(s), Operand::Imm(9));
        b.ret(Some(Operand::Reg(s)));
        let mut m = Module::new();
        m.add(b.finish());
        m.verify().unwrap();
        let d = DecodedModule::new(&m, &analyze_module(&m));
        // 5 is interned once (shared by const_int and both immediates), 9
        // once: two constant slots on top of the two registers.
        assert_eq!(d.fns[0].consts, vec![Val::Int(5), Val::Int(9)]);
        assert_eq!(d.fns[0].regs, 4);
    }
}
