//! Scalar passes over the IR — including the one the paper warns about.
//!
//! §VI of the paper discusses pass ordering: the user-transparent-reference
//! code generation must run *after* all scalar optimizations. If a value-
//! numbering pass ran afterwards instead, it would merge the `ra2va(p)`
//! conversions the checks introduced; should the pool detach between the
//! two original uses, the merged code silently reuses a stale virtual
//! address while the unmerged code faults (paper Fig. 10).
//!
//! This module implements exactly that hazard as executable artifacts:
//!
//! - [`count_redundant_conversions`] — a block-local value-numbering
//!   analysis that finds `PtrToInt` (and, analogously, conversion) results
//!   that a post-pass VN would merge;
//! - [`redundant_conversion_elimination`] — the (unsound-by-design) pass
//!   that performs the merge, used by tests to demonstrate the Fig. 10
//!   semantic difference.

use crate::ir::{Function, Inst, Module, Operand, Reg};
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---- call-graph utilities (interprocedural inference support) ------------

/// Direct callees per function.
pub fn call_graph(m: &Module) -> BTreeMap<&str, BTreeSet<&str>> {
    let mut g: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (name, f) in &m.functions {
        let callees = g.entry(name.as_str()).or_default();
        for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Call { callee, .. } = inst {
                    callees.insert(callee.as_str());
                }
            }
        }
    }
    g
}

/// Functions no module function calls — the open-world entry points that
/// must assume unknown (`Top`) parameter facts under interprocedural
/// inference.
pub fn call_graph_roots(m: &Module) -> Vec<&str> {
    let g = call_graph(m);
    let called: BTreeSet<&str> = g.values().flatten().copied().collect();
    m.functions.keys().map(String::as_str).filter(|n| !called.contains(n)).collect()
}

/// Functions in bottom-up (callees-first) order: a DFS postorder of the
/// call graph from every root. Members of a recursive cycle appear in
/// discovery order; the interprocedural fixpoint re-iterates until their
/// summaries stabilize, so the order only affects convergence speed.
pub fn bottom_up_order(m: &Module) -> Vec<&str> {
    let g = call_graph(m);
    let mut order: Vec<&str> = Vec::with_capacity(m.functions.len());
    let mut done: BTreeSet<&str> = BTreeSet::new();
    // Iterative DFS; `(name, child_cursor)` frames avoid recursion depth
    // limits on deep call chains.
    for start in m.functions.keys() {
        let start = start.as_str();
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>, usize)> = Vec::new();
        let mut on_stack: BTreeSet<&str> = BTreeSet::new();
        let children: Vec<&str> = g.get(start).map(|s| s.iter().copied().collect()).unwrap_or_default();
        stack.push((start, children, 0));
        on_stack.insert(start);
        while let Some((name, children, cursor)) = stack.last_mut() {
            if let Some(&child) = children.get(*cursor) {
                *cursor += 1;
                if !done.contains(child) && !on_stack.contains(child) {
                    let gkids: Vec<&str> =
                        g.get(child).map(|s| s.iter().copied().collect()).unwrap_or_default();
                    on_stack.insert(child);
                    stack.push((child, gkids, 0));
                }
            } else {
                let name = *name;
                stack.pop();
                on_stack.remove(name);
                if done.insert(name) {
                    order.push(name);
                }
            }
        }
    }
    order
}

/// A block-local value-numbering key for conversion-like instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum VnKey {
    /// `(intptr_t)reg` — the canonical conversion the checks insert.
    PtrToInt(Reg),
}

/// Counts the conversion instructions a block-local value-numbering pass
/// would consider redundant (same operand, same block, no intervening
/// redefinition of the operand).
pub fn count_redundant_conversions(f: &Function) -> usize {
    let mut redundant = 0;
    for block in &f.blocks {
        let mut seen: HashMap<VnKey, Reg> = HashMap::new();
        for inst in &block.insts {
            // A redefinition invalidates entries keyed on (or caching) the
            // overwritten register — before the instruction's own effect.
            if let Some(d) = inst.dst() {
                seen.retain(|k, v| {
                    let VnKey::PtrToInt(r) = k;
                    *r != d && *v != d
                });
            }
            if let Inst::PtrToInt { src: Operand::Reg(r), .. } = inst {
                let key = VnKey::PtrToInt(*r);
                if seen.contains_key(&key) {
                    redundant += 1;
                } else if let Some(d) = inst.dst() {
                    seen.insert(key, d);
                }
            }
        }
    }
    redundant
}

/// Block-local redundant-conversion elimination: replaces later
/// `dst = (intptr_t)p` with `dst = copy first_result` when `p` has not been
/// redefined. **Deliberately unsound under pool detach** — it reuses the
/// first conversion's result even if the pool mapping changed in between.
/// Exists to demonstrate the paper's §VI ordering requirement; never run it
/// after check insertion in real pipelines.
pub fn redundant_conversion_elimination(f: &mut Function) -> usize {
    let mut rewritten = 0;
    for block in &mut f.blocks {
        let mut seen: HashMap<VnKey, Reg> = HashMap::new();
        for inst in &mut block.insts {
            if let Some(d) = inst.dst() {
                seen.retain(|k, v| {
                    let VnKey::PtrToInt(r) = k;
                    *r != d && *v != d
                });
            }
            let mut replace_with: Option<(Reg, Reg)> = None;
            if let Inst::PtrToInt { dst, src: Operand::Reg(r) } = inst {
                let key = VnKey::PtrToInt(*r);
                if let Some(prev) = seen.get(&key) {
                    replace_with = Some((*dst, *prev));
                } else {
                    seen.insert(key, *dst);
                }
            }
            if let Some((dst, prev)) = replace_with {
                *inst = Inst::Copy { dst, src: Operand::Reg(prev) };
                rewritten += 1;
            }
        }
    }
    rewritten
}

/// Runs the elimination over every function, returning total rewrites.
pub fn run_vn_over_module(m: &mut Module) -> usize {
    m.functions.values_mut().map(redundant_conversion_elimination).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, InterpError, Val};
    use crate::ir::{FnBuilder, Module, Operand as Op};
    use utpr_heap::{AddressSpace, HeapError};
    use utpr_ptr::UPtr;

    /// Builds `fig10(p)`: two uses of `(intptr_t)p` around a call to
    /// `detach_marker` (modelled here by the host detaching between runs).
    fn double_use_fn() -> crate::ir::Function {
        let mut b = FnBuilder::new("double_use", 1);
        let p = b.param(0);
        let i1 = b.fresh();
        b.ptr_to_int(i1, Op::Reg(p));
        let i2 = b.fresh();
        b.ptr_to_int(i2, Op::Reg(p));
        let d = b.fresh();
        b.int_op(d, crate::ir::IntOp::Sub, Op::Reg(i1), Op::Reg(i2));
        b.ret(Some(Op::Reg(d)));
        b.finish()
    }

    #[test]
    fn vn_finds_and_merges_the_redundant_conversion() {
        let f = double_use_fn();
        assert_eq!(count_redundant_conversions(&f), 1);
        let mut f2 = f.clone();
        assert_eq!(redundant_conversion_elimination(&mut f2), 1);
        assert_eq!(count_redundant_conversions(&f2), 0);
    }

    #[test]
    fn redefinition_blocks_merging() {
        let mut b = FnBuilder::new("redef", 1);
        let p = b.param(0);
        let i1 = b.fresh();
        b.ptr_to_int(i1, Op::Reg(p));
        // p is redefined between the conversions.
        b.copy(p, Op::Null);
        let i2 = b.fresh();
        b.ptr_to_int(i2, Op::Reg(p));
        b.ret(Some(Op::Reg(i2)));
        let f = b.finish();
        assert_eq!(count_redundant_conversions(&f), 0);
    }

    /// The Fig. 10 scenario end-to-end: with checks (no VN) the second use
    /// faults after a detach; with VN applied the program silently returns
    /// a stale result. Detach happens *between* two interpreter runs, each
    /// performing one conversion — modelling the two dynamic uses.
    #[test]
    fn fig10_detach_semantics_differ_under_vn() {
        // One conversion per run; detach between runs.
        let mut b = FnBuilder::new("one_use", 1);
        let i1 = b.fresh();
        b.ptr_to_int(i1, Op::Reg(b.param(0)));
        b.ret(Some(Op::Reg(i1)));
        let mut m = Module::new();
        m.add(b.finish());

        let mut space = AddressSpace::new(8);
        let pool = space.create_pool("fig10", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 32).unwrap();
        let rel = UPtr::from_rel(loc);

        // First use: converts fine.
        let va1 = {
            let mut i = Interp::new(&mut space, pool, &m);
            match i.run("one_use", vec![Val::Ptr(rel)]).unwrap() {
                Some(Val::Int(v)) => v,
                other => panic!("unexpected {other:?}"),
            }
        };

        space.detach(pool).unwrap();

        // Checked code: the second conversion faults — the sound outcome.
        {
            let mut i = Interp::new(&mut space, pool, &m);
            let err = i.run("one_use", vec![Val::Ptr(rel)]);
            assert!(
                matches!(err, Err(InterpError::Heap(HeapError::PoolDetached(_)))),
                "expected detach fault, got {err:?}"
            );
        }

        // Value-numbered code would have reused va1: demonstrate that the
        // cached address is indeed stale — it resolves to nothing now.
        assert!(space.va2ra(utpr_heap::VirtAddr::new(va1 as u64)).is_err());

        // And within a single run, the VN pass really removes the second
        // conversion: conversion counts drop.
        let mut m2 = Module::new();
        m2.add(double_use_fn());
        space.attach(pool).unwrap();
        let before = {
            let mut i = Interp::new(&mut space, pool, &m2);
            i.run("double_use", vec![Val::Ptr(rel)]).unwrap();
            i.stats().rel_to_abs
        };
        run_vn_over_module(&mut m2);
        let after = {
            let mut i = Interp::new(&mut space, pool, &m2);
            i.run("double_use", vec![Val::Ptr(rel)]).unwrap();
            i.stats().rel_to_abs
        };
        assert_eq!(before, 2);
        assert_eq!(after, 1, "VN merged one conversion");
    }

    #[test]
    fn call_graph_order_and_roots_on_kernels() {
        let m = crate::kernels::module();
        let roots = call_graph_roots(&m);
        // Drivers call into the kernels, so the kernels are not roots.
        assert!(roots.contains(&"list_build_and_sum"));
        assert!(!roots.contains(&"list_push"));
        assert!(!roots.contains(&"list_sum"));
        // Bottom-up: callees precede their callers.
        let order = bottom_up_order(&m);
        assert_eq!(order.len(), m.functions.len());
        let pos = |n: &str| order.iter().position(|x| *x == n).unwrap();
        assert!(pos("list_push") < pos("list_build_and_sum"));
        assert!(pos("list_sum") < pos("list_build_and_sum"));
    }

    #[test]
    fn kernels_contain_no_block_local_redundancy() {
        // The kernel suite converts on demand, so a block-local VN finds
        // nothing to merge — matching the paper's observation that trivial
        // VN opportunities exist only in generated check code.
        let m = crate::kernels::module();
        for f in m.functions.values() {
            assert_eq!(count_redundant_conversions(f), 0, "{}", f.name);
        }
    }
}
