//! IR interpreter: executes a module against the simulated heap with the
//! Fig. 4 semantics, counting the dynamic checks the compiled SW version
//! would execute.
//!
//! This is the functional reference for the compiler path: tests run the
//! same kernels natively (plain Rust) and through the interpreter and
//! compare results, the analogue of the paper's LLVM test-suite validation.

use crate::analysis::{analyze_module, analyze_module_with, InferOptions, InferenceReport, SiteKey};
use crate::decode::{DecodedFn, DecodedModule, OpKind};
use crate::ir::{BlockId, Function, Inst, IntOp, Module, Operand, Term};
use std::collections::BTreeMap;
use std::fmt;
use utpr_heap::{AddressSpace, HeapError, PoolId};
use utpr_ptr::{PtrSpace, UPtr};

/// A runtime value: the IR is dynamically typed between integers and
/// pointers, like C through casts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Val {
    /// An integer.
    Int(i64),
    /// A pointer in either format.
    Ptr(UPtr),
}

impl Val {
    /// Truthiness for conditional branches.
    pub fn is_true(self) -> bool {
        match self {
            Val::Int(i) => i != 0,
            Val::Ptr(p) => !p.is_null(),
        }
    }
}

/// Interpreter failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// A heap/translation fault.
    Heap(HeapError),
    /// An operand had the wrong dynamic type.
    Type(&'static str),
    /// The fuel budget was exhausted (runaway loop or recursion).
    OutOfFuel,
    /// Unknown function.
    NoFunction(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Heap(e) => write!(f, "heap fault: {e}"),
            InterpError::Type(what) => write!(f, "type error: {what}"),
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::NoFunction(n) => write!(f, "no function named {n:?}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<HeapError> for InterpError {
    fn from(e: HeapError) -> Self {
        InterpError::Heap(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, InterpError>;

/// Execution counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions executed.
    pub insts: u64,
    /// Pointer-operation sites executed.
    pub executed_ptr_ops: u64,
    /// Dynamic checks executed (post-inference).
    pub executed_checks: u64,
    /// Dynamic checks a no-inference compiler would have executed.
    pub max_checks: u64,
    /// Relative→virtual conversions performed.
    pub rel_to_abs: u64,
    /// Virtual→relative conversions performed.
    pub abs_to_rel: u64,
}

impl InterpStats {
    /// Fraction of executed checks surviving inference — the paper reports
    /// ≈ 42 % on its benchmarks.
    pub fn dynamic_check_fraction(&self) -> f64 {
        if self.max_checks == 0 {
            0.0
        } else {
            self.executed_checks as f64 / self.max_checks as f64
        }
    }
}

/// Per-function dynamic check counters: charges accumulated at sites
/// lexically inside the function (callee charges are attributed to the
/// callee). Both execution paths maintain these identically.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FnChecks {
    /// Pointer-operation sites executed.
    pub ptr_ops: u64,
    /// Dynamic checks executed (post-inference).
    pub executed_checks: u64,
    /// Checks a no-inference compiler would have executed.
    pub max_checks: u64,
}

impl FnChecks {
    /// Fraction of this function's executed checks surviving inference.
    pub fn residual_fraction(&self) -> f64 {
        if self.max_checks == 0 {
            0.0
        } else {
            self.executed_checks as f64 / self.max_checks as f64
        }
    }

    #[inline]
    fn absorb(&mut self, other: FnChecks) {
        self.ptr_ops += other.ptr_ops;
        self.executed_checks += other.executed_checks;
        self.max_checks += other.max_checks;
    }
}

// Error constructors for the hot loops: keeping construction out of line
// lets the dispatch loop stay branch-dense on the common path.
#[cold]
#[inline(never)]
fn out_of_fuel() -> InterpError {
    InterpError::OutOfFuel
}

#[cold]
#[inline(never)]
fn void_call() -> InterpError {
    InterpError::Type("void call used as value")
}

/// The interpreter: owns nothing, runs against a borrowed heap.
///
/// # Examples
///
/// ```
/// use utpr_cc::ir::{FnBuilder, Module, Operand};
/// use utpr_cc::interp::{Interp, Val};
/// use utpr_heap::AddressSpace;
///
/// let mut b = FnBuilder::new("store42", 0);
/// let p = b.fresh();
/// b.pmalloc(p, Operand::Imm(16));
/// b.store(Operand::Reg(p), 0, Operand::Imm(42));
/// let v = b.fresh();
/// b.load(v, Operand::Reg(p), 0);
/// b.ret(Some(Operand::Reg(v)));
/// let mut m = Module::new();
/// m.add(b.finish());
///
/// let mut space = AddressSpace::new(5);
/// let pool = space.create_pool("p", 1 << 20)?;
/// let mut interp = Interp::new(&mut space, pool, &m);
/// assert_eq!(interp.run("store42", vec![])?, Some(Val::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interp<'a> {
    space: &'a mut AddressSpace,
    pool: PoolId,
    module: &'a Module,
    report: InferenceReport,
    stats: InterpStats,
    fuel: u64,
    /// Dense function index in module (sorted) order — shared with
    /// [`DecodedModule`] so both paths attribute per-function checks to
    /// the same slots.
    fn_index: BTreeMap<String, u32>,
    fn_checks: Vec<FnChecks>,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter with a default fuel budget of 10 million
    /// instructions; persistent allocations go to `pool`.
    pub fn new(space: &'a mut AddressSpace, pool: PoolId, module: &'a Module) -> Self {
        let report = analyze_module(module);
        let fn_index: BTreeMap<String, u32> =
            module.functions.keys().enumerate().map(|(i, n)| (n.clone(), i as u32)).collect();
        let fn_checks = vec![FnChecks::default(); fn_index.len()];
        Interp {
            space,
            pool,
            module,
            report,
            stats: InterpStats::default(),
            fuel: 10_000_000,
            fn_index,
            fn_checks,
        }
    }

    /// Overrides the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Re-runs the inference with explicit options (e.g.
    /// [`InferOptions::inter`]) and charges checks against that report.
    pub fn with_inference(mut self, opts: &InferOptions) -> Self {
        self.report = analyze_module_with(self.module, opts);
        self
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Fuel remaining.
    pub fn fuel_left(&self) -> u64 {
        self.fuel
    }

    /// The inference report the interpreter charges checks against.
    pub fn report(&self) -> &InferenceReport {
        &self.report
    }

    /// Per-function dynamic check counters accumulated so far, keyed by
    /// function name.
    pub fn per_function_checks(&self) -> BTreeMap<&str, FnChecks> {
        self.fn_index
            .iter()
            .map(|(name, &i)| (name.as_str(), self.fn_checks[i as usize]))
            .collect()
    }

    /// Decodes the module against this interpreter's inference report, for
    /// [`Interp::run_decoded`].
    pub fn decode(&self) -> DecodedModule {
        DecodedModule::new(self.module, &self.report)
    }

    /// Runs a function with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns faults, type errors, fuel exhaustion, or unknown-function
    /// errors.
    pub fn run(&mut self, name: &str, args: Vec<Val>) -> Result<Option<Val>> {
        let module = self.module;
        let f = module
            .functions
            .get(name)
            .ok_or_else(|| InterpError::NoFunction(name.to_string()))?;
        if args.len() as u32 != f.params {
            return Err(InterpError::Type("argument count mismatch"));
        }
        let fi = self.fn_index[name] as usize;
        let mut frame = FnChecks::default();
        let out = self.run_frame(f, name, args, &mut frame);
        self.fn_checks[fi].absorb(frame);
        out
    }

    fn run_frame(
        &mut self,
        f: &Function,
        name: &str,
        args: Vec<Val>,
        frame: &mut FnChecks,
    ) -> Result<Option<Val>> {
        let mut regs: Vec<Val> = vec![Val::Int(0); f.regs as usize];
        regs[..args.len()].copy_from_slice(&args);

        let decisions = self.report.functions[name].decisions.clone();
        let mut bb = BlockId(0);
        loop {
            let block = &f.blocks[bb.0 as usize];
            for (ii, inst) in block.insts.iter().enumerate() {
                if self.fuel == 0 {
                    return Err(out_of_fuel());
                }
                self.fuel -= 1;
                self.stats.insts += 1;
                if let Some(d) = decisions.get(&SiteKey { block: bb, index: ii }) {
                    self.stats.executed_ptr_ops += 1;
                    self.stats.executed_checks += u64::from(d.checks);
                    self.stats.max_checks += u64::from(d.max_checks);
                    frame.ptr_ops += 1;
                    frame.executed_checks += u64::from(d.checks);
                    frame.max_checks += u64::from(d.max_checks);
                }
                self.step(inst, &mut regs)?;
            }
            // Terminators also consume fuel so empty-block loops terminate.
            if self.fuel == 0 {
                return Err(out_of_fuel());
            }
            self.fuel -= 1;
            match &block.term {
                Term::Br(t) => bb = *t,
                Term::CondBr { cond, then_bb, else_bb } => {
                    let c = eval(&regs, *cond);
                    bb = if c.is_true() { *then_bb } else { *else_bb };
                }
                Term::Ret(v) => return Ok(v.map(|op| eval(&regs, op))),
            }
        }
    }

    /// Runs a function through the pre-decoded fast path.
    ///
    /// `dm` must have been decoded against this interpreter's inference
    /// report (see [`Interp::decode`]); results, errors, fuel, and stats
    /// are then identical to [`Interp::run`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Returns faults, type errors, fuel exhaustion, or unknown-function
    /// errors — the same set, and the same values, as [`Interp::run`].
    pub fn run_decoded(
        &mut self,
        dm: &DecodedModule,
        name: &str,
        args: Vec<Val>,
    ) -> Result<Option<Val>> {
        let fi = dm
            .index_of(name)
            .ok_or_else(|| InterpError::NoFunction(name.to_string()))?;
        self.exec_decoded(dm, fi, args)
    }

    fn exec_decoded(&mut self, dm: &DecodedModule, fi: usize, args: Vec<Val>) -> Result<Option<Val>> {
        let df = &dm.fns[fi];
        if args.len() as u32 != df.params {
            return Err(InterpError::Type("argument count mismatch"));
        }
        let n = df.regs as usize;
        let mut frame = FnChecks::default();
        // Register frames live on the stack for typical functions: no
        // per-call allocation on the recursion hot path.
        let out = if n <= STACK_REGS {
            let mut regs = [Val::Int(0); STACK_REGS];
            init_frame(&mut regs[..n], df, &args);
            self.exec_ops(dm, df, &mut regs[..n], &mut frame)
        } else {
            let mut regs = vec![Val::Int(0); n];
            init_frame(&mut regs, df, &args);
            self.exec_ops(dm, df, &mut regs, &mut frame)
        };
        self.fn_checks[fi].absorb(frame);
        out
    }

    /// Resolves a memory operand the way the reference path's `deref`
    /// does, but keeps relative pointers in pool coordinates so the
    /// accessor can skip the VA→RA re-translation inside
    /// `AddressSpace::read_u64`/`write_u64`. The translation probe
    /// (`ra_check`) is still performed for error parity; callers count
    /// `rel_to_abs` on the `Pool` arm — the probe succeeding on a
    /// relative pointer is exactly when the reference path counts it.
    #[inline]
    fn resolve_mem(&self, p: UPtr, off: i64) -> Result<Mem> {
        let q = p.offset(off);
        if let Some(loc) = q.as_rel() {
            self.space.ra_check(loc)?;
            Ok(Mem::Pool(loc))
        } else if q.is_null() {
            Err(InterpError::Heap(HeapError::Unmapped(utpr_heap::VirtAddr::new(0))))
        } else {
            Ok(Mem::Va(q.as_va().expect("non-null, non-rel is va")))
        }
    }

    /// The tight indexed-dispatch loop: one flat op array, `pc` as the only
    /// control state, charges baked into each op, and fuel/counters held in
    /// locals that flush to `self` at every exit (including errors and
    /// around recursive calls), so the loop body touches no `&mut self`
    /// fields on ALU/branch ops.
    fn exec_ops(
        &mut self,
        dm: &DecodedModule,
        df: &DecodedFn,
        regs: &mut [Val],
        frame: &mut FnChecks,
    ) -> Result<Option<Val>> {
        let ops = df.ops.as_slice();
        let mut pc = 0usize;
        let mut fuel = self.fuel;
        let entry_fuel = fuel;
        // The executed-instruction count is *derived*, not tracked: every
        // fuel decrement is an instruction, a terminator, or callee work,
        // so `insts = fuel_spent - terms - callee_fuel` at exit. That
        // identity holds through errors (an op that errors has already
        // been charged its fuel, exactly like the reference path counts
        // it) and keeps the dispatch prologue down to the fuel gate.
        let mut terms = 0u64;
        let mut callee_fuel = 0u64;
        let mut ptr_ops = 0u64;
        let mut echecks = 0u64;
        let mut mchecks = 0u64;
        let mut r2a = 0u64;
        // Loop labels are hygienic across macro boundaries, so the exit
        // label is passed in explicitly.
        macro_rules! t {
            ($l:lifetime, $e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(e) => break $l Err(e.into()),
                }
            };
        }
        // Charge accounting, invoked only from the arms whose instruction
        // kinds the analysis can mark as sites (see `decide`): ALU and
        // branch dispatches carry no charge traffic at all. Decode
        // asserts the complementary invariant — non-site kinds never hold
        // a charge.
        macro_rules! site {
            ($c:expr) => {
                let c = $c;
                if c.max_checks != 0 {
                    ptr_ops += 1;
                    echecks += u64::from(c.checks);
                    mchecks += u64::from(c.max_checks);
                }
            };
        }
        let out: Result<Option<Val>> = 'run: loop {
            // Fuel parity with the reference path: every op — instruction
            // or terminator — checks then decrements; an op that errors
            // has already been charged.
            if fuel == 0 {
                break 'run Err(out_of_fuel());
            }
            fuel -= 1;
            // By reference: the fused variants made `Op` wide enough that
            // copying it per dispatch is measurable; matching through the
            // reference only reads the fields each arm binds.
            //
            // SAFETY: `pc` is always a valid op index. It is only ever 0
            // (ops is non-empty: every function has an entry block and
            // every block emits at least a terminator), a branch target
            // (decode maps these through `block_entry`, all < ops.len()),
            // or `prev + 1` where `prev` was not a terminator — and every
            // block ends in a terminator op that jumps or returns, so
            // sequential flow cannot run off the end. `Module::verify`
            // guarantees the block targets decode starts from.
            debug_assert!(pc < ops.len());
            let op = unsafe { ops.get_unchecked(pc) };
            pc += 1;
            match op.kind {
                OpKind::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
                OpKind::IntOp { dst, op, lhs, rhs } => {
                    let a = t!('run, as_int(regs[lhs as usize]));
                    let b = t!('run, as_int(regs[rhs as usize]));
                    regs[dst as usize] = Val::Int(int_eval(op, a, b));
                }
                OpKind::IntOp2 { a_dst, a_op, a_lhs, a_rhs, b_dst, b_op, b_lhs, b_rhs } => {
                    let a = t!('run, as_int(regs[a_lhs as usize]));
                    let b = t!('run, as_int(regs[a_rhs as usize]));
                    regs[a_dst as usize] = Val::Int(int_eval(a_op, a, b));
                    // Second-op prologue: int ops are never check sites,
                    // so only the fuel gate replays.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    let a = t!('run, as_int(regs[b_lhs as usize]));
                    let b = t!('run, as_int(regs[b_rhs as usize]));
                    regs[b_dst as usize] = Val::Int(int_eval(b_op, a, b));
                }
                OpKind::CmpInt { dst, op, lhs, rhs } => {
                    let a = t!('run, as_int(regs[lhs as usize]));
                    let b = t!('run, as_int(regs[rhs as usize]));
                    regs[dst as usize] = Val::Int(i64::from(op.eval(a, b)));
                }
                OpKind::Jump { target } => {
                    terms += 1;
                    pc = target as usize;
                }
                OpKind::Branch { cond, then_pc, else_pc } => {
                    terms += 1;
                    pc = if regs[cond as usize].is_true() { then_pc } else { else_pc } as usize;
                }
                OpKind::Ret { value } => {
                    terms += 1;
                    break 'run Ok(value.map(|s| regs[s as usize]));
                }
                // Superinstructions: each half replays the per-op prologue
                // (fuel / charge), so accounting and error order are
                // identical to the unfused sequence; `terms` counts every
                // executed terminator half, after its fuel gate, so the
                // derived inst count stays exact on every exit path.
                OpKind::CmpBr { dst, op, lhs, rhs, then_pc, else_pc } => {
                    let a = t!('run, as_int(regs[lhs as usize]));
                    let b = t!('run, as_int(regs[rhs as usize]));
                    let r = op.eval(a, b);
                    regs[dst as usize] = Val::Int(i64::from(r));
                    // Terminator half: consumes fuel, counts nothing.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    terms += 1;
                    pc = if r { then_pc } else { else_pc } as usize;
                }
                OpKind::IntOpJump { dst, op, lhs, rhs, target } => {
                    let a = t!('run, as_int(regs[lhs as usize]));
                    let b = t!('run, as_int(regs[rhs as usize]));
                    regs[dst as usize] = Val::Int(int_eval(op, a, b));
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    terms += 1;
                    pc = target as usize;
                }
                OpKind::IntOp2Jump { a_dst, a_op, a_lhs, a_rhs, b_dst, b_op, b_lhs, b_rhs, target } => {
                    let a = t!('run, as_int(regs[a_lhs as usize]));
                    let b = t!('run, as_int(regs[a_rhs as usize]));
                    regs[a_dst as usize] = Val::Int(int_eval(a_op, a, b));
                    // Second-op prologue: fuel gate only.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    let a = t!('run, as_int(regs[b_lhs as usize]));
                    let b = t!('run, as_int(regs[b_rhs as usize]));
                    regs[b_dst as usize] = Val::Int(int_eval(b_op, a, b));
                    // Terminator half: consumes fuel, counts nothing.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    terms += 1;
                    pc = target as usize;
                }
                OpKind::StoreIntOpJump { addr, off, value, dst, op: iop, lhs, rhs, target } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[addr as usize]));
                    let v = t!('run, as_int(regs[value as usize]));
                    match t!('run, self.resolve_mem(p, off)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            t!('run, self.space.pool_write_u64(loc.pool, loc.offset.into(), v as u64))
                        }
                        Mem::Va(va) => t!('run, self.space.write_u64(va, v as u64)),
                    }
                    // Int-op prologue: fuel gate only.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    let a = t!('run, as_int(regs[lhs as usize]));
                    let b = t!('run, as_int(regs[rhs as usize]));
                    regs[dst as usize] = Val::Int(int_eval(iop, a, b));
                    // Terminator half: consumes fuel, counts nothing.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    terms += 1;
                    pc = target as usize;
                }
                OpKind::IntOpGepLoad { idst, iop, ilhs, irhs, gdst, base, ldst, loff, lcharge } => {
                    let a = t!('run, as_int(regs[ilhs as usize]));
                    let b = t!('run, as_int(regs[irhs as usize]));
                    let r = int_eval(iop, a, b);
                    regs[idst as usize] = Val::Int(r);
                    // Gep half: fuel gate only (geps are never check
                    // sites; decode refuses to fuse otherwise). The gep's
                    // offset operand is the int op's destination register,
                    // so `r` is its value by construction; the base is
                    // re-read from the register file so aliasing with
                    // `idst` errors exactly like the unfused sequence.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    let p = t!('run, as_ptr(regs[base as usize]));
                    let q = p.offset(r);
                    regs[gdst as usize] = Val::Ptr(q);
                    // Load half: fuel gate plus the load's charge.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    site!(lcharge);
                    let v = match t!('run, self.resolve_mem(q, loff)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            t!('run, self.space.pool_read_u64(loc.pool, loc.offset.into()))
                        }
                        Mem::Va(va) => t!('run, self.space.read_u64(va)),
                    };
                    regs[ldst as usize] = Val::Int(v as i64);
                }
                OpKind::GepLoad { gdst, base, off, ldst, loff, charge2 } => {
                    let p = t!('run, as_ptr(regs[base as usize]));
                    let d = t!('run, as_int(regs[off as usize]));
                    let q = p.offset(d);
                    regs[gdst as usize] = Val::Ptr(q);
                    // Load half: fuel gate plus the load's charge.
                    if fuel == 0 {
                        break 'run Err(out_of_fuel());
                    }
                    fuel -= 1;
                    site!(charge2);
                    let v = match t!('run, self.resolve_mem(q, loff)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            t!('run, self.space.pool_read_u64(loc.pool, loc.offset.into()))
                        }
                        Mem::Va(va) => t!('run, self.space.read_u64(va)),
                    };
                    regs[ldst as usize] = Val::Int(v as i64);
                }
                OpKind::Load { dst, addr, off } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[addr as usize]));
                    let v = match t!('run, self.resolve_mem(p, off)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            t!('run, self.space.pool_read_u64(loc.pool, loc.offset.into()))
                        }
                        Mem::Va(va) => t!('run, self.space.read_u64(va)),
                    };
                    regs[dst as usize] = Val::Int(v as i64);
                }
                OpKind::Store { addr, off, value } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[addr as usize]));
                    let v = t!('run, as_int(regs[value as usize]));
                    match t!('run, self.resolve_mem(p, off)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            t!('run, self.space.pool_write_u64(loc.pool, loc.offset.into(), v as u64))
                        }
                        Mem::Va(va) => t!('run, self.space.write_u64(va, v as u64)),
                    }
                }
                OpKind::LoadPtr { dst, addr, off } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[addr as usize]));
                    let raw = match t!('run, self.resolve_mem(p, off)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            t!('run, self.space.pool_read_u64(loc.pool, loc.offset.into()))
                        }
                        Mem::Va(va) => t!('run, self.space.read_u64(va)),
                    };
                    regs[dst as usize] = Val::Ptr(UPtr::from_raw(raw));
                }
                OpKind::StorePtr { addr, off, value } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[addr as usize]));
                    let v = t!('run, as_ptr(regs[value as usize]));
                    match t!('run, self.resolve_mem(p, off)) {
                        Mem::Pool(loc) => {
                            r2a += 1;
                            // Pool VAs are always in the NVM region, so the
                            // destination space is known statically.
                            let stored = t!('run, self.assign_value(PtrSpace::Nvm, v));
                            t!('run, self.space.pool_write_u64(
                                loc.pool,
                                loc.offset.into(),
                                stored.raw()
                            ))
                        }
                        Mem::Va(va) => {
                            let dest =
                                if va.is_nvm_region() { PtrSpace::Nvm } else { PtrSpace::Dram };
                            let stored = t!('run, self.assign_value(dest, v));
                            t!('run, self.space.write_u64(va, stored.raw()))
                        }
                    }
                }
                OpKind::Gep { dst, base, off } => {
                    let p = t!('run, as_ptr(regs[base as usize]));
                    let d = t!('run, as_int(regs[off as usize]));
                    regs[dst as usize] = Val::Ptr(p.offset(d));
                }
                OpKind::Malloc { dst, size } => {
                    let n = t!('run, as_int(regs[size as usize]));
                    let va = t!('run, self.space.malloc(n as u64));
                    regs[dst as usize] = Val::Ptr(UPtr::from_va(va));
                }
                OpKind::Pmalloc { dst, size } => {
                    let n = t!('run, as_int(regs[size as usize]));
                    let loc = t!('run, self.space.pmalloc(self.pool, n as u64));
                    regs[dst as usize] = Val::Ptr(UPtr::from_rel(loc));
                }
                OpKind::Free { ptr } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[ptr as usize]));
                    match p.kind() {
                        utpr_ptr::PtrKind::Null => {}
                        utpr_ptr::PtrKind::Va(va) => {
                            if va.is_nvm_region() {
                                let loc = t!('run, self.space.va2ra(va));
                                self.stats.abs_to_rel += 1;
                                t!('run, self.space.pfree(loc));
                            } else {
                                t!('run, self.space.mfree(va));
                            }
                        }
                        utpr_ptr::PtrKind::Rel(loc) => t!('run, self.space.pfree(loc)),
                    }
                }
                OpKind::PtrToInt { dst, src } => {
                    site!(op.charge);
                    let p = t!('run, as_ptr(regs[src as usize]));
                    let v = t!('run, self.ra2va(p));
                    regs[dst as usize] = Val::Int(v.raw() as i64);
                }
                OpKind::IntToPtr { dst, src } => {
                    let i = t!('run, as_int(regs[src as usize]));
                    regs[dst as usize] = Val::Ptr(UPtr::from_raw(i as u64));
                }
                OpKind::PtrDiff { dst, lhs, rhs } => {
                    site!(op.charge);
                    let a = t!('run, as_ptr(regs[lhs as usize]));
                    let b = t!('run, as_ptr(regs[rhs as usize]));
                    let d = match (a.as_rel(), b.as_rel()) {
                        (Some(_), Some(_)) => a.raw().wrapping_sub(b.raw()) as i64,
                        _ => {
                            let av = t!('run, self.ra2va(a)).raw();
                            let bv = t!('run, self.ra2va(b)).raw();
                            av.wrapping_sub(bv) as i64
                        }
                    };
                    regs[dst as usize] = Val::Int(d);
                }
                OpKind::CmpPtr { dst, op: cop, lhs, rhs } => {
                    site!(op.charge);
                    let a = t!('run, as_ptr(regs[lhs as usize]));
                    let b = t!('run, as_ptr(regs[rhs as usize]));
                    let r = if a.is_null() || b.is_null() {
                        cop.eval(a.raw(), b.raw())
                    } else {
                        let av = t!('run, self.ra2va(a)).raw();
                        let bv = t!('run, self.ra2va(b)).raw();
                        cop.eval(av, bv)
                    };
                    regs[dst as usize] = Val::Int(i64::from(r));
                }
                OpKind::Call { dst, callee, args_start, args_len } => {
                    let srcs =
                        &df.call_args[args_start as usize..(args_start + args_len) as usize];
                    let vals: Vec<Val> = srcs.iter().map(|&s| regs[s as usize]).collect();
                    // The callee runs against `self.fuel`: flush, recurse,
                    // reload. Stats locals are pure deltas, so they merge
                    // correctly at exit without flushing here; the fuel
                    // the callee consumed is excluded from this frame's
                    // derived inst count.
                    self.fuel = fuel;
                    let r = self.exec_decoded(dm, callee as usize, vals);
                    callee_fuel += fuel - self.fuel;
                    fuel = self.fuel;
                    let r = t!('run, r);
                    if let Some(d) = dst {
                        regs[d as usize] = t!('run, r.ok_or_else(void_call));
                    }
                }
            }
        };
        self.fuel = fuel;
        // Fuel decrements not spent on terminators or inside callees were
        // instructions of this frame.
        self.stats.insts += (entry_fuel - fuel) - terms - callee_fuel;
        self.stats.executed_ptr_ops += ptr_ops;
        self.stats.executed_checks += echecks;
        self.stats.max_checks += mchecks;
        self.stats.rel_to_abs += r2a;
        frame.ptr_ops += ptr_ops;
        frame.executed_checks += echecks;
        frame.max_checks += mchecks;
        out
    }

    // Pointer-op entry points: `inline` (not `always`) — they fold into
    // the dispatch arms without bloating the match into icache misses.
    #[inline]
    fn ra2va(&mut self, p: UPtr) -> Result<UPtr> {
        match p.as_rel() {
            Some(loc) => {
                let va = self.space.ra2va(loc)?;
                self.stats.rel_to_abs += 1;
                Ok(UPtr::from_va(va))
            }
            None => Ok(p),
        }
    }

    #[inline]
    fn deref(&mut self, p: UPtr, off: i64) -> Result<utpr_heap::VirtAddr> {
        let q = p.offset(off);
        if q.is_null() {
            return Err(InterpError::Heap(HeapError::Unmapped(utpr_heap::VirtAddr::new(0))));
        }
        let v = self.ra2va(q)?;
        Ok(v.as_va().expect("ra2va yields va"))
    }

    fn step(&mut self, inst: &Inst, regs: &mut [Val]) -> Result<()> {
        match inst {
            Inst::ConstInt { dst, value } => regs[dst.0 as usize] = Val::Int(*value),
            Inst::Malloc { dst, size } => {
                let n = as_int(eval(regs, *size))?;
                let va = self.space.malloc(n as u64)?;
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_va(va));
            }
            Inst::Pmalloc { dst, size } => {
                let n = as_int(eval(regs, *size))?;
                let loc = self.space.pmalloc(self.pool, n as u64)?;
                // pmalloc returns a relative address by definition (§V-B).
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_rel(loc));
            }
            Inst::Free { ptr } => {
                let p = as_ptr(eval(regs, *ptr))?;
                match p.kind() {
                    utpr_ptr::PtrKind::Null => {}
                    utpr_ptr::PtrKind::Va(va) => {
                        if va.is_nvm_region() {
                            let loc = self.space.va2ra(va)?;
                            self.stats.abs_to_rel += 1;
                            self.space.pfree(loc)?;
                        } else {
                            self.space.mfree(va)?;
                        }
                    }
                    utpr_ptr::PtrKind::Rel(loc) => self.space.pfree(loc)?,
                }
            }
            Inst::Load { dst, addr, off } => {
                let p = as_ptr(eval(regs, *addr))?;
                let va = self.deref(p, *off)?;
                regs[dst.0 as usize] = Val::Int(self.space.read_u64(va)? as i64);
            }
            Inst::Store { addr, off, value } => {
                let p = as_ptr(eval(regs, *addr))?;
                let v = as_int(eval(regs, *value))?;
                let va = self.deref(p, *off)?;
                self.space.write_u64(va, v as u64)?;
            }
            Inst::LoadPtr { dst, addr, off } => {
                let p = as_ptr(eval(regs, *addr))?;
                let va = self.deref(p, *off)?;
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_raw(self.space.read_u64(va)?));
            }
            Inst::StorePtr { addr, off, value } => {
                let p = as_ptr(eval(regs, *addr))?;
                let v = as_ptr(eval(regs, *value))?;
                let dva = self.deref(p, *off)?;
                let dest = if dva.is_nvm_region() { PtrSpace::Nvm } else { PtrSpace::Dram };
                let stored = self.assign_value(dest, v)?;
                self.space.write_u64(dva, stored.raw())?;
            }
            Inst::Gep { dst, base, off } => {
                let p = as_ptr(eval(regs, *base))?;
                let d = as_int(eval(regs, *off))?;
                regs[dst.0 as usize] = Val::Ptr(p.offset(d));
            }
            Inst::IntOp { dst, op, lhs, rhs } => {
                let a = as_int(eval(regs, *lhs))?;
                let b = as_int(eval(regs, *rhs))?;
                let r = match op {
                    IntOp::Add => a.wrapping_add(b),
                    IntOp::Sub => a.wrapping_sub(b),
                    IntOp::Mul => a.wrapping_mul(b),
                    IntOp::And => a & b,
                    IntOp::Or => a | b,
                    IntOp::Xor => a ^ b,
                };
                regs[dst.0 as usize] = Val::Int(r);
            }
            Inst::PtrToInt { dst, src } => {
                let p = as_ptr(eval(regs, *src))?;
                let v = self.ra2va(p)?;
                regs[dst.0 as usize] = Val::Int(v.raw() as i64);
            }
            Inst::IntToPtr { dst, src } => {
                let i = as_int(eval(regs, *src))?;
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_raw(i as u64));
            }
            Inst::PtrDiff { dst, lhs, rhs } => {
                let a = as_ptr(eval(regs, *lhs))?;
                let b = as_ptr(eval(regs, *rhs))?;
                let d = match (a.as_rel(), b.as_rel()) {
                    (Some(_), Some(_)) => a.raw().wrapping_sub(b.raw()) as i64,
                    _ => {
                        let av = self.ra2va(a)?.raw();
                        let bv = self.ra2va(b)?.raw();
                        av.wrapping_sub(bv) as i64
                    }
                };
                regs[dst.0 as usize] = Val::Int(d);
            }
            Inst::CmpPtr { dst, op, lhs, rhs } => {
                let a = as_ptr(eval(regs, *lhs))?;
                let b = as_ptr(eval(regs, *rhs))?;
                let r = if a.is_null() || b.is_null() {
                    op.eval(a.raw(), b.raw())
                } else {
                    let av = self.ra2va(a)?.raw();
                    let bv = self.ra2va(b)?.raw();
                    op.eval(av, bv)
                };
                regs[dst.0 as usize] = Val::Int(i64::from(r));
            }
            Inst::CmpInt { dst, op, lhs, rhs } => {
                let a = as_int(eval(regs, *lhs))?;
                let b = as_int(eval(regs, *rhs))?;
                regs[dst.0 as usize] = Val::Int(i64::from(op.eval(a, b)));
            }
            Inst::Copy { dst, src } => regs[dst.0 as usize] = eval(regs, *src),
            Inst::Call { dst, callee, args } => {
                let vals: Vec<Val> = args.iter().map(|a| eval(regs, *a)).collect();
                let r = self.run(callee, vals)?;
                if let Some(d) = dst {
                    regs[d.0 as usize] = r.ok_or(InterpError::Type("void call used as value"))?;
                }
            }
        }
        Ok(())
    }

    fn assign_value(&mut self, dest: PtrSpace, p: UPtr) -> Result<UPtr> {
        if p.is_null() {
            return Ok(p);
        }
        match dest {
            PtrSpace::Nvm => match p.as_va() {
                Some(va) if va.is_nvm_region() => {
                    let loc = self.space.va2ra(va)?;
                    self.stats.abs_to_rel += 1;
                    Ok(UPtr::from_rel(loc))
                }
                _ => Ok(p),
            },
            PtrSpace::Dram => self.ra2va(p),
        }
    }
}

// Operand fetch is the single hottest helper in both dispatch loops;
// `inline(always)` keeps it a register move / bounds-checked load instead
// of a call (measured numbers in DESIGN.md §11).
#[inline(always)]
fn eval(regs: &[Val], op: Operand) -> Val {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(i) => Val::Int(i),
        Operand::Null => Val::Ptr(UPtr::NULL),
    }
}

/// A resolved memory target for the decoded path: either pool coordinates
/// (relative pointer, validated) or a plain virtual address.
enum Mem {
    Pool(utpr_heap::RelLoc),
    Va(utpr_heap::VirtAddr),
}

/// Register-frame size threshold below which frames live on the stack.
const STACK_REGS: usize = 64;

/// Populates a fresh register frame: arguments at the front, the interned
/// constant pool at the tail (decode reserves the last `consts.len()`
/// slots for it).
#[inline]
fn init_frame(regs: &mut [Val], df: &DecodedFn, args: &[Val]) {
    regs[..args.len()].copy_from_slice(args);
    let base = regs.len() - df.consts.len();
    regs[base..].copy_from_slice(&df.consts);
}

#[inline(always)]
fn int_eval(op: IntOp, a: i64, b: i64) -> i64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
    }
}

#[inline(always)]
fn as_int(v: Val) -> Result<i64> {
    match v {
        Val::Int(i) => Ok(i),
        Val::Ptr(_) => Err(InterpError::Type("expected integer, found pointer")),
    }
}

#[inline(always)]
fn as_ptr(v: Val) -> Result<UPtr> {
    match v {
        Val::Ptr(p) => Ok(p),
        // C permits integer constants (e.g. 0) in pointer positions.
        Val::Int(0) => Ok(UPtr::NULL),
        Val::Int(_) => Err(InterpError::Type("expected pointer, found integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, FnBuilder, Module, Operand::*};

    fn with_pool() -> (AddressSpace, PoolId) {
        let mut s = AddressSpace::new(31);
        let p = s.create_pool("interp", 1 << 20).unwrap();
        (s, p)
    }

    #[test]
    fn persistent_linked_pair_round_trips() {
        // a = pmalloc; b = pmalloc; a->next = b; b->val = 7; return a->next->val
        let mut b = FnBuilder::new("pair", 0);
        let ra = b.fresh();
        let rb = b.fresh();
        b.pmalloc(ra, Imm(32));
        b.pmalloc(rb, Imm(32));
        b.store_ptr(Reg(ra), 8, Reg(rb));
        b.store(Reg(rb), 0, Imm(7));
        let rn = b.fresh();
        b.load_ptr(rn, Reg(ra), 8);
        let rv = b.fresh();
        b.load(rv, Reg(rn), 0);
        b.ret(Some(Reg(rv)));
        let mut m = Module::new();
        m.add(b.finish());
        m.verify().unwrap();

        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        assert_eq!(i.run("pair", vec![]).unwrap(), Some(Val::Int(7)));
        // The stored pointer was already relative (pmalloc result), so no
        // abs→rel conversion was needed; the two dereferences of relative
        // pointers each converted rel→abs.
        assert_eq!(i.stats().abs_to_rel, 0);
        assert!(i.stats().rel_to_abs >= 2);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut b = FnBuilder::new("spin", 0);
        let body = b.new_block();
        b.br(body);
        b.switch_to(body);
        b.br(body);
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m).with_fuel(100);
        assert_eq!(i.run("spin", vec![]), Err(InterpError::OutOfFuel));
    }

    #[test]
    fn type_errors_detected() {
        let mut b = FnBuilder::new("bad", 0);
        let r = b.fresh();
        b.const_int(r, 5);
        let v = b.fresh();
        b.load(v, Reg(r), 0); // deref an integer
        b.ret(None);
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        assert!(matches!(i.run("bad", vec![]), Err(InterpError::Type(_))));
    }

    #[test]
    fn calls_pass_values_and_return() {
        let mut callee = FnBuilder::new("add1", 1);
        let r = callee.fresh();
        callee.int_add(r, Reg(callee.param(0)), Imm(1));
        callee.ret(Some(Reg(r)));
        let mut caller = FnBuilder::new("main", 0);
        let r = caller.fresh();
        caller.call(Some(r), "add1", vec![Imm(41)]);
        caller.ret(Some(Reg(r)));
        let mut m = Module::new();
        m.add(callee.finish());
        m.add(caller.finish());
        m.verify().unwrap();
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        assert_eq!(i.run("main", vec![]).unwrap(), Some(Val::Int(42)));
    }

    #[test]
    fn check_counting_matches_analysis() {
        // Deref a parameter 3 times in a loop of 1: checks = 3 executions.
        let mut b = FnBuilder::new("f", 1);
        let v = b.fresh();
        b.load(v, Reg(b.param(0)), 0);
        b.load(v, Reg(b.param(0)), 8);
        b.load(v, Reg(b.param(0)), 16);
        b.ret(Some(Reg(v)));
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let loc = s.pmalloc(pool, 64).unwrap();
        let mut i = Interp::new(&mut s, pool, &m);
        i.run("f", vec![Val::Ptr(UPtr::from_rel(loc))]).unwrap();
        let st = i.stats();
        assert_eq!(st.executed_ptr_ops, 3);
        assert_eq!(st.executed_checks, 3);
        assert_eq!(st.max_checks, 3);
        assert_eq!(st.rel_to_abs, 3, "each deref converts the relative param");
    }

    /// Runs `name(args)` through the reference and the decoded path on
    /// twin spaces and asserts full observable equality: result/error,
    /// fuel, stats, per-function attribution.
    fn assert_differential(
        m: &Module,
        opts: &crate::analysis::InferOptions,
        fuel: u64,
        name: &str,
        args: Vec<Val>,
    ) -> Result<Option<Val>> {
        let (mut s1, p1) = with_pool();
        let (mut s2, p2) = with_pool();
        let mut a = Interp::new(&mut s1, p1, m).with_inference(opts).with_fuel(fuel);
        let mut b = Interp::new(&mut s2, p2, m).with_inference(opts).with_fuel(fuel);
        let dm = b.decode();
        let ra = a.run(name, args.clone());
        let rb = b.run_decoded(&dm, name, args);
        assert_eq!(ra, rb, "{name}: results differ");
        assert_eq!(a.stats(), b.stats(), "{name}: stats differ");
        assert_eq!(a.fuel_left(), b.fuel_left(), "{name}: fuel differs");
        assert_eq!(
            a.per_function_checks(),
            b.per_function_checks(),
            "{name}: per-function attribution differs"
        );
        rb
    }

    #[test]
    fn decoded_path_matches_reference_on_kernels() {
        use crate::analysis::InferOptions;
        let m = crate::kernels::module();
        for opts in [InferOptions::intra(), InferOptions::inter()] {
            let out =
                assert_differential(&m, &opts, 1 << 20, "list_build_and_sum", vec![Val::Int(50)]);
            assert_eq!(out.unwrap(), Some(Val::Int(50 * 51 / 2)));
        }
    }

    #[test]
    fn decoded_path_matches_reference_on_fuel_exhaustion() {
        use crate::analysis::InferOptions;
        let mut b = FnBuilder::new("spin", 0);
        let body = b.new_block();
        b.br(body);
        b.switch_to(body);
        b.br(body);
        let mut m = Module::new();
        m.add(b.finish());
        let out = assert_differential(&m, &InferOptions::intra(), 77, "spin", vec![]);
        assert_eq!(out, Err(InterpError::OutOfFuel));
    }

    #[test]
    fn decoded_path_matches_reference_on_type_error() {
        use crate::analysis::InferOptions;
        let mut b = FnBuilder::new("bad", 0);
        let r = b.fresh();
        b.const_int(r, 5);
        let v = b.fresh();
        b.load(v, Reg(r), 0);
        b.ret(None);
        let mut m = Module::new();
        m.add(b.finish());
        let out = assert_differential(&m, &InferOptions::intra(), 1000, "bad", vec![]);
        assert!(matches!(out, Err(InterpError::Type(_))));
    }

    #[test]
    fn decoded_path_reports_unknown_function_like_reference() {
        let m = crate::kernels::module();
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        let dm = i.decode();
        assert_eq!(
            i.run_decoded(&dm, "nope", vec![]),
            Err(InterpError::NoFunction("nope".into()))
        );
        assert_eq!(i.run("nope", vec![]), Err(InterpError::NoFunction("nope".into())));
    }

    #[test]
    fn per_function_checks_attribute_to_the_site_owner() {
        // Driver calls list_push in a loop: the push's residual checks must
        // land on list_push, not on the driver.
        let m = crate::kernels::module();
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        i.run("list_build_and_sum", vec![Val::Int(10)]).unwrap();
        let per = i.per_function_checks();
        assert!(per["list_push"].max_checks > 0);
        assert!(per["list_sum"].max_checks > 0);
        let total: u64 = per.values().map(|c| c.max_checks).sum();
        assert_eq!(total, i.stats().max_checks, "attribution conserves totals");
    }

    #[test]
    fn cmp_across_formats_and_null() {
        let mut b = FnBuilder::new("f", 1);
        let q = b.fresh();
        // q = (T*)(intptr_t)p — round-trip through an integer.
        let i1 = b.fresh();
        b.ptr_to_int(i1, Reg(b.param(0)));
        b.int_to_ptr(q, Reg(i1));
        let c1 = b.fresh();
        b.cmp_ptr(c1, CmpOp::Eq, Reg(b.param(0)), Reg(q));
        let c2 = b.fresh();
        b.cmp_ptr(c2, CmpOp::Ne, Reg(b.param(0)), Null);
        let r = b.fresh();
        b.int_op(r, crate::ir::IntOp::And, Reg(c1), Reg(c2));
        b.ret(Some(Reg(r)));
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let loc = s.pmalloc(pool, 32).unwrap();
        let mut i = Interp::new(&mut s, pool, &m);
        let out = i.run("f", vec![Val::Ptr(UPtr::from_rel(loc))]).unwrap();
        assert_eq!(out, Some(Val::Int(1)), "rel == int-round-tripped va, and != null");
    }
}
