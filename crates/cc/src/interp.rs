//! IR interpreter: executes a module against the simulated heap with the
//! Fig. 4 semantics, counting the dynamic checks the compiled SW version
//! would execute.
//!
//! This is the functional reference for the compiler path: tests run the
//! same kernels natively (plain Rust) and through the interpreter and
//! compare results, the analogue of the paper's LLVM test-suite validation.

use crate::analysis::{analyze_module, InferenceReport, SiteKey};
use crate::ir::{BlockId, Inst, IntOp, Module, Operand, Term};
use std::fmt;
use utpr_heap::{AddressSpace, HeapError, PoolId};
use utpr_ptr::{PtrSpace, UPtr};

/// A runtime value: the IR is dynamically typed between integers and
/// pointers, like C through casts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Val {
    /// An integer.
    Int(i64),
    /// A pointer in either format.
    Ptr(UPtr),
}

impl Val {
    /// Truthiness for conditional branches.
    pub fn is_true(self) -> bool {
        match self {
            Val::Int(i) => i != 0,
            Val::Ptr(p) => !p.is_null(),
        }
    }
}

/// Interpreter failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// A heap/translation fault.
    Heap(HeapError),
    /// An operand had the wrong dynamic type.
    Type(&'static str),
    /// The fuel budget was exhausted (runaway loop or recursion).
    OutOfFuel,
    /// Unknown function.
    NoFunction(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Heap(e) => write!(f, "heap fault: {e}"),
            InterpError::Type(what) => write!(f, "type error: {what}"),
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::NoFunction(n) => write!(f, "no function named {n:?}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<HeapError> for InterpError {
    fn from(e: HeapError) -> Self {
        InterpError::Heap(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, InterpError>;

/// Execution counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions executed.
    pub insts: u64,
    /// Pointer-operation sites executed.
    pub executed_ptr_ops: u64,
    /// Dynamic checks executed (post-inference).
    pub executed_checks: u64,
    /// Dynamic checks a no-inference compiler would have executed.
    pub max_checks: u64,
    /// Relative→virtual conversions performed.
    pub rel_to_abs: u64,
    /// Virtual→relative conversions performed.
    pub abs_to_rel: u64,
}

impl InterpStats {
    /// Fraction of executed checks surviving inference — the paper reports
    /// ≈ 42 % on its benchmarks.
    pub fn dynamic_check_fraction(&self) -> f64 {
        if self.max_checks == 0 {
            0.0
        } else {
            self.executed_checks as f64 / self.max_checks as f64
        }
    }
}

/// The interpreter: owns nothing, runs against a borrowed heap.
///
/// # Examples
///
/// ```
/// use utpr_cc::ir::{FnBuilder, Module, Operand};
/// use utpr_cc::interp::{Interp, Val};
/// use utpr_heap::AddressSpace;
///
/// let mut b = FnBuilder::new("store42", 0);
/// let p = b.fresh();
/// b.pmalloc(p, Operand::Imm(16));
/// b.store(Operand::Reg(p), 0, Operand::Imm(42));
/// let v = b.fresh();
/// b.load(v, Operand::Reg(p), 0);
/// b.ret(Some(Operand::Reg(v)));
/// let mut m = Module::new();
/// m.add(b.finish());
///
/// let mut space = AddressSpace::new(5);
/// let pool = space.create_pool("p", 1 << 20)?;
/// let mut interp = Interp::new(&mut space, pool, &m);
/// assert_eq!(interp.run("store42", vec![])?, Some(Val::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interp<'a> {
    space: &'a mut AddressSpace,
    pool: PoolId,
    module: &'a Module,
    report: InferenceReport,
    stats: InterpStats,
    fuel: u64,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter with a default fuel budget of 10 million
    /// instructions; persistent allocations go to `pool`.
    pub fn new(space: &'a mut AddressSpace, pool: PoolId, module: &'a Module) -> Self {
        let report = analyze_module(module);
        Interp { space, pool, module, report, stats: InterpStats::default(), fuel: 10_000_000 }
    }

    /// Overrides the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// The inference report the interpreter charges checks against.
    pub fn report(&self) -> &InferenceReport {
        &self.report
    }

    /// Runs a function with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns faults, type errors, fuel exhaustion, or unknown-function
    /// errors.
    pub fn run(&mut self, name: &str, args: Vec<Val>) -> Result<Option<Val>> {
        let module = self.module;
        let f = module
            .functions
            .get(name)
            .ok_or_else(|| InterpError::NoFunction(name.to_string()))?;
        if args.len() as u32 != f.params {
            return Err(InterpError::Type("argument count mismatch"));
        }
        let mut regs: Vec<Val> = vec![Val::Int(0); f.regs as usize];
        regs[..args.len()].copy_from_slice(&args);

        let decisions = self.report.functions[name].decisions.clone();
        let mut bb = BlockId(0);
        loop {
            let block = &f.blocks[bb.0 as usize];
            for (ii, inst) in block.insts.iter().enumerate() {
                if self.fuel == 0 {
                    return Err(InterpError::OutOfFuel);
                }
                self.fuel -= 1;
                self.stats.insts += 1;
                if let Some(d) = decisions.get(&SiteKey { block: bb, index: ii }) {
                    self.stats.executed_ptr_ops += 1;
                    self.stats.executed_checks += u64::from(d.checks);
                    self.stats.max_checks += u64::from(d.max_checks);
                }
                self.step(inst, &mut regs)?;
            }
            // Terminators also consume fuel so empty-block loops terminate.
            if self.fuel == 0 {
                return Err(InterpError::OutOfFuel);
            }
            self.fuel -= 1;
            match &block.term {
                Term::Br(t) => bb = *t,
                Term::CondBr { cond, then_bb, else_bb } => {
                    let c = eval(&regs, *cond);
                    bb = if c.is_true() { *then_bb } else { *else_bb };
                }
                Term::Ret(v) => return Ok(v.map(|op| eval(&regs, op))),
            }
        }
    }

    fn ra2va(&mut self, p: UPtr) -> Result<UPtr> {
        match p.as_rel() {
            Some(loc) => {
                let va = self.space.ra2va(loc)?;
                self.stats.rel_to_abs += 1;
                Ok(UPtr::from_va(va))
            }
            None => Ok(p),
        }
    }

    fn deref(&mut self, p: UPtr, off: i64) -> Result<utpr_heap::VirtAddr> {
        let q = p.offset(off);
        if q.is_null() {
            return Err(InterpError::Heap(HeapError::Unmapped(utpr_heap::VirtAddr::new(0))));
        }
        let v = self.ra2va(q)?;
        Ok(v.as_va().expect("ra2va yields va"))
    }

    fn step(&mut self, inst: &Inst, regs: &mut [Val]) -> Result<()> {
        match inst {
            Inst::ConstInt { dst, value } => regs[dst.0 as usize] = Val::Int(*value),
            Inst::Malloc { dst, size } => {
                let n = as_int(eval(regs, *size))?;
                let va = self.space.malloc(n as u64)?;
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_va(va));
            }
            Inst::Pmalloc { dst, size } => {
                let n = as_int(eval(regs, *size))?;
                let loc = self.space.pmalloc(self.pool, n as u64)?;
                // pmalloc returns a relative address by definition (§V-B).
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_rel(loc));
            }
            Inst::Free { ptr } => {
                let p = as_ptr(eval(regs, *ptr))?;
                match p.kind() {
                    utpr_ptr::PtrKind::Null => {}
                    utpr_ptr::PtrKind::Va(va) => {
                        if va.is_nvm_region() {
                            let loc = self.space.va2ra(va)?;
                            self.stats.abs_to_rel += 1;
                            self.space.pfree(loc)?;
                        } else {
                            self.space.mfree(va)?;
                        }
                    }
                    utpr_ptr::PtrKind::Rel(loc) => self.space.pfree(loc)?,
                }
            }
            Inst::Load { dst, addr, off } => {
                let p = as_ptr(eval(regs, *addr))?;
                let va = self.deref(p, *off)?;
                regs[dst.0 as usize] = Val::Int(self.space.read_u64(va)? as i64);
            }
            Inst::Store { addr, off, value } => {
                let p = as_ptr(eval(regs, *addr))?;
                let v = as_int(eval(regs, *value))?;
                let va = self.deref(p, *off)?;
                self.space.write_u64(va, v as u64)?;
            }
            Inst::LoadPtr { dst, addr, off } => {
                let p = as_ptr(eval(regs, *addr))?;
                let va = self.deref(p, *off)?;
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_raw(self.space.read_u64(va)?));
            }
            Inst::StorePtr { addr, off, value } => {
                let p = as_ptr(eval(regs, *addr))?;
                let v = as_ptr(eval(regs, *value))?;
                let dva = self.deref(p, *off)?;
                let dest = if dva.is_nvm_region() { PtrSpace::Nvm } else { PtrSpace::Dram };
                let stored = self.assign_value(dest, v)?;
                self.space.write_u64(dva, stored.raw())?;
            }
            Inst::Gep { dst, base, off } => {
                let p = as_ptr(eval(regs, *base))?;
                let d = as_int(eval(regs, *off))?;
                regs[dst.0 as usize] = Val::Ptr(p.offset(d));
            }
            Inst::IntOp { dst, op, lhs, rhs } => {
                let a = as_int(eval(regs, *lhs))?;
                let b = as_int(eval(regs, *rhs))?;
                let r = match op {
                    IntOp::Add => a.wrapping_add(b),
                    IntOp::Sub => a.wrapping_sub(b),
                    IntOp::Mul => a.wrapping_mul(b),
                    IntOp::And => a & b,
                    IntOp::Or => a | b,
                    IntOp::Xor => a ^ b,
                };
                regs[dst.0 as usize] = Val::Int(r);
            }
            Inst::PtrToInt { dst, src } => {
                let p = as_ptr(eval(regs, *src))?;
                let v = self.ra2va(p)?;
                regs[dst.0 as usize] = Val::Int(v.raw() as i64);
            }
            Inst::IntToPtr { dst, src } => {
                let i = as_int(eval(regs, *src))?;
                regs[dst.0 as usize] = Val::Ptr(UPtr::from_raw(i as u64));
            }
            Inst::PtrDiff { dst, lhs, rhs } => {
                let a = as_ptr(eval(regs, *lhs))?;
                let b = as_ptr(eval(regs, *rhs))?;
                let d = match (a.as_rel(), b.as_rel()) {
                    (Some(_), Some(_)) => a.raw().wrapping_sub(b.raw()) as i64,
                    _ => {
                        let av = self.ra2va(a)?.raw();
                        let bv = self.ra2va(b)?.raw();
                        av.wrapping_sub(bv) as i64
                    }
                };
                regs[dst.0 as usize] = Val::Int(d);
            }
            Inst::CmpPtr { dst, op, lhs, rhs } => {
                let a = as_ptr(eval(regs, *lhs))?;
                let b = as_ptr(eval(regs, *rhs))?;
                let r = if a.is_null() || b.is_null() {
                    op.eval(a.raw(), b.raw())
                } else {
                    let av = self.ra2va(a)?.raw();
                    let bv = self.ra2va(b)?.raw();
                    op.eval(av, bv)
                };
                regs[dst.0 as usize] = Val::Int(i64::from(r));
            }
            Inst::CmpInt { dst, op, lhs, rhs } => {
                let a = as_int(eval(regs, *lhs))?;
                let b = as_int(eval(regs, *rhs))?;
                regs[dst.0 as usize] = Val::Int(i64::from(op.eval(a, b)));
            }
            Inst::Copy { dst, src } => regs[dst.0 as usize] = eval(regs, *src),
            Inst::Call { dst, callee, args } => {
                let vals: Vec<Val> = args.iter().map(|a| eval(regs, *a)).collect();
                let r = self.run(callee, vals)?;
                if let Some(d) = dst {
                    regs[d.0 as usize] = r.ok_or(InterpError::Type("void call used as value"))?;
                }
            }
        }
        Ok(())
    }

    fn assign_value(&mut self, dest: PtrSpace, p: UPtr) -> Result<UPtr> {
        if p.is_null() {
            return Ok(p);
        }
        match dest {
            PtrSpace::Nvm => match p.as_va() {
                Some(va) if va.is_nvm_region() => {
                    let loc = self.space.va2ra(va)?;
                    self.stats.abs_to_rel += 1;
                    Ok(UPtr::from_rel(loc))
                }
                _ => Ok(p),
            },
            PtrSpace::Dram => self.ra2va(p),
        }
    }
}

fn eval(regs: &[Val], op: Operand) -> Val {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(i) => Val::Int(i),
        Operand::Null => Val::Ptr(UPtr::NULL),
    }
}

fn as_int(v: Val) -> Result<i64> {
    match v {
        Val::Int(i) => Ok(i),
        Val::Ptr(_) => Err(InterpError::Type("expected integer, found pointer")),
    }
}

fn as_ptr(v: Val) -> Result<UPtr> {
    match v {
        Val::Ptr(p) => Ok(p),
        // C permits integer constants (e.g. 0) in pointer positions.
        Val::Int(0) => Ok(UPtr::NULL),
        Val::Int(_) => Err(InterpError::Type("expected pointer, found integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, FnBuilder, Module, Operand::*};

    fn with_pool() -> (AddressSpace, PoolId) {
        let mut s = AddressSpace::new(31);
        let p = s.create_pool("interp", 1 << 20).unwrap();
        (s, p)
    }

    #[test]
    fn persistent_linked_pair_round_trips() {
        // a = pmalloc; b = pmalloc; a->next = b; b->val = 7; return a->next->val
        let mut b = FnBuilder::new("pair", 0);
        let ra = b.fresh();
        let rb = b.fresh();
        b.pmalloc(ra, Imm(32));
        b.pmalloc(rb, Imm(32));
        b.store_ptr(Reg(ra), 8, Reg(rb));
        b.store(Reg(rb), 0, Imm(7));
        let rn = b.fresh();
        b.load_ptr(rn, Reg(ra), 8);
        let rv = b.fresh();
        b.load(rv, Reg(rn), 0);
        b.ret(Some(Reg(rv)));
        let mut m = Module::new();
        m.add(b.finish());
        m.verify().unwrap();

        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        assert_eq!(i.run("pair", vec![]).unwrap(), Some(Val::Int(7)));
        // The stored pointer was already relative (pmalloc result), so no
        // abs→rel conversion was needed; the two dereferences of relative
        // pointers each converted rel→abs.
        assert_eq!(i.stats().abs_to_rel, 0);
        assert!(i.stats().rel_to_abs >= 2);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut b = FnBuilder::new("spin", 0);
        let body = b.new_block();
        b.br(body);
        b.switch_to(body);
        b.br(body);
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m).with_fuel(100);
        assert_eq!(i.run("spin", vec![]), Err(InterpError::OutOfFuel));
    }

    #[test]
    fn type_errors_detected() {
        let mut b = FnBuilder::new("bad", 0);
        let r = b.fresh();
        b.const_int(r, 5);
        let v = b.fresh();
        b.load(v, Reg(r), 0); // deref an integer
        b.ret(None);
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        assert!(matches!(i.run("bad", vec![]), Err(InterpError::Type(_))));
    }

    #[test]
    fn calls_pass_values_and_return() {
        let mut callee = FnBuilder::new("add1", 1);
        let r = callee.fresh();
        callee.int_add(r, Reg(callee.param(0)), Imm(1));
        callee.ret(Some(Reg(r)));
        let mut caller = FnBuilder::new("main", 0);
        let r = caller.fresh();
        caller.call(Some(r), "add1", vec![Imm(41)]);
        caller.ret(Some(Reg(r)));
        let mut m = Module::new();
        m.add(callee.finish());
        m.add(caller.finish());
        m.verify().unwrap();
        let (mut s, pool) = with_pool();
        let mut i = Interp::new(&mut s, pool, &m);
        assert_eq!(i.run("main", vec![]).unwrap(), Some(Val::Int(42)));
    }

    #[test]
    fn check_counting_matches_analysis() {
        // Deref a parameter 3 times in a loop of 1: checks = 3 executions.
        let mut b = FnBuilder::new("f", 1);
        let v = b.fresh();
        b.load(v, Reg(b.param(0)), 0);
        b.load(v, Reg(b.param(0)), 8);
        b.load(v, Reg(b.param(0)), 16);
        b.ret(Some(Reg(v)));
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let loc = s.pmalloc(pool, 64).unwrap();
        let mut i = Interp::new(&mut s, pool, &m);
        i.run("f", vec![Val::Ptr(UPtr::from_rel(loc))]).unwrap();
        let st = i.stats();
        assert_eq!(st.executed_ptr_ops, 3);
        assert_eq!(st.executed_checks, 3);
        assert_eq!(st.max_checks, 3);
        assert_eq!(st.rel_to_abs, 3, "each deref converts the relative param");
    }

    #[test]
    fn cmp_across_formats_and_null() {
        let mut b = FnBuilder::new("f", 1);
        let q = b.fresh();
        // q = (T*)(intptr_t)p — round-trip through an integer.
        let i1 = b.fresh();
        b.ptr_to_int(i1, Reg(b.param(0)));
        b.int_to_ptr(q, Reg(i1));
        let c1 = b.fresh();
        b.cmp_ptr(c1, CmpOp::Eq, Reg(b.param(0)), Reg(q));
        let c2 = b.fresh();
        b.cmp_ptr(c2, CmpOp::Ne, Reg(b.param(0)), Null);
        let r = b.fresh();
        b.int_op(r, crate::ir::IntOp::And, Reg(c1), Reg(c2));
        b.ret(Some(Reg(r)));
        let mut m = Module::new();
        m.add(b.finish());
        let (mut s, pool) = with_pool();
        let loc = s.pmalloc(pool, 32).unwrap();
        let mut i = Interp::new(&mut s, pool, &m);
        let out = i.run("f", vec![Val::Ptr(UPtr::from_rel(loc))]).unwrap();
        assert_eq!(out, Some(Val::Int(1)), "rel == int-round-tripped va, and != null");
    }
}
