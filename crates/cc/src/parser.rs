//! Textual IR parser — the inverse of the `Display` impls in [`crate::ir`],
//! giving the compiler crate an LLVM-`.ll`-style round trip: any module can
//! be printed, stored, edited by hand, and parsed back.
//!
//! Grammar (one construct per line, `#`-comments allowed):
//!
//! ```text
//! fn append(r0, r1) {
//! bb0:
//!   r2 = pmalloc 16
//!   store [r2+0], r1
//!   storep [r0+0], r2
//!   ret
//! }
//! ```

use crate::ir::{Block, BlockId, CmpOp, Function, Inst, IntOp, Module, Operand, Reg, Term};
use std::fmt;

/// Parse failures, with the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(ParseError { line, message: message.into() })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg> {
    let body = s
        .strip_prefix('r')
        .ok_or_else(|| ParseError { line, message: format!("expected register, got {s:?}") })?;
    match body.parse::<u32>() {
        Ok(n) => Ok(Reg(n)),
        Err(_) => err(line, format!("bad register {s:?}")),
    }
}

fn parse_operand(s: &str, line: usize) -> Result<Operand> {
    let s = s.trim();
    if s == "null" {
        return Ok(Operand::Null);
    }
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        return Ok(Operand::Reg(parse_reg(s, line)?));
    }
    match s.parse::<i64>() {
        Ok(i) => Ok(Operand::Imm(i)),
        Err(_) => err(line, format!("bad operand {s:?}")),
    }
}

fn parse_block_ref(s: &str, line: usize) -> Result<BlockId> {
    let body = s
        .strip_prefix("bb")
        .ok_or_else(|| ParseError { line, message: format!("expected block ref, got {s:?}") })?;
    match body.parse::<u32>() {
        Ok(n) => Ok(BlockId(n)),
        Err(_) => err(line, format!("bad block ref {s:?}")),
    }
}

/// Parses `[base+off]` into (base operand, byte offset).
fn parse_addr(s: &str, line: usize) -> Result<(Operand, i64)> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| ParseError { line, message: format!("expected [base+off], got {s:?}") })?;
    // The offset is the part after the *last* '+' or a trailing negative.
    let split = inner.rfind('+').ok_or_else(|| ParseError {
        line,
        message: format!("expected [base+off], got {s:?}"),
    })?;
    let base = parse_operand(&inner[..split], line)?;
    let off = inner[split + 1..]
        .trim()
        .parse::<i64>()
        .map_err(|_| ParseError { line, message: format!("bad offset in {s:?}") })?;
    Ok((base, off))
}

fn parse_int_op(s: &str, line: usize) -> Result<IntOp> {
    Ok(match s {
        "Add" => IntOp::Add,
        "Sub" => IntOp::Sub,
        "Mul" => IntOp::Mul,
        "And" => IntOp::And,
        "Or" => IntOp::Or,
        "Xor" => IntOp::Xor,
        _ => return err(line, format!("unknown int op {s:?}")),
    })
}

fn parse_cmp_op(s: &str, line: usize) -> Result<CmpOp> {
    Ok(match s {
        "Eq" => CmpOp::Eq,
        "Ne" => CmpOp::Ne,
        "Lt" => CmpOp::Lt,
        "Le" => CmpOp::Le,
        "Gt" => CmpOp::Gt,
        "Ge" => CmpOp::Ge,
        _ => return err(line, format!("unknown cmp op {s:?}")),
    })
}

fn split2(s: &str, line: usize) -> Result<(&str, &str)> {
    match s.split_once(',') {
        Some((a, b)) => Ok((a.trim(), b.trim())),
        None => err(line, format!("expected two comma-separated operands in {s:?}")),
    }
}

/// Parses the right-hand side of `rN = <rhs>`.
fn parse_rhs(dst: Reg, rhs: &str, line: usize) -> Result<Inst> {
    let (head, rest) = match rhs.split_once(' ') {
        Some((h, r)) => (h, r.trim()),
        None => (rhs, ""),
    };
    Ok(match head {
        "const" => Inst::ConstInt {
            dst,
            value: rest
                .parse()
                .map_err(|_| ParseError { line, message: format!("bad const {rest:?}") })?,
        },
        "malloc" => Inst::Malloc { dst, size: parse_operand(rest, line)? },
        "pmalloc" => Inst::Pmalloc { dst, size: parse_operand(rest, line)? },
        "load" => {
            let (addr, off) = parse_addr(rest, line)?;
            Inst::Load { dst, addr, off }
        }
        "loadp" => {
            let (addr, off) = parse_addr(rest, line)?;
            Inst::LoadPtr { dst, addr, off }
        }
        "gep" => {
            let (base, off) = split2(rest, line)?;
            Inst::Gep { dst, base: parse_operand(base, line)?, off: parse_operand(off, line)? }
        }
        "ptrtoint" => Inst::PtrToInt { dst, src: parse_operand(rest, line)? },
        "inttoptr" => Inst::IntToPtr { dst, src: parse_operand(rest, line)? },
        "ptrdiff" => {
            let (l, r) = split2(rest, line)?;
            Inst::PtrDiff { dst, lhs: parse_operand(l, line)?, rhs: parse_operand(r, line)? }
        }
        "call" => {
            let open = rest.find('(').ok_or_else(|| ParseError {
                line,
                message: "call missing argument list".into(),
            })?;
            let callee = rest[..open].trim().to_string();
            let args_s = rest[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| ParseError { line, message: "call missing ')'".into() })?;
            let args = if args_s.trim().is_empty() {
                vec![]
            } else {
                args_s
                    .split(',')
                    .map(|a| parse_operand(a, line))
                    .collect::<Result<Vec<_>>>()?
            };
            Inst::Call { dst: Some(dst), callee, args }
        }
        _ if head.starts_with("cmpp.") => {
            let op = parse_cmp_op(&head[5..], line)?;
            let (l, r) = split2(rest, line)?;
            Inst::CmpPtr { dst, op, lhs: parse_operand(l, line)?, rhs: parse_operand(r, line)? }
        }
        _ if head.starts_with("cmpi.") => {
            let op = parse_cmp_op(&head[5..], line)?;
            let (l, r) = split2(rest, line)?;
            Inst::CmpInt { dst, op, lhs: parse_operand(l, line)?, rhs: parse_operand(r, line)? }
        }
        "Add" | "Sub" | "Mul" | "And" | "Or" | "Xor" => {
            let op = parse_int_op(head, line)?;
            let (l, r) = split2(rest, line)?;
            Inst::IntOp { dst, op, lhs: parse_operand(l, line)?, rhs: parse_operand(r, line)? }
        }
        // Bare operand: a copy.
        _ if rest.is_empty() => Inst::Copy { dst, src: parse_operand(head, line)? },
        _ => return err(line, format!("unknown instruction {rhs:?}")),
    })
}

/// Parses a full instruction or terminator line; terminators return `Err`
/// via the bool flag instead (Ok(Right)).
enum Parsed {
    Inst(Inst),
    Term(Term),
}

fn parse_line(text: &str, line: usize) -> Result<Parsed> {
    // Terminators first.
    if text == "ret" {
        return Ok(Parsed::Term(Term::Ret(None)));
    }
    if let Some(rest) = text.strip_prefix("ret ") {
        return Ok(Parsed::Term(Term::Ret(Some(parse_operand(rest, line)?))));
    }
    if let Some(rest) = text.strip_prefix("br ") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        return match parts.as_slice() {
            [target] => Ok(Parsed::Term(Term::Br(parse_block_ref(target, line)?))),
            [cond, t, e] => Ok(Parsed::Term(Term::CondBr {
                cond: parse_operand(cond, line)?,
                then_bb: parse_block_ref(t, line)?,
                else_bb: parse_block_ref(e, line)?,
            })),
            _ => err(line, format!("bad branch {text:?}")),
        };
    }
    // Void instructions.
    if let Some(rest) = text.strip_prefix("free ") {
        return Ok(Parsed::Inst(Inst::Free { ptr: parse_operand(rest, line)? }));
    }
    if let Some(rest) = text.strip_prefix("storep ") {
        let (addr_s, val_s) = split2(rest, line)?;
        let (addr, off) = parse_addr(addr_s, line)?;
        return Ok(Parsed::Inst(Inst::StorePtr { addr, off, value: parse_operand(val_s, line)? }));
    }
    if let Some(rest) = text.strip_prefix("store ") {
        let (addr_s, val_s) = split2(rest, line)?;
        let (addr, off) = parse_addr(addr_s, line)?;
        return Ok(Parsed::Inst(Inst::Store { addr, off, value: parse_operand(val_s, line)? }));
    }
    if let Some(rest) = text.strip_prefix("call ") {
        // Void call.
        let open = rest
            .find('(')
            .ok_or_else(|| ParseError { line, message: "call missing '('".into() })?;
        let callee = rest[..open].trim().to_string();
        let args_s = rest[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| ParseError { line, message: "call missing ')'".into() })?;
        let args = if args_s.trim().is_empty() {
            vec![]
        } else {
            args_s.split(',').map(|a| parse_operand(a, line)).collect::<Result<Vec<_>>>()?
        };
        return Ok(Parsed::Inst(Inst::Call { dst: None, callee, args }));
    }
    // Assignments: rN = rhs.
    if let Some((lhs, rhs)) = text.split_once('=') {
        let dst = parse_reg(lhs.trim(), line)?;
        return Ok(Parsed::Inst(parse_rhs(dst, rhs.trim(), line)?));
    }
    err(line, format!("unrecognized line {text:?}"))
}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_module(text: &str) -> Result<Module> {
    let mut module = Module::new();
    let mut current: Option<(String, u32, Vec<Block>)> = None;
    let mut open_block: Option<(Vec<Inst>, Option<Term>)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("fn ") {
            if current.is_some() {
                return err(line, "nested fn");
            }
            let open = rest
                .find('(')
                .ok_or_else(|| ParseError { line, message: "fn missing '('".into() })?;
            let name = rest[..open].trim().to_string();
            let params_s = rest[open + 1..]
                .split(')')
                .next()
                .ok_or_else(|| ParseError { line, message: "fn missing ')'".into() })?;
            let params = if params_s.trim().is_empty() {
                0
            } else {
                params_s.split(',').count() as u32
            };
            current = Some((name, params, Vec::new()));
            continue;
        }
        if text == "}" {
            let (name, params, mut blocks) = match current.take() {
                Some(c) => c,
                None => return err(line, "'}' outside a function"),
            };
            if let Some((insts, term)) = open_block.take() {
                blocks.push(Block {
                    insts,
                    term: term.ok_or_else(|| ParseError {
                        line,
                        message: "block missing terminator".into(),
                    })?,
                });
            }
            // Register count: scan for the highest register used.
            let mut max_reg = params;
            for b in &blocks {
                for inst in &b.insts {
                    if let Some(d) = inst.dst() {
                        max_reg = max_reg.max(d.0 + 1);
                    }
                    for op in crate::ir::operands_of(inst) {
                        if let Operand::Reg(r) = op {
                            max_reg = max_reg.max(r.0 + 1);
                        }
                    }
                }
            }
            module.add(Function { name, params, regs: max_reg, blocks });
            continue;
        }
        if text.starts_with("bb") && text.ends_with(':') {
            let (_, _, blocks) = current
                .as_mut()
                .ok_or_else(|| ParseError { line, message: "block outside fn".into() })?;
            if let Some((insts, term)) = open_block.take() {
                blocks.push(Block {
                    insts,
                    term: term.ok_or_else(|| ParseError {
                        line,
                        message: "previous block missing terminator".into(),
                    })?,
                });
            }
            open_block = Some((Vec::new(), None));
            continue;
        }
        // Instruction/terminator inside the open block.
        let (insts, term) = match open_block.as_mut() {
            Some(b) => b,
            None => return err(line, "instruction outside a block"),
        };
        if term.is_some() {
            return err(line, "instruction after terminator");
        }
        match parse_line(text, line)? {
            Parsed::Inst(i) => insts.push(i),
            Parsed::Term(t) => *term = Some(t),
        }
    }
    if current.is_some() {
        return err(text.lines().count(), "unterminated function");
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, Val};
    use crate::kernels;

    #[test]
    fn kernels_round_trip_through_text() {
        let original = kernels::module();
        let text = original.to_string();
        let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        reparsed.verify().unwrap();
        for (name, f) in &original.functions {
            let g = &reparsed.functions[name];
            assert_eq!(f.params, g.params, "{name} params");
            assert_eq!(f.blocks, g.blocks, "{name} body");
        }
        // Second round trip is a fixed point.
        assert_eq!(text, reparsed.to_string());
    }

    #[test]
    fn parsed_program_executes() {
        let src = r#"
# doubles the value stored behind the pointer argument
fn double_deref(r0) {
bb0:
  r1 = load [r0+0]
  r2 = Add r1, r1
  store [r0+0], r2
  ret r2
}
"#;
        let m = parse_module(src).unwrap();
        m.verify().unwrap();
        let mut space = utpr_heap::AddressSpace::new(9);
        let pool = space.create_pool("p", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 16).unwrap();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 21).unwrap();
        let mut i = Interp::new(&mut space, pool, &m);
        let out = i
            .run("double_deref", vec![Val::Ptr(utpr_ptr::UPtr::from_rel(loc))])
            .unwrap();
        assert_eq!(out, Some(Val::Int(42)));
        assert_eq!(space.read_u64(va).unwrap(), 42);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "fn f() {\nbb0:\n  r1 = frobnicate 3\n  ret\n}";
        let e = parse_module(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"), "{e}");
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(parse_module("}").is_err());
        assert!(parse_module("fn f() {\nbb0:\n  ret\n").is_err(), "unterminated");
        assert!(parse_module("fn f() {\n  r1 = const 3\n  ret\n}").is_err(), "no block");
        let after_term = "fn f() {\nbb0:\n  ret\n  r1 = const 1\n}";
        assert!(parse_module(after_term).is_err());
    }

    #[test]
    fn negative_offsets_and_immediates_parse() {
        let src = "fn f(r0) {\nbb0:\n  r1 = load [r0+-8]\n  r2 = Add r1, -3\n  ret r2\n}";
        let m = parse_module(src).unwrap();
        let f = &m.functions["f"];
        assert!(matches!(f.blocks[0].insts[0], Inst::Load { off: -8, .. }));
    }
}
