//! Differential property battery for the pre-decoded execution path.
//!
//! Random well-formed IR modules — loops, fusible instruction windows,
//! calls to earlier-defined functions, and deliberately out-of-bounds
//! accesses — must execute identically on the tree-walking reference
//! interpreter and the pre-decoded fast path: same result or error, same
//! fuel consumption, same `InterpStats`, same per-function check
//! counters, under both intraprocedural and interprocedural inference and
//! under fuel budgets small enough to die mid-superinstruction.
//!
//! A coverage guard fails the test if the generator stops producing the
//! situations the battery exists for (successful runs, heap faults, fuel
//! exhaustion mid-program, executed check sites, fused superinstructions)
//! so a regressed generator can't pass vacuously.

use std::sync::atomic::{AtomicU64, Ordering};

use utpr_cc::analysis::InferOptions;
use utpr_cc::interp::FnChecks;
use utpr_cc::ir::{CmpOp, IntOp, Operand, Reg};
use utpr_cc::{FnBuilder, Interp, InterpError, InterpStats, Module, Val};
use utpr_heap::AddressSpace;
use utpr_qc::prelude::*;

/// One body instruction recipe: opcode selector plus two operand
/// selectors, reduced modulo the live register pools at build time.
type Code = (u32, u32, u32);

/// (leaf body, main loop body, trip count, fuel budget).
type Recipe = (Vec<Code>, Vec<Code>, u32, u64);

const BUF_BYTES: i64 = 64;

/// Emits one recipe instruction. `ints`/`ptrs` are the live register
/// pools; selectors index them modulo length so every pick is in range
/// and `Module::verify` holds by construction. Offsets intentionally
/// reach one slot past the buffer so both paths must agree on heap
/// faults, not only on happy-path values.
fn emit_code(
    b: &mut FnBuilder,
    code: Code,
    ints: &mut Vec<Reg>,
    ptrs: &mut Vec<Reg>,
    callee: Option<&str>,
) {
    let (op, sa, sb) = code;
    let ia = ints[sa as usize % ints.len()];
    let ib = ints[sb as usize % ints.len()];
    let pa = ptrs[sa as usize % ptrs.len()];
    // Bounds are enforced at pool granularity, so a fault needs to jump
    // past the pool itself, not just past the 64-byte buffer: one draw
    // in ten lands far outside the 1 MiB pool.
    let off = if sb % 10 == 9 { 2 << 20 } else { i64::from(sb % 10) * 8 };
    match op % 14 {
        0 => {
            let d = b.fresh();
            b.int_add(d, Operand::Reg(ia), Operand::Reg(ib));
            ints.push(d);
        }
        1 => {
            let d = b.fresh();
            b.int_op(d, IntOp::Mul, Operand::Reg(ia), Operand::Imm(i64::from(sb % 9)));
            ints.push(d);
        }
        2 => {
            let d = b.fresh();
            b.int_op(d, IntOp::Xor, Operand::Reg(ia), Operand::Reg(ib));
            ints.push(d);
        }
        3 => {
            let d = b.fresh();
            b.cmp_int(d, CmpOp::Lt, Operand::Reg(ia), Operand::Reg(ib));
            ints.push(d);
        }
        4 => {
            let d = b.fresh();
            b.gep(d, Operand::Reg(pa), Operand::Imm(off));
            ptrs.push(d);
        }
        5 => {
            let d = b.fresh();
            b.load(d, Operand::Reg(pa), off);
            ints.push(d);
        }
        6 => b.store(Operand::Reg(pa), off % BUF_BYTES, Operand::Reg(ia)),
        7 => {
            // Adjacent gep+load window: the GepLoad fusion shape.
            let g = b.fresh();
            let d = b.fresh();
            b.gep(g, Operand::Reg(pa), Operand::Imm(off));
            b.load(d, Operand::Reg(g), 0);
            ptrs.push(g);
            ints.push(d);
        }
        8 => {
            // Scaled-index window: the IntOpGepLoad fusion shape. The
            // scale register is data-dependent, so some draws fault.
            let o = b.fresh();
            let g = b.fresh();
            let d = b.fresh();
            b.int_op(o, IntOp::Mul, Operand::Reg(ia), Operand::Imm(8));
            b.gep(g, Operand::Reg(pa), Operand::Reg(o));
            b.load(d, Operand::Reg(g), 0);
            ptrs.push(g);
            ints.push(d);
        }
        9 => {
            let d = b.fresh();
            b.ptr_to_int(d, Operand::Reg(pa));
            ints.push(d);
        }
        10 => {
            let pb = ptrs[sb as usize % ptrs.len()];
            let d = b.fresh();
            b.cmp_ptr(d, CmpOp::Eq, Operand::Reg(pa), Operand::Reg(pb));
            ints.push(d);
        }
        11 => {
            let pb = ptrs[sb as usize % ptrs.len()];
            let d = b.fresh();
            b.ptr_diff(d, Operand::Reg(pa), Operand::Reg(pb));
            ints.push(d);
        }
        12 => match callee {
            Some(name) => {
                let d = b.fresh();
                b.call(Some(d), name, vec![Operand::Reg(ia), Operand::Reg(ib)]);
                ints.push(d);
            }
            None => {
                let d = b.fresh();
                b.int_op(d, IntOp::Sub, Operand::Reg(ia), Operand::Reg(ib));
                ints.push(d);
            }
        },
        _ => {
            let d = b.fresh();
            b.copy(d, Operand::Reg(ia));
            ints.push(d);
        }
    }
}

/// Straight-line leaf: its own persistent buffer, a body from the recipe,
/// returns an int. Defined first so `main` may call it — calls only ever
/// target earlier-defined functions.
fn build_leaf(codes: &[Code]) -> utpr_cc::Function {
    let mut b = FnBuilder::new("leaf", 2);
    let buf = b.fresh();
    b.pmalloc(buf, Operand::Imm(BUF_BYTES));
    b.store(Operand::Reg(buf), 0, Operand::Reg(b.param(0)));
    let mut ints = vec![b.param(0), b.param(1)];
    let mut ptrs = vec![buf];
    for &c in codes {
        emit_code(&mut b, c, &mut ints, &mut ptrs, None);
    }
    let r = *ints.last().expect("ints never empties");
    b.ret(Some(Operand::Reg(r)));
    b.finish()
}

/// A counted loop around the recipe body: the latch (`acc += last; i +=
/// 1; br`) and header (`cmp; condbr`) are exactly the windows the
/// block-tail fusions target.
fn build_main(codes: &[Code], trips: u32) -> utpr_cc::Function {
    let mut b = FnBuilder::new("main", 0);
    let check = b.new_block();
    let body = b.new_block();
    let done = b.new_block();

    let buf = b.fresh();
    let (i, n, one, acc) = (b.fresh(), b.fresh(), b.fresh(), b.fresh());
    b.pmalloc(buf, Operand::Imm(BUF_BYTES));
    b.const_int(i, 0);
    b.const_int(n, i64::from(trips));
    b.const_int(one, 1);
    b.const_int(acc, 0);
    b.store(Operand::Reg(buf), 8, Operand::Reg(one));
    b.br(check);

    b.switch_to(check);
    let c = b.fresh();
    b.cmp_int(c, CmpOp::Lt, Operand::Reg(i), Operand::Reg(n));
    b.cond_br(Operand::Reg(c), body, done);

    b.switch_to(body);
    let mut ints = vec![i, n, one, acc];
    let mut ptrs = vec![buf];
    for &code in codes {
        emit_code(&mut b, code, &mut ints, &mut ptrs, Some("leaf"));
    }
    let last = *ints.last().expect("ints never empties");
    b.int_add(acc, Operand::Reg(acc), Operand::Reg(last));
    b.int_add(i, Operand::Reg(i), Operand::Reg(one));
    b.br(check);

    b.switch_to(done);
    b.ret(Some(Operand::Reg(acc)));
    b.finish()
}

/// Everything both execution paths must agree on.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Observed {
    result: Result<Option<Val>, InterpError>,
    stats: InterpStats,
    fuel_spent: u64,
    per_fn: Vec<(String, FnChecks)>,
}

fn observe(m: &Module, opts: &InferOptions, decoded: bool, fuel: u64) -> Observed {
    let mut space = AddressSpace::new(0xDECD);
    let pool = space.create_pool("props", 1 << 20).expect("pool");
    let mut it = Interp::new(&mut space, pool, m).with_fuel(fuel).with_inference(opts);
    let result = if decoded {
        let dm = it.decode();
        it.run_decoded(&dm, "main", Vec::new())
    } else {
        it.run("main", Vec::new())
    };
    Observed {
        result,
        stats: it.stats(),
        fuel_spent: fuel - it.fuel_left(),
        per_fn: it
            .per_function_checks()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    }
}

// Coverage accounting across all drawn cases (see the guard below).
static OK_RUNS: AtomicU64 = AtomicU64::new(0);
static FAULT_RUNS: AtomicU64 = AtomicU64::new(0);
static FUEL_RUNS: AtomicU64 = AtomicU64::new(0);
static SITE_RUNS: AtomicU64 = AtomicU64::new(0);
static FUSED_MODULES: AtomicU64 = AtomicU64::new(0);

fn check_recipe(recipe: &Recipe) -> Result<(), String> {
    let (leaf_codes, main_codes, trips, fuel) = recipe;
    let mut m = Module::new();
    m.add(build_leaf(leaf_codes));
    m.add(build_main(main_codes, *trips));
    m.verify().map_err(|e| format!("generated module failed verify: {e}"))?;

    // Fusion coverage: an unfused decode is one op per instruction plus
    // one per terminator; any shortfall is a fused window.
    let raw: usize = m
        .functions
        .values()
        .map(|f| f.blocks.iter().map(|b| b.insts.len() + 1).sum::<usize>())
        .sum();
    {
        let mut space = AddressSpace::new(0xDECD);
        let pool = space.create_pool("props", 1 << 20).expect("pool");
        let it = Interp::new(&mut space, pool, &m).with_inference(&InferOptions::inter());
        let dm = it.decode();
        if dm.total_ops() > raw {
            return Err(format!("decode grew the op stream: {} > {raw}", dm.total_ops()));
        }
        if dm.total_ops() < raw {
            FUSED_MODULES.fetch_add(1, Ordering::Relaxed);
        }
    }

    for opts in [InferOptions::intra(), InferOptions::inter()] {
        let reference = observe(&m, &opts, false, *fuel);
        let decoded = observe(&m, &opts, true, *fuel);
        if reference != decoded {
            return Err(format!(
                "decoded diverged from reference (fuel {fuel}):\n  ref: {reference:?}\n  dec: {decoded:?}"
            ));
        }
        match &reference.result {
            Ok(_) => OK_RUNS.fetch_add(1, Ordering::Relaxed),
            Err(InterpError::OutOfFuel) => FUEL_RUNS.fetch_add(1, Ordering::Relaxed),
            Err(_) => FAULT_RUNS.fetch_add(1, Ordering::Relaxed),
        };
        if reference.stats.executed_ptr_ops > 0 {
            SITE_RUNS.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(())
}

#[test]
fn decoded_path_matches_reference_on_random_modules() {
    let code = (0u32..28, 0u32..64, 0u32..64);
    let gen = (
        collection::vec(code.clone(), 0..10),
        collection::vec(code, 0..14),
        0u32..6,
        one_of![
            3 => Just(u64::MAX),
            2 => 0u64..160,
        ],
    );
    for_all("decode::differential", Config::cases(128), gen, |r| check_recipe(&r));

    // Non-vacuity: the battery must actually have exercised the regimes
    // it claims to cover. 128 cases × 2 inference modes give 256 runs;
    // these floors are far below expectation but catch a collapsed
    // generator (e.g. all runs faulting, or fusion never firing).
    let (ok, fault, oof, site, fused) = (
        OK_RUNS.load(Ordering::Relaxed),
        FAULT_RUNS.load(Ordering::Relaxed),
        FUEL_RUNS.load(Ordering::Relaxed),
        SITE_RUNS.load(Ordering::Relaxed),
        FUSED_MODULES.load(Ordering::Relaxed),
    );
    assert!(
        ok >= 20 && fault >= 5 && oof >= 5 && site >= 20 && fused >= 20,
        "vacuous battery: ok={ok} fault={fault} out_of_fuel={oof} site_runs={site} fused_modules={fused}"
    );
}
