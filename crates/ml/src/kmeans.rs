//! A second "legacy library" ML workload: Lloyd's k-means over the matrix
//! library. Like KNN, every matrix (points, centroids, assignments) can
//! live in DRAM or NVM, and the same code runs in every build — persisting
//! learned centroids across restarts is a one-placement-decision change.

use crate::matrix::{Layout, Matrix, Result};
use crate::knn::Dataset;
use utpr_ptr::{ExecEnv, Placement, TimingSink};

/// K-means state: the three matrices.
#[derive(Clone, Copy, Debug)]
pub struct KMeans {
    /// `n × d` points.
    pub points: Matrix,
    /// `k × d` centroids (the learned model — the thing worth persisting).
    pub centroids: Matrix,
    /// `n × 1` cluster assignments.
    pub assignments: Matrix,
    /// Cluster count.
    pub k: u64,
}

impl KMeans {
    /// Builds the matrices and seeds centroids with the first points of
    /// equally spaced strata (deterministic, good enough for well-separated
    /// clusters).
    ///
    /// # Errors
    ///
    /// Propagates allocation/translation failures.
    pub fn setup<S: TimingSink>(
        env: &mut ExecEnv<S>,
        data: &Dataset,
        k: u64,
        points_place: Placement,
        model_place: Placement,
    ) -> Result<Self> {
        let n = data.len() as u64;
        let d = 4u64;
        let mut points = Matrix::create(env, points_place, n, d, Layout::ColMajor)?;
        points.fill_with(env, |r, c| data.features[r as usize][c as usize])?;
        let mut centroids = Matrix::create(env, model_place, k, d, Layout::RowMajor)?;
        for i in 0..k {
            let src = i * n / k;
            for c in 0..d {
                let v = points.get(env, src, c)?;
                centroids.set(env, i, c, v)?;
            }
        }
        let assignments = Matrix::create(env, model_place, n, 1, Layout::ColMajor)?;
        Ok(KMeans { points, centroids, assignments, k })
    }

    /// One Lloyd iteration: assign every point to its nearest centroid,
    /// then move each centroid to its members' mean. Returns the number of
    /// points whose assignment changed.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn iterate<S: TimingSink>(&mut self, env: &mut ExecEnv<S>) -> Result<u64> {
        let (n, d) = self.points.dims(env)?;
        let mut changed = 0u64;
        // Assignment step.
        for i in 0..n {
            let mut best = 0u64;
            let mut best_d = f64::INFINITY;
            for c in 0..self.k {
                let dist = self.points.row_dist2(env, i, &self.centroids, c)?;
                env.charge_exec(2);
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            let old = self.assignments.get(env, i, 0)?;
            if old != best as f64 {
                changed += 1;
                self.assignments.set(env, i, 0, best as f64)?;
            }
        }
        // Update step: recompute means (host accumulators model registers).
        for c in 0..self.k {
            let mut acc = vec![0.0f64; d as usize];
            let mut count = 0u64;
            for i in 0..n {
                if self.assignments.get(env, i, 0)? == c as f64 {
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += self.points.get(env, i, j as u64)?;
                    }
                    count += 1;
                }
            }
            if count > 0 {
                for (j, a) in acc.iter().enumerate() {
                    self.centroids.set(env, c, j as u64, a / count as f64)?;
                }
            }
        }
        Ok(changed)
    }

    /// Runs until convergence (no assignment changes) or `max_iters`.
    /// Returns the iteration count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn run<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, max_iters: u32) -> Result<u32> {
        for it in 1..=max_iters {
            if self.iterate(env)? == 0 {
                return Ok(it);
            }
        }
        Ok(max_iters)
    }

    /// Sum of squared distances of points to their centroids (inertia).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn inertia<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<f64> {
        let (n, _) = self.points.dims(env)?;
        let mut total = 0.0;
        for i in 0..n {
            let c = self.assignments.get(env, i, 0)? as u64;
            total += self.points.row_dist2(env, i, &self.centroids, c)?;
        }
        Ok(total)
    }

    /// Fraction of points whose cluster is the majority cluster of their
    /// true class — cluster purity against the dataset's labels.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn purity<S: TimingSink>(&self, env: &mut ExecEnv<S>, data: &Dataset) -> Result<f64> {
        let n = data.len();
        // votes[cluster][class]
        let mut votes = vec![[0u32; 3]; self.k as usize];
        for i in 0..n {
            let c = self.assignments.get(env, i as u64, 0)? as usize;
            votes[c.min(self.k as usize - 1)][data.labels[i].min(2) as usize] += 1;
        }
        let correct: u32 = votes.iter().map(|v| *v.iter().max().unwrap()).sum();
        Ok(f64::from(correct) / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utpr_heap::AddressSpace;
    use utpr_ptr::{Mode, NullSink};

    fn env(mode: Mode) -> (ExecEnv<NullSink>, Placement) {
        let mut space = AddressSpace::new(31);
        let pool = space.create_pool("km", 32 << 20).unwrap();
        (ExecEnv::builder(space).mode(mode).pool(pool).build(), Placement::Pool(pool))
    }

    #[test]
    fn converges_and_clusters_are_pure() {
        let (mut e, place) = env(Mode::Hw);
        let data = Dataset::iris_like(21);
        let mut km = KMeans::setup(&mut e, &data, 3, Placement::Dram, place).unwrap();
        let iters = km.run(&mut e, 50).unwrap();
        assert!(iters < 50, "did not converge: {iters}");
        let purity = km.purity(&mut e, &data).unwrap();
        assert!(purity > 0.8, "purity {purity}");
    }

    #[test]
    fn inertia_decreases_monotonically() {
        let (mut e, place) = env(Mode::Hw);
        let data = Dataset::iris_like(5);
        let mut km = KMeans::setup(&mut e, &data, 3, place, place).unwrap();
        km.iterate(&mut e).unwrap();
        let mut prev = km.inertia(&mut e).unwrap();
        for _ in 0..5 {
            km.iterate(&mut e).unwrap();
            let now = km.inertia(&mut e).unwrap();
            assert!(now <= prev + 1e-9, "inertia rose: {prev} -> {now}");
            prev = now;
        }
    }

    #[test]
    fn all_modes_agree_on_assignments() {
        let mut results = Vec::new();
        for mode in Mode::ALL {
            let (mut e, place) = env(mode);
            let data = Dataset::iris_like(9);
            let mut km = KMeans::setup(&mut e, &data, 3, Placement::Dram, place).unwrap();
            km.run(&mut e, 30).unwrap();
            let mut assignment_sig = 0u64;
            for i in 0..data.len() as u64 {
                let a = km.assignments.get(&mut e, i, 0).unwrap() as u64;
                assignment_sig = assignment_sig.wrapping_mul(31).wrapping_add(a);
            }
            results.push(assignment_sig);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    }

    #[test]
    fn learned_centroids_survive_crash() {
        use utpr_ptr::site;
        let (mut e, place) = env(Mode::Hw);
        let data = Dataset::iris_like(13);
        let mut km = KMeans::setup(&mut e, &data, 3, Placement::Dram, place).unwrap();
        km.run(&mut e, 50).unwrap();
        let before: Vec<f64> = (0..3)
            .flat_map(|c| (0..4).map(move |j| (c, j)))
            .map(|(c, j)| km.centroids.get(&mut e, c, j).unwrap())
            .collect();
        e.set_root(site!("km.save", StackLocal), km.centroids.descriptor()).unwrap();

        e.space_mut().restart();
        e.space_mut().open_pool("km").unwrap();
        let desc = e.root(site!("km.load", KnownReturn)).unwrap();
        let model = Matrix::open(desc);
        let after: Vec<f64> = (0..3)
            .flat_map(|c| (0..4).map(move |j| (c, j)))
            .map(|(c, j)| model.get(&mut e, c, j).unwrap())
            .collect();
        assert_eq!(before, after, "model changed across crash");
    }
}
