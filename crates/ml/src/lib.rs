//! # utpr-ml — the KNN case study substrate (paper §VII-E)
//!
//! A small dense-matrix library (the Armadillo analogue) and a k-nearest-
//! neighbour classifier (the MLPack analogue) running on the simulated
//! persistent heap. The case study demonstrates the paper's productivity
//! claim: persisting any combination of the four application matrices
//! requires only changing allocation placements, while the explicit model
//! needs per-combination code versions.
//!
//! ```
//! use utpr_ml::{run_knn, Dataset};
//! use utpr_ptr::Mode;
//! use utpr_sim::SimConfig;
//!
//! let r = run_knn(Mode::Hw, SimConfig::table_iv(), 3, 1)?;
//! assert!(r.accuracy > 0.8);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

pub mod kmeans;
pub mod knn;
pub mod matrix;
pub mod productivity;

pub use kmeans::KMeans;
pub use knn::{run_knn, Dataset, Knn, KnnPlacements, KnnResult};
pub use matrix::{Layout, Matrix};
pub use productivity::{
    measured_utpr_lines_changed, paper_benchmark_lines_changed, paper_knn_efforts,
    MigrationEffort,
};
