//! The KNN case study (paper §VII-E): k-nearest-neighbour classification
//! over an iris-like dataset, using four matrices whose DRAM/NVM placement
//! is independently configurable — the 16 placement combinations the paper
//! discusses.

use crate::matrix::{Layout, Matrix, Result};
use utpr_heap::AddressSpace;
use utpr_ptr::{ExecEnv, Mode, Placement, TimingSink};
use utpr_sim::{Machine, RangeEntry, SimConfig, SimStats};

/// A synthetic iris-like dataset: 150 samples, 4 features, 3 classes.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Feature rows (`samples × 4`).
    pub features: Vec<[f64; 4]>,
    /// True class per sample (0, 1, 2).
    pub labels: Vec<u64>,
}

impl Dataset {
    /// Generates the dataset: three Gaussian clusters around the classic
    /// iris class means (sepal/petal length/width), 50 samples each.
    pub fn iris_like(seed: u64) -> Self {
        // Class means from the real iris dataset; modest within-class noise.
        const CENTERS: [[f64; 4]; 3] = [
            [5.01, 3.43, 1.46, 0.25], // setosa
            [5.94, 2.77, 4.26, 1.33], // versicolor
            [6.59, 2.97, 5.55, 2.03], // virginica
        ];
        const SIGMA: [f64; 4] = [0.35, 0.33, 0.30, 0.20];
        let mut rng = SimpleRng(seed.max(1));
        let mut features = Vec::with_capacity(150);
        let mut labels = Vec::with_capacity(150);
        for (class, center) in CENTERS.iter().enumerate() {
            for _ in 0..50 {
                let mut row = [0.0; 4];
                for (j, c) in center.iter().enumerate() {
                    row[j] = c + SIGMA[j] * rng.gaussian();
                }
                features.push(row);
                labels.push(class as u64);
            }
        }
        Dataset { features, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

struct SimpleRng(u64);

impl SimpleRng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn gaussian(&mut self) -> f64 {
        let u1 = self.f64().max(1e-12);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Placement of the four KNN matrices (paper: input, internal, two
/// outputs; any combination of DRAM/NVM must work).
#[derive(Clone, Copy, Debug)]
pub struct KnnPlacements {
    /// The input feature matrix.
    pub input: Placement,
    /// The internal distance scratch matrix.
    pub internal: Placement,
    /// Output: neighbour indices.
    pub neighbors: Placement,
    /// Output: predicted labels.
    pub predictions: Placement,
}

impl KnnPlacements {
    /// The paper's default: everything persistent except the input.
    pub fn paper_default(pool: utpr_heap::PoolId) -> Self {
        KnnPlacements {
            input: Placement::Dram,
            internal: Placement::Pool(pool),
            neighbors: Placement::Pool(pool),
            predictions: Placement::Pool(pool),
        }
    }

    /// All 16 DRAM/NVM combinations (the versions-explosion the paper's
    /// productivity argument counts).
    pub fn all_combinations(pool: utpr_heap::PoolId) -> Vec<Self> {
        let opts = [Placement::Dram, Placement::Pool(pool)];
        let mut v = Vec::with_capacity(16);
        for a in opts {
            for b in opts {
                for c in opts {
                    for d in opts {
                        v.push(KnnPlacements {
                            input: a,
                            internal: b,
                            neighbors: c,
                            predictions: d,
                        });
                    }
                }
            }
        }
        v
    }
}

/// The KNN application state: the four matrices plus the training labels
/// (kept with the input features).
#[derive(Clone, Copy, Debug)]
pub struct Knn {
    /// `n × 4` features.
    pub input: Matrix,
    /// `n × 1` training labels (stored alongside the input).
    pub labels: Matrix,
    /// `n × 1` distance scratch.
    pub internal: Matrix,
    /// `n × k` neighbour indices.
    pub neighbors: Matrix,
    /// `n × 1` predictions.
    pub predictions: Matrix,
    /// Neighbour count.
    pub k: u64,
}

impl Knn {
    /// Builds the application matrices and loads the dataset.
    ///
    /// # Errors
    ///
    /// Propagates allocation/translation failures.
    pub fn setup<S: TimingSink>(
        env: &mut ExecEnv<S>,
        data: &Dataset,
        placements: KnnPlacements,
        k: u64,
    ) -> Result<Self> {
        let n = data.len() as u64;
        let mut input = Matrix::create(env, placements.input, n, 4, Layout::ColMajor)?;
        let mut labels = Matrix::create(env, placements.input, n, 1, Layout::ColMajor)?;
        input.fill_with(env, |r, c| data.features[r as usize][c as usize])?;
        labels.fill_with(env, |r, _| data.labels[r as usize] as f64)?;
        let internal = Matrix::create(env, placements.internal, n, 1, Layout::ColMajor)?;
        let neighbors = Matrix::create(env, placements.neighbors, n, k, Layout::ColMajor)?;
        let predictions = Matrix::create(env, placements.predictions, n, 1, Layout::ColMajor)?;
        Ok(Knn { input, labels, internal, neighbors, predictions, k })
    }

    /// Classifies every sample by its k nearest neighbours (excluding
    /// itself) and returns the fraction that matched the true label.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn classify_all<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, data: &Dataset) -> Result<f64> {
        let n = data.len() as u64;
        let mut correct = 0u64;
        for q in 0..n {
            // Distances to every sample → the internal matrix.
            for j in 0..n {
                let d = self.input.row_dist2(env, q, &self.input, j)?;
                self.internal.set(env, j, 0, d)?;
            }
            // Select the k nearest (excluding q) with k passes of
            // selection — what a small C library would do for tiny k.
            let mut chosen: Vec<u64> = Vec::with_capacity(self.k as usize);
            for slot in 0..self.k {
                let mut best = u64::MAX;
                let mut best_d = f64::INFINITY;
                for j in 0..n {
                    if j == q || chosen.contains(&j) {
                        continue;
                    }
                    let d = self.internal.get(env, j, 0)?;
                    env.charge_exec(2);
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                self.neighbors.set(env, q, slot, best as f64)?;
                chosen.push(best);
            }
            // Majority vote over the neighbour labels.
            let mut votes = [0u32; 3];
            for j in &chosen {
                let label = self.labels.get(env, *j, 0)? as usize;
                votes[label.min(2)] += 1;
            }
            let pred = (0..3).max_by_key(|c| votes[*c]).unwrap_or(0) as u64;
            self.predictions.set(env, q, 0, pred as f64)?;
            if pred == data.labels[q as usize] {
                correct += 1;
            }
        }
        Ok(correct as f64 / n as f64)
    }
}

/// One measured KNN run.
#[derive(Clone, Debug)]
pub struct KnnResult {
    /// Build variant.
    pub mode: Mode,
    /// Cycles for the classification phase.
    pub cycles: f64,
    /// Classification accuracy (identical across modes).
    pub accuracy: f64,
    /// Machine counters.
    pub sim: SimStats,
    /// Pointer-runtime counters.
    pub ptr: utpr_ptr::PtrStats,
}

/// Runs the full case study in one mode with the paper's default
/// placements.
///
/// # Errors
///
/// Propagates failures.
pub fn run_knn(mode: Mode, sim: SimConfig, k: u64, seed: u64) -> Result<KnnResult> {
    let mut space = AddressSpace::new(0x1215);
    let pool = space.create_pool("knn", 64 << 20)?;
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(sim);
    machine.set_pool_ranges(ranges);
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).sink(machine).build();

    let data = Dataset::iris_like(seed);
    let mut knn = Knn::setup(&mut env, &data, KnnPlacements::paper_default(pool), k)?;
    env.sink_mut().reset_measurement();
    env.reset_stats();
    let accuracy = knn.classify_all(&mut env, &data)?;
    let (_space, ptr, machine) = env.into_parts();
    Ok(KnnResult { mode, cycles: machine.cycles(), accuracy, sim: machine.stats(), ptr })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_class_balance() {
        let d = Dataset::iris_like(3);
        assert_eq!(d.len(), 150);
        for c in 0..3u64 {
            assert_eq!(d.labels.iter().filter(|l| **l == c).count(), 50);
        }
    }

    #[test]
    fn knn_is_accurate_on_well_separated_clusters() {
        let mut space = AddressSpace::new(2);
        let pool = space.create_pool("knn-t", 32 << 20).unwrap();
        let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
        let data = Dataset::iris_like(7);
        let mut knn =
            Knn::setup(&mut env, &data, KnnPlacements::paper_default(pool), 3).unwrap();
        let acc = knn.classify_all(&mut env, &data).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn all_sixteen_placement_combinations_work() {
        let mut space = AddressSpace::new(4);
        let pool = space.create_pool("knn-c", 64 << 20).unwrap();
        let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
        // A reduced dataset keeps 16 runs fast.
        let mut data = Dataset::iris_like(5);
        data.features.truncate(30);
        data.labels.truncate(30);
        let mut reference = None;
        for placements in KnnPlacements::all_combinations(pool) {
            let mut knn = Knn::setup(&mut env, &data, placements, 3).unwrap();
            let acc = knn.classify_all(&mut env, &data).unwrap();
            match reference {
                None => reference = Some(acc),
                Some(r) => assert_eq!(acc, r, "placement changed the answer"),
            }
        }
    }

    #[test]
    fn accuracy_identical_across_modes() {
        let mut accs = Vec::new();
        for mode in Mode::ALL {
            let r = run_knn(mode, SimConfig::table_iv(), 3, 11).unwrap();
            accs.push(r.accuracy);
        }
        assert!(accs.windows(2).all(|w| w[0] == w[1]), "{accs:?}");
    }

    #[test]
    fn sw_is_much_slower_than_hw_on_knn() {
        let hw = run_knn(Mode::Hw, SimConfig::table_iv(), 3, 11).unwrap();
        let sw = run_knn(Mode::Sw, SimConfig::table_iv(), 3, 11).unwrap();
        assert!(sw.cycles > hw.cycles * 1.5, "sw {} hw {}", sw.cycles, hw.cycles);
    }
}
