//! A small dense-matrix library — the Armadillo analogue of the paper's
//! KNN case study (§VII-E).
//!
//! A matrix is a compound object: a descriptor holding a *pointer to the
//! data array* plus metadata (rows, cols, and a row/column-major flag —
//! the exact metadata the paper calls out). When the matrix lives in NVM,
//! the data pointer must be stored in relocation-stable relative format;
//! user-transparent references make that automatic.

use utpr_heap::HeapError;
use utpr_ptr::{site, ExecEnv, Placement, TimingSink, UPtr};

/// Result alias.
pub type Result<T> = std::result::Result<T, HeapError>;

const D_DATA: i64 = 0;
const D_ROWS: i64 = 8;
const D_COLS: i64 = 16;
const D_LAYOUT: i64 = 24;
const DESC_SIZE: u64 = 32;

/// Element ordering in memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layout {
    /// Row-major storage.
    RowMajor,
    /// Column-major storage (Armadillo's default).
    ColMajor,
}

/// A dense `f64` matrix in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode, NullSink, Placement};
/// use utpr_ml::{Layout, Matrix};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("m", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut m = Matrix::create(&mut env, Placement::Pool(pool), 2, 2, Layout::RowMajor)?;
/// m.set(&mut env, 0, 1, 3.5)?;
/// assert_eq!(m.get(&mut env, 0, 1)?, 3.5);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Matrix {
    desc: UPtr,
}

impl Matrix {
    /// Allocates a zeroed `rows × cols` matrix at `place`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn create<S: TimingSink>(
        env: &mut ExecEnv<S>,
        place: Placement,
        rows: u64,
        cols: u64,
        layout: Layout,
    ) -> Result<Self> {
        let desc = env.alloc_in(site!("mat.create.desc", AllocResult), place, DESC_SIZE)?;
        let data = env.alloc_in(site!("mat.create.data", AllocResult), place, rows * cols * 8)?;
        env.write_ptr(site!("mat.create.data-link", AllocResult), desc, D_DATA, data)?;
        env.write_u64(site!("mat.create.rows", AllocResult), desc, D_ROWS, rows)?;
        env.write_u64(site!("mat.create.cols", AllocResult), desc, D_COLS, cols)?;
        let flag = match layout {
            Layout::RowMajor => 0,
            Layout::ColMajor => 1,
        };
        env.write_u64(site!("mat.create.layout", AllocResult), desc, D_LAYOUT, flag)?;
        Ok(Matrix { desc })
    }

    /// Re-attaches to an existing descriptor.
    pub fn open(descriptor: UPtr) -> Self {
        Matrix { desc: descriptor }
    }

    /// The descriptor pointer.
    pub fn descriptor(&self) -> UPtr {
        self.desc
    }

    /// Matrix dimensions `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn dims<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<(u64, u64)> {
        let r = env.read_u64(site!("mat.dims.rows", Param), self.desc, D_ROWS)?;
        let c = env.read_u64(site!("mat.dims.cols", Param), self.desc, D_COLS)?;
        Ok((r, c))
    }

    /// The storage layout.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn layout<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<Layout> {
        let f = env.read_u64(site!("mat.layout", Param), self.desc, D_LAYOUT)?;
        Ok(if f == 0 { Layout::RowMajor } else { Layout::ColMajor })
    }

    /// Loads the data pointer once (the hoisted `mat.mem` access every
    /// Armadillo kernel performs before its inner loop). Through this handle
    /// element accesses need no further per-access translation in HW mode —
    /// while the Explicit model re-translates per access (paper Fig. 12).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn data<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<UPtr> {
        env.read_ptr(site!("mat.data", MemLoad), self.desc, D_DATA)
    }

    fn elem_off<S: TimingSink>(&self, env: &mut ExecEnv<S>, r: u64, c: u64) -> Result<i64> {
        let (rows, cols) = self.dims(env)?;
        assert!(r < rows && c < cols, "index ({r},{c}) out of {rows}x{cols}");
        Ok(match self.layout(env)? {
            Layout::RowMajor => ((r * cols + c) * 8) as i64,
            Layout::ColMajor => ((c * rows + r) * 8) as i64,
        })
    }

    /// Reads element `(r, c)`.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, r: u64, c: u64) -> Result<f64> {
        let off = self.elem_off(env, r, c)?;
        let data = self.data(env)?;
        env.read_f64(site!("mat.get", MemLoad), data, off)
    }

    /// Writes element `(r, c)`.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, r: u64, c: u64, v: f64) -> Result<()> {
        let off = self.elem_off(env, r, c)?;
        let data = self.data(env)?;
        env.write_f64(site!("mat.set", MemLoad), data, off, v)
    }

    /// Fills the matrix from a generator function.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn fill_with<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        mut f: impl FnMut(u64, u64) -> f64,
    ) -> Result<()> {
        let (rows, cols) = self.dims(env)?;
        let layout = self.layout(env)?;
        let data = self.data(env)?;
        for r in 0..rows {
            for c in 0..cols {
                let off = match layout {
                    Layout::RowMajor => ((r * cols + c) * 8) as i64,
                    Layout::ColMajor => ((c * rows + r) * 8) as i64,
                };
                env.write_f64(site!("mat.fill", MemLoad), data, off, f(r, c))?;
            }
        }
        Ok(())
    }

    /// Squared Euclidean distance between row `ra` of `self` and row `rb`
    /// of `other` — the KNN inner kernel. Data pointers are hoisted, as a
    /// C library would.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    ///
    /// # Panics
    ///
    /// Panics when column counts differ.
    pub fn row_dist2<S: TimingSink>(
        &self,
        env: &mut ExecEnv<S>,
        ra: u64,
        other: &Matrix,
        rb: u64,
    ) -> Result<f64> {
        let (rows_a, cols) = self.dims(env)?;
        let (rows_b, cols_b) = other.dims(env)?;
        assert_eq!(cols, cols_b, "column mismatch");
        let la = self.layout(env)?;
        let lb = other.layout(env)?;
        let da = self.data(env)?;
        let db = other.data(env)?;
        let mut acc = 0.0;
        for c in 0..cols {
            let offa = match la {
                Layout::RowMajor => ((ra * cols + c) * 8) as i64,
                Layout::ColMajor => ((c * rows_a + ra) * 8) as i64,
            };
            let offb = match lb {
                Layout::RowMajor => ((rb * cols + c) * 8) as i64,
                Layout::ColMajor => ((c * rows_b + rb) * 8) as i64,
            };
            let a = env.read_f64(site!("mat.dist.a", MemLoad), da, offa)?;
            let b = env.read_f64(site!("mat.dist.b", MemLoad), db, offb)?;
            let d = a - b;
            acc += d * d;
            env.charge_exec(3);
        }
        Ok(acc)
    }

    /// Element-wise `self += other`.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn add_assign<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, other: &Matrix) -> Result<()> {
        let (rows, cols) = self.dims(env)?;
        assert_eq!((rows, cols), other.dims(env)?, "dimension mismatch");
        for r in 0..rows {
            for c in 0..cols {
                let v = self.get(env, r, c)? + other.get(env, r, c)?;
                self.set(env, r, c, v)?;
                env.charge_exec(1);
            }
        }
        Ok(())
    }

    /// Multiplies every element by `factor`.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn scale<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, factor: f64) -> Result<()> {
        let (rows, cols) = self.dims(env)?;
        for r in 0..rows {
            for c in 0..cols {
                let v = self.get(env, r, c)? * factor;
                self.set(env, r, c, v)?;
                env.charge_exec(1);
            }
        }
        Ok(())
    }

    /// Dense matrix product `self × other`, placed at `place`.
    ///
    /// # Errors
    ///
    /// Propagates allocation/translation failures.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions differ.
    pub fn matmul<S: TimingSink>(
        &self,
        env: &mut ExecEnv<S>,
        other: &Matrix,
        place: Placement,
    ) -> Result<Matrix> {
        let (n, k) = self.dims(env)?;
        let (k2, m) = other.dims(env)?;
        assert_eq!(k, k2, "inner dimension mismatch");
        let mut out = Matrix::create(env, place, n, m, Layout::RowMajor)?;
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += self.get(env, i, p)? * other.get(env, p, j)?;
                    env.charge_exec(2);
                }
                out.set(env, i, j, acc)?;
            }
        }
        Ok(out)
    }

    /// Mean of each column, as a `1 × cols` matrix in DRAM.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn col_mean<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<Matrix> {
        let (rows, cols) = self.dims(env)?;
        let mut out = Matrix::create(env, Placement::Dram, 1, cols, Layout::RowMajor)?;
        for c in 0..cols {
            let mut acc = 0.0;
            for r in 0..rows {
                acc += self.get(env, r, c)?;
                env.charge_exec(1);
            }
            out.set(env, 0, c, acc / rows.max(1) as f64)?;
        }
        Ok(out)
    }

    /// Returns a transposed copy placed at `place`.
    ///
    /// # Errors
    ///
    /// Propagates allocation/translation failures.
    pub fn transposed<S: TimingSink>(
        &self,
        env: &mut ExecEnv<S>,
        place: Placement,
    ) -> Result<Matrix> {
        let (rows, cols) = self.dims(env)?;
        let layout = self.layout(env)?;
        let mut t = Matrix::create(env, place, cols, rows, layout)?;
        for r in 0..rows {
            for c in 0..cols {
                let v = self.get(env, r, c)?;
                t.set(env, c, r, v)?;
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utpr_heap::AddressSpace;
    use utpr_ptr::{Mode, NullSink};

    fn env(mode: Mode) -> (ExecEnv<NullSink>, Placement) {
        let mut space = AddressSpace::new(13);
        let pool = space.create_pool("mat", 16 << 20).unwrap();
        (ExecEnv::builder(space).mode(mode).pool(pool).build(), Placement::Pool(pool))
    }

    #[test]
    fn set_get_round_trip_both_layouts() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let (mut e, place) = env(Mode::Hw);
            let mut m = Matrix::create(&mut e, place, 3, 4, layout).unwrap();
            for r in 0..3 {
                for c in 0..4 {
                    m.set(&mut e, r, c, (r * 10 + c) as f64).unwrap();
                }
            }
            for r in 0..3 {
                for c in 0..4 {
                    assert_eq!(m.get(&mut e, r, c).unwrap(), (r * 10 + c) as f64);
                }
            }
        }
    }

    #[test]
    fn zero_initialized() {
        let (mut e, place) = env(Mode::Hw);
        let m = Matrix::create(&mut e, place, 4, 4, Layout::ColMajor).unwrap();
        assert_eq!(m.get(&mut e, 3, 3).unwrap(), 0.0);
    }

    #[test]
    fn row_dist2_matches_host_math() {
        let (mut e, place) = env(Mode::Hw);
        let mut a = Matrix::create(&mut e, place, 2, 3, Layout::RowMajor).unwrap();
        let mut b = Matrix::create(&mut e, place, 2, 3, Layout::ColMajor).unwrap();
        a.fill_with(&mut e, |r, c| (r + c) as f64).unwrap();
        b.fill_with(&mut e, |r, c| (r * c) as f64 + 1.0).unwrap();
        // Host-side reference.
        let av = [1.0, 2.0, 3.0]; // row 1 of a: (1+0, 1+1, 1+2)
        let bv = [1.0, 2.0, 3.0]; // row 1 of b: (1*0+1, 1*1+1, 1*2+1)
        let expect: f64 =
            av.iter().zip(bv.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
        assert_eq!(a.row_dist2(&mut e, 1, &b, 1).unwrap(), expect);
    }

    #[test]
    fn transpose_round_trip() {
        let (mut e, place) = env(Mode::Sw);
        let mut m = Matrix::create(&mut e, place, 3, 2, Layout::RowMajor).unwrap();
        m.fill_with(&mut e, |r, c| (r * 2 + c) as f64).unwrap();
        let t = m.transposed(&mut e, place).unwrap();
        assert_eq!(t.dims(&mut e).unwrap(), (2, 3));
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(t.get(&mut e, c, r).unwrap(), m.get(&mut e, r, c).unwrap());
            }
        }
    }

    #[test]
    fn nvm_matrix_data_pointer_is_relative_in_memory() {
        let (mut e, place) = env(Mode::Hw);
        let m = Matrix::create(&mut e, place, 2, 2, Layout::RowMajor).unwrap();
        let raw = e.peek_raw(m.descriptor(), D_DATA).unwrap();
        assert_ne!(raw & (1 << 63), 0, "NVM matrix data pointer must be relative");
    }

    #[test]
    fn dram_matrix_works_in_nvm_program() {
        let (mut e, _) = env(Mode::Hw);
        let mut m = Matrix::create(&mut e, Placement::Dram, 2, 2, Layout::RowMajor).unwrap();
        m.set(&mut e, 1, 1, 9.0).unwrap();
        assert_eq!(m.get(&mut e, 1, 1).unwrap(), 9.0);
        let raw = e.peek_raw(m.descriptor(), D_DATA).unwrap();
        assert_eq!(raw & (1 << 63), 0, "DRAM data pointer stays virtual");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_panics() {
        let (mut e, place) = env(Mode::Hw);
        let m = Matrix::create(&mut e, place, 2, 2, Layout::RowMajor).unwrap();
        let _ = m.get(&mut e, 2, 0);
    }

    #[test]
    fn matmul_matches_host_math() {
        let (mut e, place) = env(Mode::Hw);
        let mut a = Matrix::create(&mut e, place, 2, 3, Layout::RowMajor).unwrap();
        let mut b = Matrix::create(&mut e, place, 3, 2, Layout::ColMajor).unwrap();
        a.fill_with(&mut e, |r, c| (r * 3 + c) as f64).unwrap(); // [[0,1,2],[3,4,5]]
        b.fill_with(&mut e, |r, c| (r * 2 + c) as f64).unwrap(); // [[0,1],[2,3],[4,5]]
        let p = a.matmul(&mut e, &b, place).unwrap();
        // [[10,13],[28,40]]
        assert_eq!(p.get(&mut e, 0, 0).unwrap(), 10.0);
        assert_eq!(p.get(&mut e, 0, 1).unwrap(), 13.0);
        assert_eq!(p.get(&mut e, 1, 0).unwrap(), 28.0);
        assert_eq!(p.get(&mut e, 1, 1).unwrap(), 40.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let (mut e, place) = env(Mode::Sw);
        let mut a = Matrix::create(&mut e, place, 2, 2, Layout::RowMajor).unwrap();
        let mut b = Matrix::create(&mut e, place, 2, 2, Layout::ColMajor).unwrap();
        a.fill_with(&mut e, |r, c| (r + c) as f64).unwrap();
        b.fill_with(&mut e, |_, _| 1.0).unwrap();
        a.add_assign(&mut e, &b).unwrap();
        a.scale(&mut e, 2.0).unwrap();
        assert_eq!(a.get(&mut e, 0, 0).unwrap(), 2.0);
        assert_eq!(a.get(&mut e, 1, 1).unwrap(), 6.0);
    }

    #[test]
    fn col_mean_computes_averages() {
        let (mut e, place) = env(Mode::Hw);
        let mut m = Matrix::create(&mut e, place, 4, 2, Layout::ColMajor).unwrap();
        m.fill_with(&mut e, |r, c| (r as f64) * (c as f64 + 1.0)).unwrap();
        let mean = m.col_mean(&mut e).unwrap();
        assert_eq!(mean.get(&mut e, 0, 0).unwrap(), 1.5); // (0+1+2+3)/4
        assert_eq!(mean.get(&mut e, 0, 1).unwrap(), 3.0); // (0+2+4+6)/4
    }
}
