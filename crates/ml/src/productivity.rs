//! Productivity accounting for the KNN case study (paper §VII-E).
//!
//! The paper compares migration effort: with user-transparent persistent
//! references only the allocation sites change (7 lines in KNN — replace
//! `malloc`/`free` with persistent versions, automatable); the explicit
//! model requires 863 lines, more than 10 data objects and over 32
//! functions — and 16 code versions to cover every DRAM/NVM combination of
//! the four matrices.

/// Migration effort of one approach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationEffort {
    /// Approach name.
    pub approach: &'static str,
    /// Source lines changed.
    pub lines_changed: u64,
    /// Data objects whose type had to change.
    pub objects_changed: u64,
    /// Functions rewritten.
    pub functions_changed: u64,
    /// Code versions needed to cover all 4-matrix DRAM/NVM combinations.
    pub versions_needed: u64,
}

/// The paper's reported KNN migration numbers.
pub fn paper_knn_efforts() -> [MigrationEffort; 2] {
    [
        MigrationEffort {
            approach: "user-transparent (this work)",
            lines_changed: 7,
            objects_changed: 0,
            functions_changed: 0,
            versions_needed: 1,
        },
        MigrationEffort {
            approach: "explicit persistent references",
            lines_changed: 863,
            objects_changed: 10,
            functions_changed: 32,
            versions_needed: 16,
        },
    ]
}

/// Our repository's own measurement of the same property: the number of
/// placement decisions (the only "lines changed") in the KNN application —
/// one per matrix allocation plus the pool handle — versus the size of the
/// matrix/KNN library that runs unmodified.
pub fn measured_utpr_lines_changed() -> u64 {
    // KnnPlacements has four placement fields plus the pool creation line:
    // that is the complete diff between the volatile and persistent builds
    // of the application (the library code in matrix.rs/knn.rs is shared).
    5
}

/// Paper-reported migration efforts for the six library benchmarks: one
/// line each (choosing `pmalloc` as the allocator), no library changes.
pub fn paper_benchmark_lines_changed() -> u64 {
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utpr_is_two_orders_cheaper_than_explicit() {
        let [utpr, explicit] = paper_knn_efforts();
        assert!(explicit.lines_changed > utpr.lines_changed * 100);
        assert_eq!(utpr.versions_needed, 1);
        assert_eq!(explicit.versions_needed, 16);
    }

    #[test]
    fn measured_effort_matches_paper_order_of_magnitude() {
        assert!(measured_utpr_lines_changed() <= 10);
    }
}
