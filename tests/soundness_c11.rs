//! Soundness battery for the Fig. 4 semantics — the analogue of the
//! paper's LLVM test-suite validation (§VII-B): every ISO C11 pointer
//! operation must behave identically whether the operand happens to be in
//! virtual or relative format, and pointers stored in NVM must always hold
//! correct relative addresses.

use utpr_qc::prelude::*;
use utpr_heap::{AddressSpace, PoolId, VirtAddr};
use utpr_ptr::{C11Engine, PtrFormat, PtrSpace, UPtr};

/// A test world: one pool with a handful of objects, plus DRAM objects.
struct World {
    space: AddressSpace,
    pool: PoolId,
    /// (base VA, size) of each persistent object.
    pobjs: Vec<(VirtAddr, u64)>,
    /// (base VA, size) of each volatile object.
    vobjs: Vec<(VirtAddr, u64)>,
}

fn build_world(seed: u64) -> World {
    let mut space = AddressSpace::new(seed);
    let pool = space.create_pool("c11", 1 << 20).unwrap();
    let mut pobjs = Vec::new();
    for i in 0..6u64 {
        let loc = space.pmalloc(pool, 64 + i * 16).unwrap();
        let va = space.ra2va(loc).unwrap();
        pobjs.push((va, 64 + i * 16));
    }
    let mut vobjs = Vec::new();
    for i in 0..4u64 {
        let va = space.malloc(64 + i * 16).unwrap();
        vobjs.push((va, 64 + i * 16));
    }
    World { space, pool, pobjs, vobjs }
}

/// A pointer into the world plus both of its possible encodings.
#[derive(Clone, Copy, Debug)]
struct TestPtr {
    va: VirtAddr,
    encodings: [UPtr; 2],
}

impl World {
    /// Builds the pointer (and its encodings) for object `idx` at `off`.
    fn ptr(&self, persistent: bool, idx: usize, off: u64) -> TestPtr {
        if persistent {
            let (base, size) = self.pobjs[idx % self.pobjs.len()];
            let va = base.add(off % size);
            let rel = self.space.va2ra(va).unwrap();
            TestPtr { va, encodings: [UPtr::from_va(va), UPtr::from_rel(rel)] }
        } else {
            let (base, size) = self.vobjs[idx % self.vobjs.len()];
            let va = base.add(off % size);
            // Volatile pointers have a single encoding; duplicate it.
            TestPtr { va, encodings: [UPtr::from_va(va), UPtr::from_va(va)] }
        }
    }
}

props! {
    #![cases(256)]

    /// Equality and relational operators agree with native addresses for
    /// every encoding combination (Fig. 4 relational rows).
    #[test]
    fn relational_ops_are_format_independent(
        seed in 1u64..500,
        p_pers in any::<bool>(), p_idx in 0usize..8, p_off in 0u64..128,
        q_pers in any::<bool>(), q_idx in 0usize..8, q_off in 0u64..128,
        p_enc in 0usize..2, q_enc in 0usize..2,
    ) {
        let w = build_world(seed);
        let p = w.ptr(p_pers, p_idx, p_off);
        let q = w.ptr(q_pers, q_idx, q_off);
        let mut eng = C11Engine::new(&w.space);
        let native_eq = p.va == q.va;
        let native_ord = p.va.raw().cmp(&q.va.raw());
        prop_assert_eq!(eng.eq(p.encodings[p_enc], q.encodings[q_enc]).unwrap(), native_eq);
        prop_assert_eq!(eng.cmp(p.encodings[p_enc], q.encodings[q_enc]).unwrap(), native_ord);
    }

    /// `(I)p` casts and integer round-trips match native pointer values
    /// (Fig. 4 cast rows).
    #[test]
    fn int_casts_are_format_independent(
        seed in 1u64..500,
        pers in any::<bool>(), idx in 0usize..8, off in 0u64..128, enc in 0usize..2,
    ) {
        let w = build_world(seed);
        let p = w.ptr(pers, idx, off);
        let mut eng = C11Engine::new(&w.space);
        let i = eng.to_int(p.encodings[enc]).unwrap();
        prop_assert_eq!(i, p.va.raw());
        // (T*)(I)p dereferences the same location.
        let back = C11Engine::from_int(i);
        prop_assert_eq!(eng.deref_target(back).unwrap(), p.va);
    }

    /// Pointer differences match native subtraction in every encoding
    /// combination within the same object (Fig. 4 additive rows).
    #[test]
    fn pointer_difference_is_format_independent(
        seed in 1u64..500,
        pers in any::<bool>(), idx in 0usize..8,
        off_a in 0u64..64, off_b in 0u64..64,
        enc_a in 0usize..2, enc_b in 0usize..2,
    ) {
        let w = build_world(seed);
        let a = w.ptr(pers, idx, off_a);
        let b = w.ptr(pers, idx, off_b);
        let mut eng = C11Engine::new(&w.space);
        let native = a.va.raw() as i64 - b.va.raw() as i64;
        prop_assert_eq!(eng.diff(a.encodings[enc_a], b.encodings[enc_b]).unwrap(), native);
    }

    /// `p + i` preserves the format and lands on the native address
    /// (Fig. 4: `$$ = pxy.val op i`, format tag survives).
    #[test]
    fn additive_ops_preserve_format(
        seed in 1u64..500,
        pers in any::<bool>(), idx in 0usize..8, off in 0u64..32,
        delta in -16i64..48, enc in 0usize..2,
    ) {
        let w = build_world(seed);
        let p = w.ptr(pers, idx, off);
        let moved = C11Engine::add(p.encodings[enc], delta);
        prop_assert_eq!(moved.format(), p.encodings[enc].format());
        // Where the result is still inside the object, dereference agrees.
        let target = p.va.raw() as i64 + delta;
        if target >= p.va.raw() as i64 - off as i64 {
            let mut eng = C11Engine::new(&w.space);
            if let Ok(t) = eng.deref_target(moved) {
                prop_assert_eq!(t.raw(), target as u64);
            }
        }
    }

    /// Dereference targets agree across encodings, and writes through one
    /// encoding are visible through the other.
    #[test]
    fn loads_and_stores_agree_across_encodings(
        seed in 1u64..500,
        idx in 0usize..8, off in 0u64..7, value in any::<u64>(),
    ) {
        let mut w = build_world(seed);
        let p = w.ptr(true, idx, off * 8);
        let mut eng = C11Engine::new(&w.space);
        let t0 = eng.deref_target(p.encodings[0]).unwrap();
        let t1 = eng.deref_target(p.encodings[1]).unwrap();
        prop_assert_eq!(t0, t1);
        w.space.write_u64(t0, value).unwrap();
        prop_assert_eq!(w.space.read_u64(t1).unwrap(), value);
    }

    /// The storeP value transformation is idempotent and space-correct:
    /// NVM destinations store relative or volatile-virtual values, DRAM
    /// destinations always store virtual values (Fig. 3 / Table I).
    #[test]
    fn assignment_transformation_is_sound(
        seed in 1u64..500,
        pers in any::<bool>(), idx in 0usize..8, off in 0u64..64, enc in 0usize..2,
        dest_nvm in any::<bool>(),
    ) {
        let w = build_world(seed);
        let p = w.ptr(pers, idx, off);
        let mut eng = C11Engine::new(&w.space);
        let dest = if dest_nvm { PtrSpace::Nvm } else { PtrSpace::Dram };
        let stored = eng.assign_value(dest, p.encodings[enc]).unwrap();
        // The stored value still designates the same location.
        prop_assert_eq!(eng.deref_target(stored).unwrap(), p.va);
        match dest {
            PtrSpace::Nvm => {
                if pers {
                    prop_assert_eq!(stored.format(), PtrFormat::Relative,
                        "persistent pointer in NVM must be relative");
                } else {
                    prop_assert_eq!(stored.format(), PtrFormat::Virtual);
                }
            }
            PtrSpace::Dram => prop_assert_eq!(stored.format(), PtrFormat::Virtual),
        }
        // Idempotent: re-assigning to the same space changes nothing.
        let again = eng.assign_value(dest, stored).unwrap();
        prop_assert_eq!(again, stored);
    }

    /// Null behaves like C null in every operation.
    #[test]
    fn null_semantics(seed in 1u64..100, pers in any::<bool>(), idx in 0usize..8, enc in 0usize..2) {
        let w = build_world(seed);
        let p = w.ptr(pers, idx, 0);
        let mut eng = C11Engine::new(&w.space);
        prop_assert!(!eng.eq(p.encodings[enc], UPtr::NULL).unwrap());
        prop_assert!(eng.eq(UPtr::NULL, UPtr::NULL).unwrap());
        prop_assert!(C11Engine::is_true(p.encodings[enc]));
        prop_assert!(!C11Engine::is_true(UPtr::NULL));
        prop_assert!(eng.deref_target(UPtr::NULL).is_err());
    }
}

/// Relocation: every persistent encoding keeps working after the pool moves;
/// cached virtual addresses do not. (Deterministic, not property-based.)
#[test]
fn relocation_preserves_relative_but_not_virtual() {
    let mut w = build_world(77);
    let p = w.ptr(true, 2, 24);
    w.space.write_u64(p.va, 0xfeed).unwrap();
    let rel_encoding = p.encodings[1];

    w.space.detach(w.pool).unwrap();
    w.space.attach(w.pool).unwrap();

    let mut eng = C11Engine::new(&w.space);
    let new_target = eng.deref_target(rel_encoding).unwrap();
    assert_eq!(w.space.read_u64(new_target).unwrap(), 0xfeed);
    // The old virtual address no longer resolves into the pool.
    assert!(w.space.va2ra(p.va).is_err());
}

/// The full-table smoke test: every operation class of Fig. 4 exercised
/// once with mixed formats, checking against native expectations.
#[test]
fn fig4_operation_classes_smoke() {
    let w = build_world(123);
    let p = w.ptr(true, 0, 16);
    let q = w.ptr(true, 0, 40);
    let d = w.ptr(false, 0, 8);
    let mut eng = C11Engine::new(&w.space);

    // casts
    assert_eq!(eng.to_int(p.encodings[1]).unwrap(), p.va.raw());
    // unary * (deref target)
    assert_eq!(eng.deref_target(p.encodings[1]).unwrap(), p.va);
    // additive
    assert_eq!(eng.diff(q.encodings[1], p.encodings[0]).unwrap(), 24);
    // indexing: p[3] with 8-byte elements
    assert_eq!(eng.index_target(p.encodings[1], 3, 8).unwrap(), p.va.add(24));
    // relational / equality
    assert!(eng.eq(p.encodings[0], p.encodings[1]).unwrap());
    assert_eq!(eng.cmp(p.encodings[1], q.encodings[0]).unwrap(), std::cmp::Ordering::Less);
    // logical
    assert!(C11Engine::is_true(p.encodings[1]));
    // assignment in all four (dest, src) space combinations
    for (dest, src) in [
        (PtrSpace::Nvm, p.encodings[0]),
        (PtrSpace::Nvm, p.encodings[1]),
        (PtrSpace::Dram, p.encodings[0]),
        (PtrSpace::Dram, p.encodings[1]),
    ] {
        let stored = eng.assign_value(dest, src).unwrap();
        assert_eq!(eng.deref_target(stored).unwrap(), p.va);
    }
    // volatile pointer into NVM keeps virtual format
    let vd = eng.assign_value(PtrSpace::Nvm, d.encodings[0]).unwrap();
    assert_eq!(vd.format(), PtrFormat::Virtual);
}
