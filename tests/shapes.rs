//! Cross-crate shape assertions: the qualitative results of the paper's
//! evaluation must hold in the reproduction at any scale —
//!
//! - all four builds compute identical results (soundness, §VII-B);
//! - HW is close to Volatile, SW is the slowest UTPR variant (Fig. 11);
//! - HW performs fewer hardware translations than Explicit (Fig. 12);
//! - only the SW build executes dynamic checks (Table V);
//! - storeP is a small fraction of accesses except on the rotation-heavy
//!   splay tree, and VALB traffic ≤ POLB traffic (Fig. 15);
//! - VALB latency barely matters (Fig. 14).

use utpr_kv::harness::{run_all_modes, run_benchmark, BenchResult, Benchmark};
use utpr_kv::workload::WorkloadSpec;
use utpr_ptr::Mode;
use utpr_sim::SimConfig;

fn spec() -> WorkloadSpec {
    WorkloadSpec { records: 500, operations: 2_500, read_fraction: 0.95, seed: 21 }
}

fn mode<'a>(rs: &'a [BenchResult], m: Mode) -> &'a BenchResult {
    rs.iter().find(|r| r.mode == m).unwrap()
}

#[test]
fn fig11_shape_holds_per_benchmark() {
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        let vol = mode(&rs, Mode::Volatile).cycles;
        let hw = mode(&rs, Mode::Hw).cycles;
        let sw = mode(&rs, Mode::Sw).cycles;
        let ex = mode(&rs, Mode::Explicit).cycles;
        assert!(hw >= vol * 0.999, "{}: hw {hw} below volatile {vol}", b.name());
        assert!(hw <= vol * 1.6, "{}: hw overhead too large ({})", b.name(), hw / vol);
        assert!(sw > hw, "{}: sw {sw} not slower than hw {hw}", b.name());
        assert!(sw > vol * 1.3, "{}: sw too fast ({})", b.name(), sw / vol);
        assert!(ex > hw, "{}: explicit {ex} not slower than hw {hw}", b.name());
    }
}

#[test]
fn bplus_extension_shows_lower_overheads_than_binary_trees() {
    // Wide nodes mean fewer pointer loads per key: the B+ tree's SW and
    // Explicit penalties must be no worse than RB's.
    let bp = run_all_modes(Benchmark::Bplus, SimConfig::table_iv(), &spec()).unwrap();
    let rb = run_all_modes(Benchmark::Rb, SimConfig::table_iv(), &spec()).unwrap();
    let ratio = |rs: &[BenchResult], m: Mode| mode(rs, m).cycles / mode(rs, Mode::Volatile).cycles;
    assert!(ratio(&bp, Mode::Sw) <= ratio(&rb, Mode::Sw) * 1.1);
    assert!(ratio(&bp, Mode::Hw) <= ratio(&rb, Mode::Hw) * 1.1);
}

#[test]
fn fig12_hw_translates_less_than_explicit() {
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        let hw = mode(&rs, Mode::Hw);
        let ex = mode(&rs, Mode::Explicit);
        let hw_tr = hw.sim.polb_accesses + hw.sim.valb_accesses;
        let ex_tr = ex.sim.polb_accesses + ex.sim.valb_accesses;
        assert!(
            ex_tr > hw_tr,
            "{}: explicit {ex_tr} translations vs hw {hw_tr}",
            b.name()
        );
    }
}

#[test]
fn table5_checks_only_in_sw() {
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        assert!(mode(&rs, Mode::Sw).ptr.dynamic_checks > 0, "{}", b.name());
        assert_eq!(mode(&rs, Mode::Hw).ptr.dynamic_checks, 0, "{}", b.name());
        assert_eq!(mode(&rs, Mode::Volatile).ptr.dynamic_checks, 0, "{}", b.name());
        assert_eq!(mode(&rs, Mode::Explicit).ptr.dynamic_checks, 0, "{}", b.name());
        // Conversions exist in both UTPR builds.
        assert!(mode(&rs, Mode::Sw).ptr.conversions() > 0, "{}", b.name());
        assert!(mode(&rs, Mode::Hw).ptr.conversions() > 0, "{}", b.name());
    }
}

#[test]
fn fig15_access_mix_shape() {
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        let hw = mode(&rs, Mode::Hw);
        let storep = hw.sim.storep_fraction();
        let valb = hw.sim.valb_fraction();
        let polb = hw.sim.polb_fraction();
        assert!(valb <= storep + 1e-9, "{}: valb {valb} > storeP {storep}", b.name());
        assert!(polb > valb, "{}: polb {polb} <= valb {valb}", b.name());
        if b != Benchmark::Splay {
            assert!(storep < 0.06, "{}: storeP fraction {storep}", b.name());
        }
    }
}

#[test]
fn fig13_sw_mispredicts_most() {
    let mut sw_wins = 0;
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        let sw = mode(&rs, Mode::Sw).sim.branch_mispredicts;
        let hw = mode(&rs, Mode::Hw).sim.branch_mispredicts;
        if sw > hw {
            sw_wins += 1;
        }
    }
    assert!(sw_wins >= 5, "SW should mispredict most on nearly all benchmarks: {sw_wins}/6");
}

#[test]
fn fig14_valb_latency_is_marginal_where_pointer_stores_are_rare() {
    // Paper: even 50-cycle VALB costs <10%. That claim rests on storeP
    // being rare (0.38% of accesses on their whole-program traces). Our
    // traces contain only data-structure accesses, so benchmarks with many
    // pointer stores (Splay splays on every GET; Hash rehashes inside the
    // measured window) feel the latency more — documented in
    // EXPERIMENTS.md. The low-storeP benchmarks must match the paper.
    let cases = [
        (Benchmark::Ll, 1.02),
        (Benchmark::Rb, 1.10),
        (Benchmark::Sg, 1.10),
        (Benchmark::Avl, 1.17),
        (Benchmark::Hash, 1.25),
    ];
    for (b, limit) in cases {
        let base = run_benchmark(b, Mode::Hw, SimConfig::table_iv(), &spec()).unwrap().cycles;
        let slow = run_benchmark(
            b,
            Mode::Hw,
            SimConfig::table_iv().with_valb_latency(50),
            &spec(),
        )
        .unwrap()
        .cycles;
        let ratio = slow / base;
        assert!(
            ratio < limit,
            "{}: 50-cycle VALB costs {:.1}%",
            b.name(),
            (ratio - 1.0) * 100.0
        );
    }
}

#[test]
fn sw_average_slowdown_in_paper_band() {
    let mut ratios = Vec::new();
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        ratios.push(mode(&rs, Mode::Sw).cycles / mode(&rs, Mode::Volatile).cycles);
    }
    let geomean =
        (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    // Paper: 2.75x average. Accept a generous band around it.
    assert!(geomean > 1.5 && geomean < 5.0, "sw geomean slowdown {geomean}");
}

#[test]
fn hw_average_overhead_small() {
    let mut ratios = Vec::new();
    for b in Benchmark::ALL {
        let rs = run_all_modes(b, SimConfig::table_iv(), &spec()).unwrap();
        ratios.push(mode(&rs, Mode::Hw).cycles / mode(&rs, Mode::Volatile).cycles);
    }
    let geomean =
        (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    // Paper: ~2% average overhead, 12% worst case. Accept up to 15% mean.
    assert!(geomean < 1.15, "hw geomean overhead {geomean}");
}
