//! Crash/relocation matrix: every index structure, loaded through the KV
//! store, must survive repeated restarts (each re-attaching the pool at a
//! different base) in both user-transparent builds — and, with the fault
//! engine armed, must recover cleanly from a crash injected at *every*
//! durable-write boundary of a transaction-wrapped workload.

use utpr::prelude::*;
use utpr::kv::faultsweep::sweep_structure;
use utpr::kv::workload::generate;

fn spec() -> WorkloadSpec {
    WorkloadSpec { records: 300, operations: 0, read_fraction: 1.0, seed: 31 }
}

fn crash_cycle<I: Index>(mode: Mode) {
    let mut space = AddressSpace::new(61);
    let pool = space.create_pool("crash", 32 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
    let w = generate(&spec());

    let mut store: KvStore<I> = KvStore::create(&mut env).unwrap();
    store.load(&mut env, &w).unwrap();
    env.set_root(site!("cm.save", StackLocal), store.index().descriptor()).unwrap();

    let mut bases = vec![env.space().attachment(pool).unwrap().base];
    for generation in 1..=3 {
        env.space_mut().restart();
        env.space_mut().open_pool("crash").unwrap();
        bases.push(env.space().attachment(pool).unwrap().base);

        let desc = env.root(site!("cm.load", KnownReturn)).unwrap();
        let mut reopened: KvStore<I> = KvStore::open(desc);
        // Each prior generation added one extra key after recovery.
        assert_eq!(
            reopened.len(&mut env).unwrap(),
            w.load_keys.len() as u64 + (generation - 1),
            "{} generation {generation}",
            I::NAME
        );
        for k in &w.load_keys {
            assert_eq!(
                reopened.get(&mut env, *k).unwrap(),
                Some(k ^ 0x5a5a_5a5a_5a5a_5a5a),
                "{} generation {generation} key {k}",
                I::NAME
            );
        }
        // Mutate after recovery so later generations verify fresh writes too.
        reopened.set(&mut env, 0xdead_0000 + generation, generation).unwrap();
        let got = reopened.get(&mut env, 0xdead_0000 + generation).unwrap();
        assert_eq!(got, Some(generation));
    }
    // The pool must actually have moved at least once across 4 attachments.
    let distinct: std::collections::HashSet<_> = bases.iter().map(|b| b.raw()).collect();
    assert!(distinct.len() > 1, "{}: pool never relocated", I::NAME);
}

#[test]
fn rb_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<RbTree>(Mode::Hw);
    crash_cycle::<RbTree>(Mode::Sw);
}

#[test]
fn avl_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<AvlTree>(Mode::Hw);
    crash_cycle::<AvlTree>(Mode::Sw);
}

#[test]
fn splay_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<SplayTree>(Mode::Hw);
    crash_cycle::<SplayTree>(Mode::Sw);
}

#[test]
fn scapegoat_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<ScapegoatTree>(Mode::Hw);
    crash_cycle::<ScapegoatTree>(Mode::Sw);
}

#[test]
fn hash_map_survives_crashes_hw_and_sw() {
    crash_cycle::<HashMapIndex>(Mode::Hw);
    crash_cycle::<HashMapIndex>(Mode::Sw);
}

/// Explicit-mode stores survive too: object ids are inherently stable.
#[test]
fn explicit_mode_also_recovers() {
    crash_cycle::<RbTree>(Mode::Explicit);
}

/// Exhaustive crash-point sweep: inject a crash at every durable-write
/// boundary of a transaction-wrapped workload, recover via the undo log, and
/// check structural invariants + contents against a prefix model. The seed
/// comes from `UTPR_QC_SEED`, so any failure this prints is replayable.
fn fault_sweep(bench: Benchmark) {
    let name = bench.name();
    let seed = utpr_qc::runner::base_seed();
    let spec = SweepSpec::small(seed);
    let report = sweep_structure(bench, &spec).unwrap();
    assert_eq!(report.tested, report.boundaries, "{name}: small scale must sweep every boundary");
    assert!(report.boundaries > 0, "{name}: workload produced no durable writes");
    assert!(report.rollbacks > 0, "{name}: no crash point ever tore a transaction");
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("FAIL {name}: {f}");
        }
        panic!(
            "{name}: {} of {} crash points failed — replay with UTPR_QC_SEED={seed}",
            report.failures.len(),
            report.boundaries
        );
    }
}

#[test]
fn fault_sweep_ll_every_crash_point_recovers() {
    fault_sweep(Benchmark::Ll);
}

#[test]
fn fault_sweep_hash_every_crash_point_recovers() {
    fault_sweep(Benchmark::Hash);
}

#[test]
fn fault_sweep_rb_every_crash_point_recovers() {
    fault_sweep(Benchmark::Rb);
}

#[test]
fn fault_sweep_splay_every_crash_point_recovers() {
    fault_sweep(Benchmark::Splay);
}

#[test]
fn fault_sweep_avl_every_crash_point_recovers() {
    fault_sweep(Benchmark::Avl);
}

#[test]
fn fault_sweep_sg_every_crash_point_recovers() {
    fault_sweep(Benchmark::Sg);
}

/// The whole sweep is bit-deterministic under a fixed seed.
#[test]
fn fault_sweep_is_deterministic() {
    let spec = SweepSpec::small(20260806);
    let a = sweep_structure(Benchmark::Rb, &spec).unwrap();
    let b = sweep_structure(Benchmark::Rb, &spec).unwrap();
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.failures.len(), b.failures.len());
}
