//! Crash/relocation matrix: every index structure, loaded through the KV
//! store, must survive repeated restarts (each re-attaching the pool at a
//! different base) in both user-transparent builds.

use utpr_ds::{AvlTree, HashMapIndex, Index, RbTree, ScapegoatTree, SplayTree};
use utpr_heap::AddressSpace;
use utpr_kv::workload::{generate, WorkloadSpec};
use utpr_kv::KvStore;
use utpr_ptr::{site, ExecEnv, Mode, NullSink};

fn spec() -> WorkloadSpec {
    WorkloadSpec { records: 300, operations: 0, read_fraction: 1.0, seed: 31 }
}

fn crash_cycle<I: Index>(mode: Mode) {
    let mut space = AddressSpace::new(61);
    let pool = space.create_pool("crash", 32 << 20).unwrap();
    let mut env = ExecEnv::new(space, mode, Some(pool), NullSink);
    let w = generate(&spec());

    let mut store: KvStore<I> = KvStore::create(&mut env).unwrap();
    store.load(&mut env, &w).unwrap();
    env.set_root(site!("cm.save", StackLocal), store.index().descriptor()).unwrap();

    let mut bases = vec![env.space().attachment(pool).unwrap().base];
    for generation in 1..=3 {
        env.space_mut().restart();
        env.space_mut().open_pool("crash").unwrap();
        bases.push(env.space().attachment(pool).unwrap().base);

        let desc = env.root(site!("cm.load", KnownReturn)).unwrap();
        let mut reopened: KvStore<I> = KvStore::open(desc);
        // Each prior generation added one extra key after recovery.
        assert_eq!(
            reopened.len(&mut env).unwrap(),
            w.load_keys.len() as u64 + (generation - 1),
            "{} generation {generation}",
            I::NAME
        );
        for k in &w.load_keys {
            assert_eq!(
                reopened.get(&mut env, *k).unwrap(),
                Some(k ^ 0x5a5a_5a5a_5a5a_5a5a),
                "{} generation {generation} key {k}",
                I::NAME
            );
        }
        // Mutate after recovery so later generations verify fresh writes too.
        reopened.set(&mut env, 0xdead_0000 + generation, generation).unwrap();
        let got = reopened.get(&mut env, 0xdead_0000 + generation).unwrap();
        assert_eq!(got, Some(generation));
    }
    // The pool must actually have moved at least once across 4 attachments.
    let distinct: std::collections::HashSet<_> = bases.iter().map(|b| b.raw()).collect();
    assert!(distinct.len() > 1, "{}: pool never relocated", I::NAME);
}

#[test]
fn rb_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<RbTree>(Mode::Hw);
    crash_cycle::<RbTree>(Mode::Sw);
}

#[test]
fn avl_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<AvlTree>(Mode::Hw);
    crash_cycle::<AvlTree>(Mode::Sw);
}

#[test]
fn splay_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<SplayTree>(Mode::Hw);
    crash_cycle::<SplayTree>(Mode::Sw);
}

#[test]
fn scapegoat_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<ScapegoatTree>(Mode::Hw);
    crash_cycle::<ScapegoatTree>(Mode::Sw);
}

#[test]
fn hash_map_survives_crashes_hw_and_sw() {
    crash_cycle::<HashMapIndex>(Mode::Hw);
    crash_cycle::<HashMapIndex>(Mode::Sw);
}

/// Explicit-mode stores survive too: object ids are inherently stable.
#[test]
fn explicit_mode_also_recovers() {
    crash_cycle::<RbTree>(Mode::Explicit);
}
