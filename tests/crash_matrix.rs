//! Crash/relocation matrix: every index structure, loaded through the KV
//! store, must survive repeated restarts (each re-attaching the pool at a
//! different base) in both user-transparent builds — and, with the fault
//! engine armed, must recover cleanly from a crash injected at *every*
//! durable-write boundary of a transaction-wrapped workload.

use utpr::prelude::*;
use utpr::kv::faultsweep::sweep_structure;
use utpr::kv::workload::generate;

fn spec() -> WorkloadSpec {
    WorkloadSpec { records: 300, operations: 0, read_fraction: 1.0, seed: 31 }
}

fn crash_cycle<I: Index>(mode: Mode) {
    let mut space = AddressSpace::new(61);
    let pool = space.create_pool("crash", 32 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
    let w = generate(&spec());

    let mut store: KvStore<I> = KvStore::create(&mut env).unwrap();
    store.load(&mut env, &w).unwrap();
    env.set_root(site!("cm.save", StackLocal), store.index().descriptor()).unwrap();

    let mut bases = vec![env.space().attachment(pool).unwrap().base];
    for generation in 1..=3 {
        env.space_mut().restart();
        env.space_mut().open_pool("crash").unwrap();
        bases.push(env.space().attachment(pool).unwrap().base);

        let desc = env.root(site!("cm.load", KnownReturn)).unwrap();
        let mut reopened: KvStore<I> = KvStore::open(desc);
        // Each prior generation added one extra key after recovery.
        assert_eq!(
            reopened.len(&mut env).unwrap(),
            w.load_keys.len() as u64 + (generation - 1),
            "{} generation {generation}",
            I::NAME
        );
        for k in &w.load_keys {
            assert_eq!(
                reopened.get(&mut env, *k).unwrap(),
                Some(k ^ 0x5a5a_5a5a_5a5a_5a5a),
                "{} generation {generation} key {k}",
                I::NAME
            );
        }
        // Mutate after recovery so later generations verify fresh writes too.
        reopened.set(&mut env, 0xdead_0000 + generation, generation).unwrap();
        let got = reopened.get(&mut env, 0xdead_0000 + generation).unwrap();
        assert_eq!(got, Some(generation));
    }
    // The pool must actually have moved at least once across 4 attachments.
    let distinct: std::collections::HashSet<_> = bases.iter().map(|b| b.raw()).collect();
    assert!(distinct.len() > 1, "{}: pool never relocated", I::NAME);
}

#[test]
fn rb_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<RbTree>(Mode::Hw);
    crash_cycle::<RbTree>(Mode::Sw);
}

#[test]
fn avl_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<AvlTree>(Mode::Hw);
    crash_cycle::<AvlTree>(Mode::Sw);
}

#[test]
fn splay_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<SplayTree>(Mode::Hw);
    crash_cycle::<SplayTree>(Mode::Sw);
}

#[test]
fn scapegoat_tree_survives_crashes_hw_and_sw() {
    crash_cycle::<ScapegoatTree>(Mode::Hw);
    crash_cycle::<ScapegoatTree>(Mode::Sw);
}

#[test]
fn hash_map_survives_crashes_hw_and_sw() {
    crash_cycle::<HashMapIndex>(Mode::Hw);
    crash_cycle::<HashMapIndex>(Mode::Sw);
}

/// Explicit-mode stores survive too: object ids are inherently stable.
#[test]
fn explicit_mode_also_recovers() {
    crash_cycle::<RbTree>(Mode::Explicit);
}

/// Exhaustive crash-point sweep: inject a crash at every durable-write
/// boundary of a transaction-wrapped workload, recover via the undo log, and
/// check structural invariants + contents against a prefix model. The seed
/// comes from `UTPR_QC_SEED`, so any failure this prints is replayable.
fn fault_sweep(bench: Benchmark) {
    let name = bench.name();
    let seed = utpr_qc::runner::base_seed();
    let spec = SweepSpec::small(seed);
    let report = sweep_structure(bench, &spec).unwrap();
    assert_eq!(report.tested, report.boundaries, "{name}: small scale must sweep every boundary");
    assert!(report.boundaries > 0, "{name}: workload produced no durable writes");
    assert!(report.rollbacks > 0, "{name}: no crash point ever tore a transaction");
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("FAIL {name}: {f}");
        }
        panic!(
            "{name}: {} of {} crash points failed — replay with UTPR_QC_SEED={seed}",
            report.failures.len(),
            report.boundaries
        );
    }
}

#[test]
fn fault_sweep_ll_every_crash_point_recovers() {
    fault_sweep(Benchmark::Ll);
}

#[test]
fn fault_sweep_hash_every_crash_point_recovers() {
    fault_sweep(Benchmark::Hash);
}

#[test]
fn fault_sweep_rb_every_crash_point_recovers() {
    fault_sweep(Benchmark::Rb);
}

#[test]
fn fault_sweep_splay_every_crash_point_recovers() {
    fault_sweep(Benchmark::Splay);
}

#[test]
fn fault_sweep_avl_every_crash_point_recovers() {
    fault_sweep(Benchmark::Avl);
}

#[test]
fn fault_sweep_sg_every_crash_point_recovers() {
    fault_sweep(Benchmark::Sg);
}

/// Torn-write sweeps: the same oracle battery under the ADR flush model,
/// where the in-flight write at the crash boundary lands partially and
/// unfenced lines drain word-by-lottery. The undo log's fence discipline
/// must make every recovery exact (or surface a typed corruption error —
/// never a silent wrong answer).
#[test]
fn torn_sweep_every_structure_recovers_or_detects() {
    let seed = utpr_qc::runner::base_seed();
    for bench in Benchmark::ALL {
        let name = bench.name();
        let spec = SweepSpec::small(seed).torn();
        let report = sweep_structure(bench, &spec).unwrap();
        assert_eq!(report.tested, report.boundaries, "{name}: torn sweep must be exhaustive");
        if !report.failures.is_empty() {
            for f in &report.failures {
                eprintln!("FAIL torn {name}: {f}");
            }
            panic!(
                "{name}: {} of {} torn crash points failed — replay with UTPR_QC_SEED={seed}",
                report.failures.len(),
                report.boundaries
            );
        }
    }
}

/// A corrupted undo-log word at rest is *detected* at re-attach, not
/// silently replayed into the data image: the page CRC sidecar fails
/// verification before `UndoLog::recover` ever reads the damaged count.
#[test]
fn torn_undo_log_word_is_detected_not_replayed() {
    let mut space = AddressSpace::new(77);
    let pool = space.create_pool("tornlog", 8 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let mut store: KvStore<RbTree> = KvStore::create(&mut env).unwrap();
    for k in 0..16u64 {
        store.set(&mut env, k, k + 100).unwrap();
    }
    env.set_root(site!("cm.torn-root", StackLocal), store.index().descriptor()).unwrap();
    env.with_txn(|_| Ok(())).unwrap(); // materialize the undo log before arming

    // Die mid-transaction so the log is active with live entries.
    env.space_mut().set_faults(utpr::heap::FaultPlan::crash_at(6));
    let crashed = env.with_txn(|env| store.set(env, 99, 1).map(|_| ())).is_err();
    assert!(crashed, "the armed transaction must die at boundary 6");

    let (mut space, _, _) = env.into_parts();
    let log_base = utpr::heap::UndoLog::open(&space, pool).unwrap().base_offset();
    space.restart(); // seals every resident page
    space.set_faults(utpr::heap::FaultPlan::disabled());

    // Retention error strikes the log's count word while the machine is
    // off (offset 8 in the [active][count][capacity] layout).
    let img = space.pool_store_mut().peek_mut(pool).unwrap();
    assert!(img.data_mut().corrupt_bit(log_base + 8, 5), "log page must be resident");

    // Re-attach detects the damage before any rollback can replay it.
    let err = space.open_pool("tornlog").unwrap_err();
    assert!(
        matches!(err, utpr::heap::HeapError::MediaCorruption { .. }),
        "expected MediaCorruption, got: {err}"
    );
    assert!(space.pool_store().is_quarantined(pool), "detected pools are quarantined");
}

/// The `peek_raw` oracle must stay outside the software-lookaside layer:
/// it is what the crash matrix and fault sweeps use to inspect stored
/// pointer bytes, so it can neither *read through* a stale cache entry nor
/// *warm* the cache and mask a translation bug it was brought in to catch.
#[test]
fn peek_raw_bypasses_translation_caches() {
    let mut space = AddressSpace::new(47);
    let pool = space.create_pool("oracle", 1 << 20).unwrap();
    let loc = space.pmalloc(pool, 64).unwrap();
    let va = space.ra2va(loc).unwrap();
    space.write_u64(va, 0xDEAD_BEEF_F00Du64).unwrap();
    let mut env = ExecEnv::builder(space).pool(pool).build();
    let p = UPtr::from_rel(loc);

    // The oracle agrees with the instrumented view of the same word…
    env.space().reset_trans_stats();
    for _ in 0..32 {
        assert_eq!(env.peek_raw(p, 0).unwrap(), 0xDEAD_BEEF_F00Du64);
    }
    // …without touching sPOLB/sVALB at all: no hits, no misses, no fills.
    let s = env.space().trans_stats();
    assert_eq!(
        (s.spolb_hits, s.spolb_misses, s.svalb_hits, s.svalb_misses),
        (0, 0, 0, 0),
        "peek_raw perturbed the lookasides: {s:?}"
    );

    // Warm the caches at the current base, then force a relocation: the
    // pool re-attaches at a different address and the oracle must follow
    // the *registry*, not any stamp-stale cache entry.
    let _ = env.space().ra2va(loc).unwrap();
    let old_base = env.space().attachment(pool).unwrap().base;
    env.space_mut().restart();
    env.space_mut().open_pool("oracle").unwrap();
    let new_base = env.space().attachment(pool).unwrap().base;
    assert_ne!(old_base, new_base, "restart must relocate the pool");
    assert_eq!(env.peek_raw(p, 0).unwrap(), 0xDEAD_BEEF_F00Du64);

    // And a detached pool faults identically through the oracle path.
    env.space_mut().detach(pool).unwrap();
    assert!(env.peek_raw(p, 0).is_err(), "oracle must fault on a detached pool");
}

/// Concurrent crash sweep: N logical threads, each with its own store,
/// slab, and undo-log slot over ONE shared pool, interleaved by a seeded
/// schedule. A crash is injected at every durable-write boundary of that
/// interleaved history; recovery rolls back every thread's torn
/// transaction and the three faultsweep oracles run per thread. Failures
/// print the replay seed.
#[test]
fn concurrent_fault_sweep_every_crash_point_recovers() {
    let seed = utpr_qc::runner::base_seed();
    let spec = utpr::kv::mt::MtSweepSpec {
        threads: 3,
        ops_per_thread: 4,
        ..utpr::kv::mt::MtSweepSpec::small(seed)
    };
    let report = utpr::kv::mt::mt_crash_sweep(&spec).unwrap();
    assert_eq!(report.tested, report.boundaries, "small scale must sweep every boundary");
    assert!(report.boundaries > 0, "interleaved workload produced no durable writes");
    assert!(report.rollbacks > 0, "no crash point ever tore a transaction");
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("FAIL mt: {f}");
        }
        panic!(
            "mt: {} of {} crash points failed — replay with UTPR_QC_SEED={seed}",
            report.failures.len(),
            report.boundaries
        );
    }
}

/// The concurrent sweep replays bit-for-bit under a fixed seed, and its
/// seeded schedules genuinely interleave the threads (the round-robin
/// order is just one point in the explored space).
#[test]
fn concurrent_fault_sweep_is_deterministic() {
    let spec = utpr::kv::mt::MtSweepSpec::small(20260808);
    let a = utpr::kv::mt::mt_crash_sweep(&spec).unwrap();
    let b = utpr::kv::mt::mt_crash_sweep(&spec).unwrap();
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.failures.len(), b.failures.len());
}

/// The whole sweep is bit-deterministic under a fixed seed.
#[test]
fn fault_sweep_is_deterministic() {
    let spec = SweepSpec::small(20260806);
    let a = sweep_structure(Benchmark::Rb, &spec).unwrap();
    let b = sweep_structure(Benchmark::Rb, &spec).unwrap();
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.failures.len(), b.failures.len());
}

// ---------------------------------------------------------------------------
// Quarantine escape hatches racing concurrent readers.
//
// `quarantined_page` (peek), `release_quarantine`, and `reseal_all` are the
// maintenance hatches the repair path uses while guarded traffic is live.
// These tests drive them against concurrent `Handle` readers on the seeded
// turnstile: every interleaving is a pure function of the seed, and every
// reader-visible failure must be `MediaCorruption` naming the quarantined
// page — never a wrong value, never a panic.

use utpr::ds::concurrent::Handle;
use utpr::heap::pagestore::PAGE_SIZE;
use utpr::heap::{HeapError, RetentionConfig, ScrubConfig, Scrubber};
use utpr_qc::sched::Turnstile;

const QKEYS: u64 = 32;

fn qvalue(k: u64) -> u64 {
    k.wrapping_mul(31) + 7
}

/// Builds a sealed shared pool: a populated `ConcHash` behind the root,
/// plus a padding block the fault will strike — so repair never changes
/// any key's bytes and post-repair reads have one deterministic answer.
fn quarantine_base(name: &str) -> (std::sync::Arc<SharedPool>, u64) {
    let sp = SharedPool::create(name, 8 << 20, 8).unwrap();
    sp.configure_retention(RetentionConfig { seal_lag: 1, work_per_tick: 100 });
    let pad = sp.alloc_raw(512).unwrap();
    for w in 0..64u64 {
        sp.write_u64(pad + w * 8, 0xABAD_1DEA ^ w);
    }
    let mut space = AddressSpace::new(929);
    let pool = space.adopt_shared(&sp).unwrap();
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let idx = ConcHash::create(&mut env).unwrap();
    let mut h = Handle::new(&mut env, FlushStrategy::FliT).unwrap();
    for k in 0..QKEYS {
        idx.insert(&mut h, k, qvalue(k)).unwrap();
    }
    env.set_root(site!("cm.q-root", StackLocal), idx.descriptor()).unwrap();
    env.space_mut().fence();
    sp.seal_all_now();
    (sp, pad)
}

/// One seeded race: two readers stream gets through guarded handles while
/// a maintenance thread plants a retention flip in the pad block, verifies
/// (quarantining the pool), and then repairs through the escape hatches.
/// Returns (grants, per-reader (ok, media_errors)) for replay comparison.
fn quarantine_race(seed: u64, run: u32) -> (u64, Vec<(u32, u32)>) {
    let (sp, pad) = quarantine_base(&format!("q-escape-{seed:x}-{run}"));
    let bad_page = (pad + 100) / PAGE_SIZE;
    let readers = 2usize;
    let ts = Turnstile::new(readers + 1, seed);
    let tallies: std::sync::Mutex<Vec<(u32, u32)>> =
        std::sync::Mutex::new(vec![(0, 0); readers]);
    // The fault is planted only once every reader holds an open handle:
    // setup (adopt, root open, handle creation) unwraps guarded reads, so
    // quarantining mid-setup would panic a reader instead of exercising
    // the per-op error path this test is about. `ready` transitions at
    // schedule-determined points, so the race stays replayable per seed.
    let ready = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..readers {
            let (sp, ts, tallies, ready) = (&sp, &ts, &tallies, &ready);
            s.spawn(move || {
                // First yield *before* touching the pool: setup takes real
                // pool locks and must be serialized under the baton too.
                if ts.yield_point(t).is_err() {
                    ts.finish(t);
                    return;
                }
                let mut space = AddressSpace::new(seed ^ (t as u64 + 1));
                let pool = space.adopt_shared(sp).unwrap();
                let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
                let desc = env.root(site!("cm.q-open", KnownReturn)).unwrap();
                let idx = ConcHash::open(desc);
                let yielder = || {
                    ts.yield_point(t).map_err(|_| HeapError::CrashInjected { writes: u64::MAX })
                };
                let mut h =
                    Handle::new(&mut env, FlushStrategy::FliT).unwrap().with_yielder(&yielder);
                ready.fetch_add(1, std::sync::atomic::Ordering::Release);
                let (mut ok, mut media) = (0u32, 0u32);
                for j in 0..16u64 {
                    // Read-only ops may touch no flush point, so yield
                    // explicitly between ops — otherwise a reader runs
                    // its whole script in one baton hold and the
                    // quarantine window can never interleave with it.
                    if ts.yield_point(t).is_err() {
                        break;
                    }
                    let k = (j * 7 + t as u64) % QKEYS;
                    match idx.get(&mut h, k) {
                        Ok(got) => {
                            assert_eq!(
                                got,
                                Some(qvalue(k)),
                                "reader {t} op {j}: wrong value for key {k} (seed {seed})"
                            );
                            ok += 1;
                        }
                        Err(HeapError::MediaCorruption { page, .. }) => {
                            assert_eq!(
                                page, bad_page,
                                "reader {t} op {j}: quarantine named the wrong page (seed {seed})"
                            );
                            media += 1;
                        }
                        Err(other) => panic!("reader {t} op {j}: unexpected error {other} (seed {seed})"),
                    }
                }
                tallies.lock().unwrap()[t] = (ok, media);
                ts.finish(t);
            });
        }
        let (sp, ts, ready) = (&sp, &ts, &ready);
        s.spawn(move || {
            let slot = readers;
            let mut scrub = Scrubber::new(ScrubConfig::default());
            let mut planted = false;
            let mut age = 0u32;
            loop {
                if ts.yield_point(slot).is_err() {
                    break;
                }
                if !planted && ready.load(std::sync::atomic::Ordering::Acquire) == readers {
                    // Plant the retention flip and detect it: the pool
                    // quarantines and guarded reads start refusing.
                    assert!(sp.corrupt_bit(pad + 100, 5), "pad must be resident");
                    assert_eq!(sp.verify_all(), vec![bad_page]);
                    assert_eq!(sp.quarantined_page(), Some(bad_page), "peek sees the page");
                    planted = true;
                    age = 0;
                } else if sp.quarantined_page().is_some() && age >= 2 {
                    // Let readers bounce off the quarantine for a couple of
                    // grants, then run the escape-hatch protocol: salvage,
                    // verify, reseal, release (Scrubber::repair's order).
                    scrub.repair(sp);
                    assert!(sp.quarantined_page().is_none(), "release lifts the peek");
                } else if sp.quarantined_page().is_none() && ts.active_count() <= 1 {
                    break;
                }
                age += 1;
            }
            // Never retire while the pool is still quarantined: readers
            // would be wedged against a quarantine nobody will lift.
            if sp.quarantined_page().is_some() {
                scrub.repair(sp);
            }
            assert_eq!(scrub.stats().repairs, 1, "exactly one repair episode (seed {seed})");
            ts.finish(slot);
        });
    });

    let (i, d, c) = sp.media_flips();
    assert_eq!((i, d, c), (1, 1, 0), "the planted flip is detected, never silent");
    assert!(sp.quarantined_page().is_none());
    (ts.grants(), tallies.into_inner().unwrap())
}

/// Readers racing the quarantine see only typed `MediaCorruption` errors
/// naming the quarantined page (never a wrong value), resume reading the
/// exact pre-fault values once `release_quarantine` lifts the gate, and
/// the whole interleaving replays bit-for-bit per seed.
#[test]
fn quarantine_escape_hatches_race_guarded_readers() {
    for seed in [11u64, 95, 0x5eed] {
        let (grants_a, tallies_a) = quarantine_race(seed, 0);
        let (grants_b, tallies_b) = quarantine_race(seed, 1);
        assert_eq!(grants_a, grants_b, "seed {seed}: schedule diverged across replays");
        assert_eq!(tallies_a, tallies_b, "seed {seed}: reader outcomes diverged across replays");
        for (t, (ok, _)) in tallies_a.iter().enumerate() {
            assert!(*ok > 0, "seed {seed}: reader {t} never completed a read");
        }
        let media_total: u32 = tallies_a.iter().map(|(_, m)| m).sum();
        assert!(media_total > 0, "seed {seed}: no reader ever hit the quarantine window");
    }
}

/// Misusing the release hatch — lifting the quarantine without salvage +
/// reseal — cannot bless the damage: the stale checksum re-detects the
/// same page at the next verify, and only the full repair protocol
/// (salvage, verify, reseal, release) restores guarded access for good.
#[test]
fn premature_quarantine_release_is_recaught_by_the_next_verify() {
    let (sp, pad) = quarantine_base("q-premature");
    let bad_page = (pad + 100) / PAGE_SIZE;
    assert!(sp.corrupt_bit(pad + 100, 5));
    assert_eq!(sp.verify_all(), vec![bad_page]);
    assert_eq!(sp.quarantined_page(), Some(bad_page));

    // Escape hatch misuse: release without repairing anything.
    sp.release_quarantine();
    assert!(sp.quarantined_page().is_none(), "guarded access reopens…");
    assert_eq!(sp.verify_all(), vec![bad_page], "…but the damage is still there");
    assert_eq!(sp.quarantined_page(), Some(bad_page), "and the next verify re-quarantines it");

    // The full protocol clears it for good.
    let mut scrub = Scrubber::new(ScrubConfig::default());
    let pass = scrub.repair(&sp);
    assert!(pass.blocks_recovered > 0);
    assert!(sp.quarantined_page().is_none());
    assert!(sp.verify_all().is_empty(), "reseal blessed the repaired image");
    let (i, d, c) = sp.media_flips();
    assert_eq!(i, d + c, "accounting stays balanced through the misuse");

    // Guarded reads return the exact pre-fault values: the flip struck
    // the pad block, so repair changed no key's bytes.
    let mut space = AddressSpace::new(31);
    let pool = space.adopt_shared(&sp).unwrap();
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let desc = env.root(site!("cm.q-after", KnownReturn)).unwrap();
    let idx = ConcHash::open(desc);
    let mut h = Handle::new(&mut env, FlushStrategy::FliT).unwrap();
    for k in 0..QKEYS {
        assert_eq!(idx.get(&mut h, k).unwrap(), Some(qvalue(k)));
    }
}
