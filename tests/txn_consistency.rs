//! Crash consistency through persistent transactions (paper §I, §VI): the
//! application encloses calls to the *unmodified* library in a transaction;
//! undo logging is inserted transparently at the store instructions. A
//! crash mid-call rolls the structure back to its pre-call state.
//!
//! The red-black tree code in `utpr-ds` knows nothing about transactions —
//! exactly the paper's "no code change is needed in the Boost library"
//! claim extended to crash consistency.

use utpr_ds::{IndexCore, IndexOps, RbTree};
use utpr_heap::{AddressSpace, UndoLog};
use utpr_ptr::{site, ExecEnv, Mode, NullSink};

fn setup() -> (ExecEnv<NullSink>, RbTree, Vec<u64>) {
    let mut space = AddressSpace::new(404);
    let pool = space.create_pool("txn-kv", 16 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let mut tree = RbTree::create(&mut env).unwrap();
    let keys: Vec<u64> = (0..100).map(|k| k * 13 % 251).collect();
    for k in &keys {
        tree.insert(&mut env, *k, k * 10).unwrap();
    }
    env.set_root(site!("txn.save", StackLocal), tree.descriptor()).unwrap();
    (env, tree, keys)
}

#[test]
fn committed_library_call_is_durable() {
    let (mut env, mut tree, keys) = setup();
    env.with_txn(|env| tree.insert(env, 9999, 1)).unwrap(); // unmodified library call

    env.space_mut().restart();
    let pool = env.space_mut().open_pool("txn-kv").unwrap();
    assert!(!UndoLog::recover(env.space_mut(), pool).unwrap());
    let mut tree = RbTree::open(env.root(site!("txn.load", KnownReturn)).unwrap());
    assert_eq!(tree.get(&mut env, 9999).unwrap(), Some(1));
    assert_eq!(tree.validate(&mut env).unwrap(), keys.len() as u64 + 1);
}

#[test]
fn crash_mid_library_call_rolls_back_to_consistent_tree() {
    let (mut env, mut tree, keys) = setup();
    let len_before = tree.len(&mut env).unwrap();

    env.txn_begin().unwrap();
    // The library call completes its stores, but the transaction never
    // commits — modelling a crash at any point inside/after the call.
    tree.insert(&mut env, 9999, 1).unwrap();
    assert_eq!(tree.get(&mut env, 9999).unwrap(), Some(1), "visible before crash");

    env.space_mut().restart();
    let pool = env.space_mut().open_pool("txn-kv").unwrap();
    assert!(UndoLog::recover(env.space_mut(), pool).unwrap(), "torn txn rolled back");

    let mut tree = RbTree::open(env.root(site!("txn.load2", KnownReturn)).unwrap());
    // The insert vanished; every invariant and every old key intact.
    assert_eq!(tree.get(&mut env, 9999).unwrap(), None);
    assert_eq!(tree.len(&mut env).unwrap(), len_before);
    assert_eq!(tree.validate(&mut env).unwrap(), len_before);
    for k in &keys {
        assert_eq!(tree.get(&mut env, *k).unwrap(), Some(k * 10));
    }
}

#[test]
fn abort_rolls_back_a_batch_of_calls() {
    let (mut env, mut tree, _keys) = setup();
    let len_before = tree.len(&mut env).unwrap();

    env.txn_begin().unwrap();
    for k in 5000..5020u64 {
        tree.insert(&mut env, k, k).unwrap();
    }
    // Includes structural deletions inside the same transaction.
    tree.remove(&mut env, 5010).unwrap();
    env.txn_abort().unwrap();

    assert_eq!(tree.len(&mut env).unwrap(), len_before);
    assert_eq!(tree.validate(&mut env).unwrap(), len_before);
    for k in 5000..5020u64 {
        assert_eq!(tree.get(&mut env, k).unwrap(), None, "key {k} leaked");
    }
}

#[test]
fn transactions_do_not_nest_and_require_a_pool() {
    let (mut env, _tree, _keys) = setup();
    env.txn_begin().unwrap();
    assert!(env.txn_begin().is_err(), "nesting rejected");
    env.txn_commit().unwrap();
    assert!(env.txn_commit().is_err(), "double commit rejected");

    let space = AddressSpace::new(1);
    let mut volatile_env = ExecEnv::builder(space).build();
    assert!(volatile_env.txn_begin().is_err(), "no pool, no transaction");
}

#[test]
fn sw_mode_transactions_work_identically() {
    let mut space = AddressSpace::new(77);
    let pool = space.create_pool("txn-sw", 16 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(Mode::Sw).pool(pool).build();
    let mut tree = RbTree::create(&mut env).unwrap();
    tree.insert(&mut env, 1, 10).unwrap();
    env.txn_begin().unwrap();
    tree.insert(&mut env, 2, 20).unwrap();
    env.txn_abort().unwrap();
    assert_eq!(tree.get(&mut env, 1).unwrap(), Some(10));
    assert_eq!(tree.get(&mut env, 2).unwrap(), None);
    tree.validate(&mut env).unwrap();
}
