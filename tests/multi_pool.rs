//! Multi-pool scenarios: programs that juggle many pools at once — the
//! regime where the POLB's capacity actually matters (a single-pool program
//! always hits) and where cross-pool pointer rules apply.

use utpr_heap::AddressSpace;
use utpr_ptr::{site, ExecEnv, Mode, Placement, UPtr};
use utpr_sim::{Machine, RangeEntry, SimConfig};

fn build_env(pools: usize, sim: SimConfig) -> (ExecEnv<Machine>, Vec<utpr_heap::PoolId>) {
    let mut space = AddressSpace::new(0x9001);
    let ids: Vec<_> = (0..pools)
        .map(|i| space.create_pool(&format!("shard-{i}"), 4 << 20).unwrap())
        .collect();
    let ranges: Vec<RangeEntry> = space
        .attachments()
        .iter()
        .map(|a| RangeEntry { base: a.base.raw(), size: a.size, pool: a.pool.raw() })
        .collect();
    let mut machine = Machine::new(sim);
    machine.set_pool_ranges(ranges);
    let env = ExecEnv::builder(space).mode(Mode::Hw).pool(ids[0]).sink(machine).build();
    (env, ids)
}

#[test]
fn cross_pool_pointers_resolve_and_stay_relative() {
    let (mut env, ids) = build_env(4, SimConfig::table_iv());
    // An object in pool 0 pointing at objects in pools 1..3.
    let hub = env.alloc_in(site!("mp.hub", AllocResult), Placement::Pool(ids[0]), 64).unwrap();
    let mut spokes = Vec::new();
    for (i, id) in ids.iter().enumerate().skip(1) {
        let s = env.alloc_in(site!("mp.spoke", AllocResult), Placement::Pool(*id), 32).unwrap();
        env.write_u64(site!("mp.tag", AllocResult), s, 0, 1000 + i as u64).unwrap();
        env.write_ptr(site!("mp.link", MemLoad), hub, (i as i64) * 8, s).unwrap();
        spokes.push(s);
    }
    // Stored cross-pool pointers are relative and carry the right pool ids.
    for (i, _) in ids.iter().enumerate().skip(1) {
        let raw = env.peek_raw(hub, (i as i64) * 8).unwrap();
        assert_eq!(raw >> 63, 1, "cross-pool pointer not relative");
        let p = UPtr::from_raw(raw);
        assert_eq!(p.as_rel().unwrap().pool, ids[i]);
        let q = env.read_ptr(site!("mp.load", MemLoad), hub, (i as i64) * 8).unwrap();
        assert_eq!(env.read_u64(site!("mp.rd", MemLoad), q, 0).unwrap(), 1000 + i as u64);
    }
}

#[test]
fn cross_pool_graph_survives_restart_with_independent_relocation() {
    let (mut env, ids) = build_env(3, SimConfig::table_iv());
    let hub = env.alloc_in(site!("mp.hub2", AllocResult), Placement::Pool(ids[0]), 32).unwrap();
    let far = env.alloc_in(site!("mp.far", AllocResult), Placement::Pool(ids[2]), 32).unwrap();
    env.write_u64(site!("mp.val", AllocResult), far, 0, 777).unwrap();
    env.write_ptr(site!("mp.link2", MemLoad), hub, 0, far).unwrap();
    env.set_root(site!("mp.save", StackLocal), hub).unwrap();

    env.space_mut().restart();
    // Pools reopened in a different order — each gets an unrelated base.
    env.space_mut().open_pool("shard-2").unwrap();
    env.space_mut().open_pool("shard-0").unwrap();
    env.space_mut().open_pool("shard-1").unwrap();
    let hub = env.root(site!("mp.load-root", KnownReturn)).unwrap();
    let far = env.read_ptr(site!("mp.follow", MemLoad), hub, 0).unwrap();
    assert_eq!(env.read_u64(site!("mp.rd2", MemLoad), far, 0).unwrap(), 777);
}

#[test]
fn polb_capacity_matters_with_many_pools() {
    // 64 short chains, one per pool, walked round-robin so nearly every
    // burst switches pools: a 4-entry POLB walks the POW constantly, a
    // 128-entry POLB holds every pool.
    let run = |polb_entries: usize| -> (f64, f64) {
        let mut cfg = SimConfig::table_iv();
        cfg.polb.entries = polb_entries;
        let (mut env, ids) = build_env(64, cfg);
        let mut trees = Vec::new();
        for id in &ids {
            // Build each shard's tree in its own pool.
            let mut space_tree = {
                // Index::create uses the default placement; emulate per-pool
                // placement by allocating the descriptor and nodes there via
                // a temporary default. Simplest: descriptor in pool 0 is
                // fine for timing purposes, but nodes must spread — so use
                // alloc_in for a tiny manual chain instead of RbTree.
                let head = env
                    .alloc_in(site!("mp.chain", AllocResult), Placement::Pool(*id), 32)
                    .unwrap();
                let mut prev = head;
                for v in 0..2u64 {
                    let n = env
                        .alloc_in(site!("mp.chain.n", AllocResult), Placement::Pool(*id), 32)
                        .unwrap();
                    env.write_u64(site!("mp.chain.v", AllocResult), n, 0, v).unwrap();
                    env.write_ptr(site!("mp.chain.link", MemLoad), prev, 8, n).unwrap();
                    prev = n;
                }
                head
            };
            let _ = &mut space_tree;
            trees.push(space_tree);
        }
        env.sink_mut().reset_measurement();
        // Round-robin walks: every hop switches pools.
        let mut sum = 0u64;
        for round in 0..20 {
            for head in &trees {
                let mut p = env.read_ptr(site!("mp.walk.head", MemLoad), *head, 8).unwrap();
                while !env.ptr_is_null(site!("mp.walk.null", StackLocal), p) {
                    sum = sum
                        .wrapping_add(env.read_u64(site!("mp.walk.v", MemLoad), p, 0).unwrap());
                    p = env.read_ptr(site!("mp.walk.next", MemLoad), p, 8).unwrap();
                }
            }
            std::hint::black_box(round);
        }
        std::hint::black_box(sum);
        let stats = env.sink().stats();
        let miss_rate = stats.polb_misses as f64 / stats.polb_accesses.max(1) as f64;
        (env.sink().cycles(), miss_rate)
    };
    let (cycles_small, miss_small) = run(4);
    let (cycles_big, miss_big) = run(128);
    // Round-robin over 64 pools: with 4 entries every pool switch misses
    // (one POW walk per short same-pool burst); with 128 entries everything
    // hits after the first round.
    assert!(miss_small > 0.15, "4-entry POLB should miss each switch: {miss_small}");
    assert!(miss_big < 0.01, "128-entry POLB should hold all pools: {miss_big}");
    assert!(
        cycles_small > cycles_big * 1.03,
        "thrashing must cost time: {cycles_small} vs {cycles_big}"
    );
}
