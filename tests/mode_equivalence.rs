//! The central soundness theorem of the paper, as a property test: *any*
//! program — modelled as a random sequence of allocations, field reads,
//! field writes, pointer links, comparisons, and frees over an object
//! graph — observes exactly the same values in all four builds (Volatile,
//! Explicit, SW, HW), and in the persistent builds every pointer at rest in
//! NVM is in relative format.

use utpr_qc::prelude::*;
use utpr_heap::AddressSpace;
use utpr_ptr::{site, CheckPolicy, ExecEnv, Mode, UPtr};

/// One abstract program step over a growing object graph.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Allocate a new object (64 bytes: 4 data words + 4 pointer slots).
    Alloc,
    /// Write `value` into data word `word` of object `obj`.
    WriteData { obj: usize, word: u8, value: u64 },
    /// Read data word `word` of object `obj` (observed).
    ReadData { obj: usize, word: u8 },
    /// Store a pointer to object `src` into pointer slot `slot` of `dst`.
    Link { dst: usize, slot: u8, src: usize },
    /// Load pointer slot `slot` of `obj` and read its target's word 0
    /// (observed; 0 when null).
    FollowLink { obj: usize, slot: u8 },
    /// Compare the pointers of objects `a` and `b` (observed).
    Compare { a: usize, b: usize },
    /// Null-check pointer slot `slot` of `obj` (observed).
    CheckNull { obj: usize, slot: u8 },
}

fn step_strategy() -> OneOf<Step> {
    one_of![
        3 => Just(Step::Alloc),
        4 => (0usize..64, 0u8..4, any::<u64>())
            .prop_map(|(obj, word, value)| Step::WriteData { obj, word, value }),
        4 => (0usize..64, 0u8..4).prop_map(|(obj, word)| Step::ReadData { obj, word }),
        3 => (0usize..64, 0u8..4, 0usize..64)
            .prop_map(|(dst, slot, src)| Step::Link { dst, slot, src }),
        4 => (0usize..64, 0u8..4).prop_map(|(obj, slot)| Step::FollowLink { obj, slot }),
        2 => (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Compare { a, b }),
        2 => (0usize..64, 0u8..4).prop_map(|(obj, slot)| Step::CheckNull { obj, slot }),
    ]
}

const DATA_BASE: i64 = 0; // words 0..4
const PTR_BASE: i64 = 32; // slots 0..4

/// Executes the program in one mode and returns the observation trace.
fn execute(steps: &[Step], mode: Mode, policy: CheckPolicy) -> Vec<u64> {
    let mut space = AddressSpace::new(0x5EED ^ mode.label().len() as u64);
    let pool = space.create_pool("equiv", 8 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
    env.set_check_policy(policy);
    let mut objects: Vec<UPtr> = Vec::new();
    let mut trace = Vec::new();

    for step in steps {
        match *step {
            Step::Alloc => {
                let p = env.alloc(site!("eq.alloc", AllocResult), 64).unwrap();
                // Zero the pointer slots so loads are well-defined.
                for s in 0..4 {
                    env.write_ptr(site!("eq.init", AllocResult), p, PTR_BASE + s * 8, UPtr::NULL)
                        .unwrap();
                }
                objects.push(p);
            }
            Step::WriteData { obj, word, value } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                env.write_u64(site!("eq.wd", Param), p, DATA_BASE + i64::from(word) * 8, value)
                    .unwrap();
            }
            Step::ReadData { obj, word } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                let v = env
                    .read_u64(site!("eq.rd", Param), p, DATA_BASE + i64::from(word) * 8)
                    .unwrap();
                trace.push(v);
            }
            Step::Link { dst, slot, src } if !objects.is_empty() => {
                let d = objects[dst % objects.len()];
                let s = objects[src % objects.len()];
                env.write_ptr(site!("eq.link", MemLoad), d, PTR_BASE + i64::from(slot) * 8, s)
                    .unwrap();
            }
            Step::FollowLink { obj, slot } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                let q = env
                    .read_ptr(site!("eq.follow", MemLoad), p, PTR_BASE + i64::from(slot) * 8)
                    .unwrap();
                if env.ptr_is_null(site!("eq.follow-null", StackLocal), q) {
                    trace.push(0);
                } else {
                    let v = env.read_u64(site!("eq.follow-rd", MemLoad), q, 0).unwrap();
                    trace.push(v.wrapping_add(1));
                }
            }
            Step::Compare { a, b } if !objects.is_empty() => {
                let pa = objects[a % objects.len()];
                let pb = objects[b % objects.len()];
                let eq = env.ptr_eq(site!("eq.cmp", Param), pa, pb).unwrap();
                trace.push(u64::from(eq));
            }
            Step::CheckNull { obj, slot } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                let q = env
                    .read_ptr(site!("eq.cn", MemLoad), p, PTR_BASE + i64::from(slot) * 8)
                    .unwrap();
                trace.push(u64::from(env.ptr_is_null(site!("eq.cn-null", StackLocal), q)));
            }
            _ => {} // op before any allocation: no-op in every mode
        }
    }

    // Stored-format invariant for the persistent builds: every non-null
    // pointer slot holds a relative (bit-63) value.
    if mode == Mode::Hw || mode == Mode::Sw {
        for p in &objects {
            for s in 0..4 {
                let raw = env.peek_raw(*p, PTR_BASE + s * 8).unwrap();
                assert!(raw == 0 || raw >> 63 == 1, "non-relative pointer at rest in NVM");
            }
        }
    }
    trace
}

props! {
    #![cases(96)]

    /// All four builds observe identical traces on arbitrary programs.
    #[test]
    fn four_builds_observe_identical_traces(steps in collection::vec(step_strategy(), 1..120)) {
        let reference = execute(&steps, Mode::Volatile, CheckPolicy::Inferred);
        for mode in [Mode::Explicit, Mode::Sw, Mode::Hw] {
            let got = execute(&steps, mode, CheckPolicy::Inferred);
            prop_assert_eq!(&got, &reference, "{} diverged", mode.label());
        }
    }

    /// The SW build's check policy never changes observable behaviour —
    /// checks are pure overhead (the paper's "just an optimization" claim
    /// about keeping or converting relative pointers).
    #[test]
    fn check_policy_is_observation_invariant(steps in collection::vec(step_strategy(), 1..80)) {
        let inferred = execute(&steps, Mode::Sw, CheckPolicy::Inferred);
        let always = execute(&steps, Mode::Sw, CheckPolicy::AlwaysCheck);
        let oracle = execute(&steps, Mode::Sw, CheckPolicy::Oracle);
        prop_assert_eq!(&always, &inferred);
        prop_assert_eq!(&oracle, &inferred);
    }
}
