//! The central soundness theorem of the paper, as a property test: *any*
//! program — modelled as a random sequence of allocations, field reads,
//! field writes, pointer links, comparisons, and frees over an object
//! graph — observes exactly the same values in all four builds (Volatile,
//! Explicit, SW, HW), and in the persistent builds every pointer at rest in
//! NVM is in relative format.

use utpr_qc::prelude::*;
use utpr_ds::{AvlTree, HashMapIndex, Index, LinkedList, RbTree, ScapegoatTree, SplayTree};
use utpr_heap::{AddressSpace, PoolId, RelLoc};
use utpr_kv::KvStore;
use utpr_ptr::{site, CheckPolicy, ExecEnv, MemEvent, Mode, PtrKind, PtrStats, TimingSink, UPtr};

/// One abstract program step over a growing object graph.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Allocate a new object (64 bytes: 4 data words + 4 pointer slots).
    Alloc,
    /// Write `value` into data word `word` of object `obj`.
    WriteData { obj: usize, word: u8, value: u64 },
    /// Read data word `word` of object `obj` (observed).
    ReadData { obj: usize, word: u8 },
    /// Store a pointer to object `src` into pointer slot `slot` of `dst`.
    Link { dst: usize, slot: u8, src: usize },
    /// Load pointer slot `slot` of `obj` and read its target's word 0
    /// (observed; 0 when null).
    FollowLink { obj: usize, slot: u8 },
    /// Compare the pointers of objects `a` and `b` (observed).
    Compare { a: usize, b: usize },
    /// Null-check pointer slot `slot` of `obj` (observed).
    CheckNull { obj: usize, slot: u8 },
}

fn step_strategy() -> OneOf<Step> {
    one_of![
        3 => Just(Step::Alloc),
        4 => (0usize..64, 0u8..4, any::<u64>())
            .prop_map(|(obj, word, value)| Step::WriteData { obj, word, value }),
        4 => (0usize..64, 0u8..4).prop_map(|(obj, word)| Step::ReadData { obj, word }),
        3 => (0usize..64, 0u8..4, 0usize..64)
            .prop_map(|(dst, slot, src)| Step::Link { dst, slot, src }),
        4 => (0usize..64, 0u8..4).prop_map(|(obj, slot)| Step::FollowLink { obj, slot }),
        2 => (0usize..64, 0usize..64).prop_map(|(a, b)| Step::Compare { a, b }),
        2 => (0usize..64, 0u8..4).prop_map(|(obj, slot)| Step::CheckNull { obj, slot }),
    ]
}

const DATA_BASE: i64 = 0; // words 0..4
const PTR_BASE: i64 = 32; // slots 0..4

/// Executes the program in one mode and returns the observation trace.
fn execute(steps: &[Step], mode: Mode, policy: CheckPolicy) -> Vec<u64> {
    let mut space = AddressSpace::new(0x5EED ^ mode.label().len() as u64);
    let pool = space.create_pool("equiv", 8 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
    env.set_check_policy(policy);
    let mut objects: Vec<UPtr> = Vec::new();
    let mut trace = Vec::new();

    for step in steps {
        match *step {
            Step::Alloc => {
                let p = env.alloc(site!("eq.alloc", AllocResult), 64).unwrap();
                // Zero the pointer slots so loads are well-defined.
                for s in 0..4 {
                    env.write_ptr(site!("eq.init", AllocResult), p, PTR_BASE + s * 8, UPtr::NULL)
                        .unwrap();
                }
                objects.push(p);
            }
            Step::WriteData { obj, word, value } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                env.write_u64(site!("eq.wd", Param), p, DATA_BASE + i64::from(word) * 8, value)
                    .unwrap();
            }
            Step::ReadData { obj, word } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                let v = env
                    .read_u64(site!("eq.rd", Param), p, DATA_BASE + i64::from(word) * 8)
                    .unwrap();
                trace.push(v);
            }
            Step::Link { dst, slot, src } if !objects.is_empty() => {
                let d = objects[dst % objects.len()];
                let s = objects[src % objects.len()];
                env.write_ptr(site!("eq.link", MemLoad), d, PTR_BASE + i64::from(slot) * 8, s)
                    .unwrap();
            }
            Step::FollowLink { obj, slot } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                let q = env
                    .read_ptr(site!("eq.follow", MemLoad), p, PTR_BASE + i64::from(slot) * 8)
                    .unwrap();
                if env.ptr_is_null(site!("eq.follow-null", StackLocal), q) {
                    trace.push(0);
                } else {
                    let v = env.read_u64(site!("eq.follow-rd", MemLoad), q, 0).unwrap();
                    trace.push(v.wrapping_add(1));
                }
            }
            Step::Compare { a, b } if !objects.is_empty() => {
                let pa = objects[a % objects.len()];
                let pb = objects[b % objects.len()];
                let eq = env.ptr_eq(site!("eq.cmp", Param), pa, pb).unwrap();
                trace.push(u64::from(eq));
            }
            Step::CheckNull { obj, slot } if !objects.is_empty() => {
                let p = objects[obj % objects.len()];
                let q = env
                    .read_ptr(site!("eq.cn", MemLoad), p, PTR_BASE + i64::from(slot) * 8)
                    .unwrap();
                trace.push(u64::from(env.ptr_is_null(site!("eq.cn-null", StackLocal), q)));
            }
            _ => {} // op before any allocation: no-op in every mode
        }
    }

    // Stored-format invariant for the persistent builds: every non-null
    // pointer slot holds a relative (bit-63) value.
    if mode == Mode::Hw || mode == Mode::Sw {
        for p in &objects {
            for s in 0..4 {
                let raw = env.peek_raw(*p, PTR_BASE + s * 8).unwrap();
                assert!(raw == 0 || raw >> 63 == 1, "non-relative pointer at rest in NVM");
            }
        }
    }
    trace
}

props! {
    #![cases(96)]

    /// All four builds observe identical traces on arbitrary programs.
    #[test]
    fn four_builds_observe_identical_traces(steps in collection::vec(step_strategy(), 1..120)) {
        let reference = execute(&steps, Mode::Volatile, CheckPolicy::Inferred);
        for mode in [Mode::Explicit, Mode::Sw, Mode::Hw] {
            let got = execute(&steps, mode, CheckPolicy::Inferred);
            prop_assert_eq!(&got, &reference, "{} diverged", mode.label());
        }
    }

    /// The SW build's check policy never changes observable behaviour —
    /// checks are pure overhead (the paper's "just an optimization" claim
    /// about keeping or converting relative pointers).
    #[test]
    fn check_policy_is_observation_invariant(steps in collection::vec(step_strategy(), 1..80)) {
        let inferred = execute(&steps, Mode::Sw, CheckPolicy::Inferred);
        let always = execute(&steps, Mode::Sw, CheckPolicy::AlwaysCheck);
        let oracle = execute(&steps, Mode::Sw, CheckPolicy::Oracle);
        prop_assert_eq!(&always, &inferred);
        prop_assert_eq!(&oracle, &inferred);
    }
}

// ---- translation-cache equivalence under attachment churn -----------------
//
// The software lookasides (sPOLB/sVALB) must be semantically invisible: a
// run with the caches enabled and one with them disabled must produce the
// same checksums, the same pointer counters, and byte-for-byte the same
// micro-architectural event stream — even while pools detach, re-attach at
// new bases, and bounce through quarantine/release between operation
// batches. Divergence here means a stale cache entry served a translation.

/// Event sink that folds every event into an FNV-1a hash, so two runs'
/// streams can be compared without storing them.
#[derive(Clone, Copy, Debug, Default)]
struct HashSink {
    hash: u64,
    events: u64,
}

impl HashSink {
    fn new() -> Self {
        HashSink { hash: 0xcbf2_9ce4_8422_2325, events: 0 }
    }

    fn mix(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

impl TimingSink for HashSink {
    fn event(&mut self, ev: MemEvent) {
        self.events += 1;
        match ev {
            MemEvent::Exec(n) => {
                self.mix(1);
                self.mix(u64::from(n));
            }
            MemEvent::Load { va, rel_base } => {
                self.mix(2);
                self.mix(va);
                self.mix(u64::from(rel_base));
            }
            MemEvent::Store { va, rel_base } => {
                self.mix(3);
                self.mix(va);
                self.mix(u64::from(rel_base));
            }
            MemEvent::StoreP { va, rs_va2ra, rs_ra2va, rd_ra2va } => {
                self.mix(4);
                self.mix(va);
                self.mix(u64::from(rs_va2ra) | u64::from(rs_ra2va) << 1 | u64::from(rd_ra2va) << 2);
            }
            MemEvent::Branch { pc, taken } => {
                self.mix(5);
                self.mix(pc);
                self.mix(u64::from(taken));
            }
            MemEvent::PolbAccess { pool } => {
                self.mix(6);
                self.mix(u64::from(pool));
            }
            MemEvent::ValbAccess { va } => {
                self.mix(7);
                self.mix(va);
            }
            MemEvent::SwRa2Va { pool } => {
                self.mix(8);
                self.mix(u64::from(pool));
            }
            MemEvent::SwVa2Ra { va } => {
                self.mix(9);
                self.mix(va);
            }
        }
    }
}

/// The persistent-format locator of a descriptor, so a structure can be
/// re-opened after its pool re-attaches at a different base.
fn descriptor_rel(space: &AddressSpace, desc: UPtr) -> RelLoc {
    match desc.kind() {
        PtrKind::Rel(loc) => loc,
        PtrKind::Va(va) => space.va2ra_uncached(va).unwrap(),
        PtrKind::Null => panic!("null descriptor"),
    }
}

/// One round of attachment churn: quarantine/release the main pool through
/// the mutable escape hatch, bounce the scratch pool, then detach the main
/// pool and re-attach it (usually at a new base). Each step bumps the
/// translation epoch; a cache-enabled run must refill rather than serve
/// stale entries.
fn churn<S: TimingSink>(env: &mut ExecEnv<S>, main: PoolId, scratch: PoolId) {
    let space = env.space_mut();
    space.pool_store_mut().quarantine(main, 0);
    space.pool_store_mut().release(main);
    space.detach(scratch).unwrap();
    space.attach(scratch).unwrap();
    space.detach(main).unwrap();
    space.attach(main).unwrap();
}

const CHURN_BATCHES: u64 = 6;
const CHURN_OPS: u64 = 48;

fn churn_key(batch: u64, i: u64) -> u64 {
    (batch << 32) | (i.wrapping_mul(0x9e37_79b9) & 0xffff_ffff)
}

/// Runs one KV index structure under batch/churn interleaving and returns
/// everything an equivalence comparison needs.
fn run_index_churn<I: Index>(mode: Mode, trans_cache: bool) -> (u64, PtrStats, u64, u64) {
    let mut space = AddressSpace::new(0xC0FF);
    let main = space.create_pool("churn-main", 16 << 20).unwrap();
    let scratch = space.create_pool("churn-scratch", 1 << 20).unwrap();
    let mut env = ExecEnv::builder(space)
        .mode(mode)
        .pool(main)
        .translation_cache(trans_cache)
        .sink(HashSink::new())
        .build();
    let mut store: KvStore<I> = KvStore::create(&mut env).unwrap();
    let mut checksum = 0u64;
    for batch in 0..CHURN_BATCHES {
        for i in 0..CHURN_OPS {
            let k = churn_key(batch, i);
            store.set(&mut env, k, k ^ 0x5a5a).unwrap();
        }
        for i in 0..CHURN_OPS {
            // Read this batch's keys and probe the previous batch's (some
            // hits, some misses — both must translate identically).
            let k = churn_key(batch, i);
            checksum = checksum.wrapping_add(store.get(&mut env, k).unwrap().unwrap_or(0));
            let probe = churn_key(batch.wrapping_sub(1), i);
            checksum = checksum.wrapping_add(store.get(&mut env, probe).unwrap().unwrap_or(1));
        }
        let rel = descriptor_rel(env.space(), store.index().descriptor());
        churn(&mut env, main, scratch);
        store = KvStore::open(UPtr::from_rel(rel));
    }
    checksum = checksum.wrapping_add(store.len(&mut env).unwrap());
    let (_, ptr, sink) = env.into_parts();
    (checksum, ptr, sink.hash, sink.events)
}

/// Same interleaving for the linked list (not an `Index`).
fn run_ll_churn(mode: Mode, trans_cache: bool) -> (u64, PtrStats, u64, u64) {
    let mut space = AddressSpace::new(0xC0FF);
    let main = space.create_pool("churn-main", 16 << 20).unwrap();
    let scratch = space.create_pool("churn-scratch", 1 << 20).unwrap();
    let mut env = ExecEnv::builder(space)
        .mode(mode)
        .pool(main)
        .translation_cache(trans_cache)
        .sink(HashSink::new())
        .build();
    let mut list = LinkedList::create(&mut env).unwrap();
    let mut checksum = 0u64;
    for batch in 0..CHURN_BATCHES {
        for i in 0..CHURN_OPS {
            let k = churn_key(batch, i);
            list.push_back(&mut env, k, k ^ 0xa5a5).unwrap();
        }
        checksum = checksum.wrapping_add(list.iter_sum(&mut env).unwrap());
        if batch % 2 == 1 {
            checksum = checksum.wrapping_add(list.pop_front(&mut env).unwrap().unwrap().0);
        }
        let rel = descriptor_rel(env.space(), list.descriptor());
        churn(&mut env, main, scratch);
        list = LinkedList::open(UPtr::from_rel(rel));
    }
    checksum = checksum.wrapping_add(list.len(&mut env).unwrap());
    let (_, ptr, sink) = env.into_parts();
    (checksum, ptr, sink.hash, sink.events)
}

fn assert_cache_invisible(name: &str, runs: [(u64, PtrStats, u64, u64); 2]) {
    let [on, off] = runs;
    assert_eq!(on.0, off.0, "{name}: checksum diverged with translation cache on");
    assert_eq!(on.1, off.1, "{name}: PtrStats diverged with translation cache on");
    assert_eq!(
        (on.2, on.3),
        (off.2, off.3),
        "{name}: event stream diverged with translation cache on"
    );
}

#[test]
fn translation_cache_is_invisible_under_churn_all_structures_sw() {
    assert_cache_invisible(
        "LL",
        [run_ll_churn(Mode::Sw, true), run_ll_churn(Mode::Sw, false)],
    );
    assert_cache_invisible(
        "Hash",
        [
            run_index_churn::<HashMapIndex>(Mode::Sw, true),
            run_index_churn::<HashMapIndex>(Mode::Sw, false),
        ],
    );
    assert_cache_invisible(
        "RB",
        [run_index_churn::<RbTree>(Mode::Sw, true), run_index_churn::<RbTree>(Mode::Sw, false)],
    );
    assert_cache_invisible(
        "Splay",
        [
            run_index_churn::<SplayTree>(Mode::Sw, true),
            run_index_churn::<SplayTree>(Mode::Sw, false),
        ],
    );
    assert_cache_invisible(
        "AVL",
        [run_index_churn::<AvlTree>(Mode::Sw, true), run_index_churn::<AvlTree>(Mode::Sw, false)],
    );
    assert_cache_invisible(
        "SG",
        [
            run_index_churn::<ScapegoatTree>(Mode::Sw, true),
            run_index_churn::<ScapegoatTree>(Mode::Sw, false),
        ],
    );
}

#[test]
fn translation_cache_is_invisible_under_churn_hw_and_explicit() {
    for mode in [Mode::Hw, Mode::Explicit] {
        assert_cache_invisible(
            mode.label(),
            [run_index_churn::<RbTree>(mode, true), run_index_churn::<RbTree>(mode, false)],
        );
        assert_cache_invisible(
            mode.label(),
            [run_ll_churn(mode, true), run_ll_churn(mode, false)],
        );
    }
}
