//! Property-based tests of the memory substrate: the allocator against a
//! shadow model, the sparse page store against a byte map, pointer encoding
//! round-trips, and pool lifecycle sequences.

use utpr_qc::prelude::*;
use std::collections::HashMap;
use utpr_heap::{AddressSpace, PageStore, PoolId, Region, RelLoc};
use utpr_ptr::UPtr;

props! {
    #![cases(64)]

    /// Random alloc/free sequences keep the allocator structurally valid,
    /// never hand out overlapping blocks, and preserve block contents.
    #[test]
    fn allocator_random_ops(ops in collection::vec((any::<u16>(), 1u64..400), 1..300)) {
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, 1 << 20).unwrap();
        let mut live: Vec<(u64, u64, u64)> = Vec::new(); // (payload, size, tag)
        let mut tag = 0u64;
        for (sel, size) in ops {
            if sel % 3 != 0 || live.is_empty() {
                if let Ok(p) = region.alloc(&mut mem, size) {
                    // No overlap with any live allocation.
                    for (q, qs, _) in &live {
                        let disjoint = p + size <= *q || q + qs <= p;
                        prop_assert!(disjoint, "overlap: [{p},{}) vs [{q},{})", p + size, q + qs);
                    }
                    tag += 1;
                    mem.write_u64(p, tag);
                    live.push((p, size, tag));
                }
            } else {
                let idx = (sel as usize) % live.len();
                let (p, _, t) = live.swap_remove(idx);
                prop_assert_eq!(mem.read_u64(p), t, "clobbered content");
                region.free(&mut mem, p).unwrap();
            }
        }
        region.validate(&mem).unwrap();
        // Free everything: the region coalesces back to one block.
        for (p, _, t) in live {
            prop_assert_eq!(mem.read_u64(p), t);
            region.free(&mut mem, p).unwrap();
        }
        prop_assert_eq!(region.validate(&mem).unwrap(), 1);
    }

    /// The sparse page store behaves exactly like a flat byte map.
    #[test]
    fn page_store_matches_byte_map(writes in collection::vec((0u64..100_000, any::<u8>()), 1..200)) {
        let mut store = PageStore::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (off, byte) in &writes {
            store.write(*off, &[*byte]);
            model.insert(*off, *byte);
        }
        for (off, _) in &writes {
            let mut b = [0u8; 1];
            store.read(*off, &mut b);
            prop_assert_eq!(b[0], model[off]);
        }
        // Unwritten neighbours read zero.
        let mut b = [0u8; 1];
        store.read(3_000_000, &mut b);
        prop_assert_eq!(b[0], 0);
    }

    /// The u64/u32 word fast paths (aligned or unaligned but in-page,
    /// memoized last page, page-straddling slow path) agree with the
    /// byte-wise generic path for arbitrary offsets — including offsets
    /// placed right at page boundaries so straddles actually occur.
    #[test]
    fn page_store_word_fast_paths_match_slow_path(
        ops in collection::vec((0u64..8, 0u64..200_000, any::<u64>()), 1..200)
    ) {
        const PAGE: u64 = utpr_heap::pagestore::PAGE_SIZE;
        let mut store = PageStore::new();
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        for (sel, raw_off, val) in ops {
            // Bias half the offsets to hug a page boundary so the
            // straddling path is exercised every run.
            let off = if raw_off % 2 == 0 {
                (raw_off / 2) % 500_000
            } else {
                let page = (raw_off / 16) % 32 + 1;
                page * PAGE - (raw_off % 8) - 1
            };
            match sel {
                0 => {
                    // u64 write via store, byte-wise into the oracle.
                    store.write_u64(off, val);
                    for (i, b) in val.to_le_bytes().iter().enumerate() {
                        oracle.insert(off + i as u64, *b);
                    }
                }
                1 => {
                    // u32 write.
                    store.write_u32(off, val as u32);
                    for (i, b) in (val as u32).to_le_bytes().iter().enumerate() {
                        oracle.insert(off + i as u64, *b);
                    }
                }
                2 => {
                    // Generic byte-slice write: the slow-path oracle writer.
                    let bytes = val.to_le_bytes();
                    store.write(off, &bytes[..5]);
                    for (i, b) in bytes[..5].iter().enumerate() {
                        oracle.insert(off + i as u64, *b);
                    }
                }
                _ => {
                    // Reads: fast-path result must equal the byte oracle.
                    let mut expect8 = [0u8; 8];
                    for (i, e) in expect8.iter_mut().enumerate() {
                        *e = *oracle.get(&(off + i as u64)).unwrap_or(&0);
                    }
                    prop_assert_eq!(
                        store.read_u64(off),
                        u64::from_le_bytes(expect8),
                        "read_u64 at {} (in_page {})", off, off % PAGE
                    );
                    let mut expect4 = [0u8; 4];
                    expect4.copy_from_slice(&expect8[..4]);
                    prop_assert_eq!(store.read_u32(off), u32::from_le_bytes(expect4));
                    prop_assert_eq!(store.read_u8(off), expect8[0]);
                }
            }
        }
        // Final sweep: every oracle byte is visible through both the byte
        // reader and the word reader that covers it.
        for (&off, &b) in &oracle {
            let mut one = [0u8; 1];
            store.read(off, &mut one);
            prop_assert_eq!(one[0], b);
            prop_assert_eq!((store.read_u64(off) & 0xff) as u8, b);
        }
    }

    /// Pointer encodings round-trip for every (pool, offset) pair and never
    /// collide with virtual addresses.
    #[test]
    fn uptr_encoding_roundtrip(pool in 0u32..(1 << 31), offset in any::<u32>(), va in 0u64..(1u64 << 48)) {
        let loc = RelLoc::new(PoolId::new(pool), offset);
        let rel = UPtr::from_rel(loc);
        prop_assert_eq!(rel.as_rel(), Some(loc));
        prop_assert!(rel.raw() >> 63 == 1);
        let vp = UPtr::from_va(utpr_heap::VirtAddr::new(va));
        prop_assert!(vp.raw() >> 63 == 0);
        prop_assert_ne!(rel.raw(), vp.raw());
    }

    /// Any sequence of detach/attach/restart keeps pool contents readable
    /// through relative locations.
    #[test]
    fn pool_lifecycle_preserves_content(events in collection::vec(0u8..3, 1..12)) {
        let mut space = AddressSpace::new(1234);
        let pool = space.create_pool("life", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 64).unwrap();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 0xabcdef).unwrap();
        for e in events {
            match e {
                0 => {
                    let _ = space.detach(pool);
                }
                1 => {
                    let _ = space.attach(pool);
                }
                _ => {
                    space.restart();
                }
            }
        }
        space.open_pool("life").unwrap();
        let va2 = space.ra2va(loc).unwrap();
        prop_assert_eq!(space.read_u64(va2).unwrap(), 0xabcdef);
    }

    /// Smashing one random aligned word of a live allocator region never
    /// panics `Region::open` or `Region::salvage` — damage surfaces as a
    /// typed error (or is survived), and salvage accounting stays inside
    /// the region.
    #[test]
    fn corrupted_allocator_word_never_panics_open_or_salvage(
        allocs in collection::vec(1u64..300, 1..24),
        word in any::<u64>(),
        val in any::<u64>(),
    ) {
        const SIZE: u64 = 1 << 16;
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, SIZE).unwrap();
        for s in allocs {
            let _ = region.alloc(&mut mem, s);
        }
        mem.write_u64((word % (SIZE / 8)) * 8, val);
        // Typed error or success — a panic fails this test.
        let _ = Region::open(&mem);
        let rep = Region::salvage(&mem, SIZE);
        prop_assert!(rep.intact_bytes + rep.lost_bytes <= SIZE);
        for b in &rep.blocks {
            prop_assert!(b.payload + b.size <= SIZE, "salvaged block escapes the region");
        }
    }

    /// pmalloc never returns overlapping objects within a pool, and
    /// translated addresses stay inside the attachment.
    #[test]
    fn pmalloc_objects_disjoint(sizes in collection::vec(1u64..512, 1..64)) {
        let mut space = AddressSpace::new(77);
        let pool = space.create_pool("alloc", 4 << 20).unwrap();
        let att = space.attachment(pool).unwrap();
        let mut spans: Vec<(u32, u64)> = Vec::new();
        for size in sizes {
            let loc = space.pmalloc(pool, size).unwrap();
            for (off, sz) in &spans {
                let disjoint = loc.offset as u64 + size <= u64::from(*off)
                    || u64::from(*off) + sz <= u64::from(loc.offset);
                prop_assert!(disjoint);
            }
            let va = space.ra2va(loc).unwrap();
            prop_assert!(va.raw() >= att.base.raw());
            prop_assert!(va.raw() + size <= att.base.raw() + att.size);
            spans.push((loc.offset, size));
        }
    }
}

/// The media-fault errors round-trip through the workspace facade: the
/// `utpr::Error` wrapper preserves their Display text and exposes the
/// heap error as `source()`.
#[test]
fn media_fault_errors_round_trip_through_the_facade() {
    use std::error::Error as _;

    let heap_err = utpr_heap::HeapError::MediaCorruption { pool: PoolId::new(3), page: 5 };
    let wrapped: utpr::Error = heap_err.clone().into();
    assert_eq!(wrapped.to_string(), heap_err.to_string());
    assert!(wrapped.to_string().contains("media corruption"));
    let src = wrapped.source().expect("facade keeps the heap error as source");
    assert_eq!(src.to_string(), heap_err.to_string());

    let heap_err = utpr_heap::HeapError::BadPoolHeader { reason: "unsupported format version" };
    let wrapped: utpr::Error = heap_err.clone().into();
    assert_eq!(wrapped.to_string(), heap_err.to_string());
    assert!(wrapped.to_string().contains("bad pool header"));
    assert!(wrapped.to_string().contains("unsupported format version"));
    let src = wrapped.source().expect("facade keeps the heap error as source");
    assert_eq!(src.to_string(), heap_err.to_string());
}
