//! Property-based tests of the memory substrate: the allocator against a
//! shadow model, the sparse page store against a byte map, pointer encoding
//! round-trips, and pool lifecycle sequences.

use utpr_qc::prelude::*;
use std::collections::HashMap;
use utpr_heap::{AddressSpace, HeapError, PageStore, PoolId, Region, RelLoc, SharedPool};
use utpr_ptr::UPtr;

props! {
    #![cases(64)]

    /// Random alloc/free sequences keep the allocator structurally valid,
    /// never hand out overlapping blocks, and preserve block contents.
    #[test]
    fn allocator_random_ops(ops in collection::vec((any::<u16>(), 1u64..400), 1..300)) {
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, 1 << 20).unwrap();
        let mut live: Vec<(u64, u64, u64)> = Vec::new(); // (payload, size, tag)
        let mut tag = 0u64;
        for (sel, size) in ops {
            if sel % 3 != 0 || live.is_empty() {
                if let Ok(p) = region.alloc(&mut mem, size) {
                    // No overlap with any live allocation.
                    for (q, qs, _) in &live {
                        let disjoint = p + size <= *q || q + qs <= p;
                        prop_assert!(disjoint, "overlap: [{p},{}) vs [{q},{})", p + size, q + qs);
                    }
                    tag += 1;
                    mem.write_u64(p, tag);
                    live.push((p, size, tag));
                }
            } else {
                let idx = (sel as usize) % live.len();
                let (p, _, t) = live.swap_remove(idx);
                prop_assert_eq!(mem.read_u64(p), t, "clobbered content");
                region.free(&mut mem, p).unwrap();
            }
        }
        region.validate(&mem).unwrap();
        // Free everything: the region coalesces back to one block.
        for (p, _, t) in live {
            prop_assert_eq!(mem.read_u64(p), t);
            region.free(&mut mem, p).unwrap();
        }
        prop_assert_eq!(region.validate(&mem).unwrap(), 1);
    }

    /// The sparse page store behaves exactly like a flat byte map.
    #[test]
    fn page_store_matches_byte_map(writes in collection::vec((0u64..100_000, any::<u8>()), 1..200)) {
        let mut store = PageStore::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (off, byte) in &writes {
            store.write(*off, &[*byte]);
            model.insert(*off, *byte);
        }
        for (off, _) in &writes {
            let mut b = [0u8; 1];
            store.read(*off, &mut b);
            prop_assert_eq!(b[0], model[off]);
        }
        // Unwritten neighbours read zero.
        let mut b = [0u8; 1];
        store.read(3_000_000, &mut b);
        prop_assert_eq!(b[0], 0);
    }

    /// The u64/u32 word fast paths (aligned or unaligned but in-page,
    /// memoized last page, page-straddling slow path) agree with the
    /// byte-wise generic path for arbitrary offsets — including offsets
    /// placed right at page boundaries so straddles actually occur.
    #[test]
    fn page_store_word_fast_paths_match_slow_path(
        ops in collection::vec((0u64..8, 0u64..200_000, any::<u64>()), 1..200)
    ) {
        const PAGE: u64 = utpr_heap::pagestore::PAGE_SIZE;
        let mut store = PageStore::new();
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        for (sel, raw_off, val) in ops {
            // Bias half the offsets to hug a page boundary so the
            // straddling path is exercised every run.
            let off = if raw_off % 2 == 0 {
                (raw_off / 2) % 500_000
            } else {
                let page = (raw_off / 16) % 32 + 1;
                page * PAGE - (raw_off % 8) - 1
            };
            match sel {
                0 => {
                    // u64 write via store, byte-wise into the oracle.
                    store.write_u64(off, val);
                    for (i, b) in val.to_le_bytes().iter().enumerate() {
                        oracle.insert(off + i as u64, *b);
                    }
                }
                1 => {
                    // u32 write.
                    store.write_u32(off, val as u32);
                    for (i, b) in (val as u32).to_le_bytes().iter().enumerate() {
                        oracle.insert(off + i as u64, *b);
                    }
                }
                2 => {
                    // Generic byte-slice write: the slow-path oracle writer.
                    let bytes = val.to_le_bytes();
                    store.write(off, &bytes[..5]);
                    for (i, b) in bytes[..5].iter().enumerate() {
                        oracle.insert(off + i as u64, *b);
                    }
                }
                _ => {
                    // Reads: fast-path result must equal the byte oracle.
                    let mut expect8 = [0u8; 8];
                    for (i, e) in expect8.iter_mut().enumerate() {
                        *e = *oracle.get(&(off + i as u64)).unwrap_or(&0);
                    }
                    prop_assert_eq!(
                        store.read_u64(off),
                        u64::from_le_bytes(expect8),
                        "read_u64 at {} (in_page {})", off, off % PAGE
                    );
                    let mut expect4 = [0u8; 4];
                    expect4.copy_from_slice(&expect8[..4]);
                    prop_assert_eq!(store.read_u32(off), u32::from_le_bytes(expect4));
                    prop_assert_eq!(store.read_u8(off), expect8[0]);
                }
            }
        }
        // Final sweep: every oracle byte is visible through both the byte
        // reader and the word reader that covers it.
        for (&off, &b) in &oracle {
            let mut one = [0u8; 1];
            store.read(off, &mut one);
            prop_assert_eq!(one[0], b);
            prop_assert_eq!((store.read_u64(off) & 0xff) as u8, b);
        }
    }

    /// Pointer encodings round-trip for every (pool, offset) pair and never
    /// collide with virtual addresses.
    #[test]
    fn uptr_encoding_roundtrip(pool in 0u32..(1 << 31), offset in any::<u32>(), va in 0u64..(1u64 << 48)) {
        let loc = RelLoc::new(PoolId::new(pool), offset);
        let rel = UPtr::from_rel(loc);
        prop_assert_eq!(rel.as_rel(), Some(loc));
        prop_assert!(rel.raw() >> 63 == 1);
        let vp = UPtr::from_va(utpr_heap::VirtAddr::new(va));
        prop_assert!(vp.raw() >> 63 == 0);
        prop_assert_ne!(rel.raw(), vp.raw());
    }

    /// Any sequence of detach/attach/restart keeps pool contents readable
    /// through relative locations.
    #[test]
    fn pool_lifecycle_preserves_content(events in collection::vec(0u8..3, 1..12)) {
        let mut space = AddressSpace::new(1234);
        let pool = space.create_pool("life", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 64).unwrap();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 0xabcdef).unwrap();
        for e in events {
            match e {
                0 => {
                    let _ = space.detach(pool);
                }
                1 => {
                    let _ = space.attach(pool);
                }
                _ => {
                    space.restart();
                }
            }
        }
        space.open_pool("life").unwrap();
        let va2 = space.ra2va(loc).unwrap();
        prop_assert_eq!(space.read_u64(va2).unwrap(), 0xabcdef);
    }

    /// Smashing one random aligned word of a live allocator region never
    /// panics `Region::open` or `Region::salvage` — damage surfaces as a
    /// typed error (or is survived), and salvage accounting stays inside
    /// the region.
    #[test]
    fn corrupted_allocator_word_never_panics_open_or_salvage(
        allocs in collection::vec(1u64..300, 1..24),
        word in any::<u64>(),
        val in any::<u64>(),
    ) {
        const SIZE: u64 = 1 << 16;
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, SIZE).unwrap();
        for s in allocs {
            let _ = region.alloc(&mut mem, s);
        }
        mem.write_u64((word % (SIZE / 8)) * 8, val);
        // Typed error or success — a panic fails this test.
        let _ = Region::open(&mem);
        let rep = Region::salvage(&mem, SIZE);
        prop_assert!(rep.intact_bytes + rep.lost_bytes <= SIZE);
        for b in &rep.blocks {
            prop_assert!(b.payload + b.size <= SIZE, "salvaged block escapes the region");
        }
    }

    /// pmalloc never returns overlapping objects within a pool, and
    /// translated addresses stay inside the attachment.
    #[test]
    fn pmalloc_objects_disjoint(sizes in collection::vec(1u64..512, 1..64)) {
        let mut space = AddressSpace::new(77);
        let pool = space.create_pool("alloc", 4 << 20).unwrap();
        let att = space.attachment(pool).unwrap();
        let mut spans: Vec<(u32, u64)> = Vec::new();
        for size in sizes {
            let loc = space.pmalloc(pool, size).unwrap();
            for (off, sz) in &spans {
                let disjoint = loc.offset as u64 + size <= u64::from(*off)
                    || u64::from(*off) + sz <= u64::from(loc.offset);
                prop_assert!(disjoint);
            }
            let va = space.ra2va(loc).unwrap();
            prop_assert!(va.raw() >= att.base.raw());
            prop_assert!(va.raw() + size <= att.base.raw() + att.size);
            spans.push((loc.offset, size));
        }
    }
}

// ---- translation-cache transparency at the AddressSpace level -------------
//
// Random op sequences — allocation, reads, writes, translations of good and
// bad addresses, detach/re-attach, quarantine probes, full restarts — must
// observe exactly the same values *and errors* whether the software
// lookasides are enabled or disabled.

/// One AddressSpace operation; indices are reduced modulo live state.
#[derive(Clone, Copy, Debug)]
enum SpaceOp {
    Pmalloc { pool: u8, size: u16 },
    Pfree { idx: u8 },
    ReadU64 { idx: u8 },
    WriteU64 { idx: u8, value: u64 },
    Va2RaProbe { idx: u8, delta: u32 },
    Ra2VaProbe { idx: u8, off_delta: u32 },
    BadPool { raw: u16, off: u32 },
    DetachAttach { pool: u8 },
    QuarantineProbe { pool: u8, idx: u8 },
    Restart,
}

fn space_op_strategy() -> OneOf<SpaceOp> {
    one_of![
        4 => (any::<u8>(), 8u16..256).prop_map(|(pool, size)| SpaceOp::Pmalloc { pool, size }),
        1 => any::<u8>().prop_map(|idx| SpaceOp::Pfree { idx }),
        4 => any::<u8>().prop_map(|idx| SpaceOp::ReadU64 { idx }),
        4 => (any::<u8>(), any::<u64>()).prop_map(|(idx, value)| SpaceOp::WriteU64 { idx, value }),
        3 => (any::<u8>(), 0u32..(1 << 21)).prop_map(|(idx, delta)| SpaceOp::Va2RaProbe { idx, delta }),
        3 => (any::<u8>(), 0u32..(1 << 21)).prop_map(|(idx, off_delta)| SpaceOp::Ra2VaProbe { idx, off_delta }),
        1 => (any::<u16>(), any::<u32>()).prop_map(|(raw, off)| SpaceOp::BadPool { raw, off }),
        2 => any::<u8>().prop_map(|pool| SpaceOp::DetachAttach { pool }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(pool, idx)| SpaceOp::QuarantineProbe { pool, idx }),
        1 => Just(SpaceOp::Restart),
    ]
}

/// FNV-1a of a Debug rendering — errors carry addresses, which are
/// deterministic for a fixed layout seed and op sequence.
fn obs<T: std::fmt::Debug>(v: &T) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{v:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Executes the sequence and returns the observation trace.
fn run_space_ops(ops: &[SpaceOp], trans_cache: bool) -> Vec<u64> {
    const POOLS: usize = 3;
    let mut space = AddressSpace::new(0xFACE);
    space.set_translation_cache(trans_cache);
    let ids: Vec<PoolId> =
        (0..POOLS).map(|i| space.create_pool(&format!("p{i}"), 1 << 20).unwrap()).collect();
    let mut locs: Vec<RelLoc> = Vec::new();
    let mut trace = Vec::new();
    for op in ops {
        match *op {
            SpaceOp::Pmalloc { pool, size } => {
                let r = space.pmalloc(ids[pool as usize % POOLS], u64::from(size));
                if let Ok(loc) = r {
                    locs.push(loc);
                }
                trace.push(obs(&r));
            }
            SpaceOp::Pfree { idx } if !locs.is_empty() => {
                let loc = locs.swap_remove(idx as usize % locs.len());
                trace.push(obs(&space.pfree(loc)));
            }
            SpaceOp::ReadU64 { idx } if !locs.is_empty() => {
                let loc = locs[idx as usize % locs.len()];
                let r = space.ra2va(loc).and_then(|va| space.read_u64(va));
                trace.push(obs(&r));
            }
            SpaceOp::WriteU64 { idx, value } if !locs.is_empty() => {
                let loc = locs[idx as usize % locs.len()];
                let r = space.ra2va(loc).and_then(|va| space.write_u64(va, value));
                trace.push(obs(&r));
            }
            SpaceOp::Va2RaProbe { idx, delta } if !locs.is_empty() => {
                let loc = locs[idx as usize % locs.len()];
                // Probe around a live object: in-pool, out-of-pool, and
                // not-in-any-pool addresses all arise.
                if let Ok(va) = space.ra2va(loc) {
                    trace.push(obs(&space.va2ra(va.add(u64::from(delta)))));
                }
            }
            SpaceOp::Ra2VaProbe { idx, off_delta } if !locs.is_empty() => {
                let loc = locs[idx as usize % locs.len()];
                trace.push(obs(&space.ra2va(loc.add(off_delta))));
            }
            SpaceOp::BadPool { raw, off } => {
                let loc = RelLoc::new(PoolId::new(u32::from(raw) + 7), off);
                trace.push(obs(&space.ra2va(loc)));
            }
            SpaceOp::DetachAttach { pool } => {
                let id = ids[pool as usize % POOLS];
                trace.push(obs(&space.detach(id)));
                trace.push(obs(&space.attach(id)));
            }
            SpaceOp::QuarantineProbe { pool, idx } if !locs.is_empty() => {
                let id = ids[pool as usize % POOLS];
                let loc = locs[idx as usize % locs.len()];
                space.pool_store_mut().quarantine(id, 0);
                // Reads through a quarantined pool fault identically with
                // the cache on or off (translation is not the gate).
                let r = space.ra2va(loc).and_then(|va| space.read_u64(va));
                trace.push(obs(&r));
                space.pool_store_mut().release(id);
            }
            SpaceOp::Restart => {
                space.restart();
                for id in &ids {
                    trace.push(obs(&space.attach(*id)));
                }
            }
            _ => {}
        }
    }
    trace
}

props! {
    #![cases(96)]

    /// The lookasides never change what any operation returns — values and
    /// errors — under arbitrary churn.
    #[test]
    fn translation_caches_are_transparent(ops in collection::vec(space_op_strategy(), 1..80)) {
        let cached = run_space_ops(&ops, true);
        let plain = run_space_ops(&ops, false);
        prop_assert_eq!(&cached, &plain);
    }
}

// ---- twin-space equivalence of the sharded heap ---------------------------
//
// The multicore tentpole's correctness oracle: the same seeded interleaving
// of per-thread op scripts, executed once over N spaces sharing one
// `SharedPool` (per-thread arenas, slab-bound leases) and once over a plain
// single-threaded `AddressSpace`, must observe identical values and
// identical error identities. Offsets and virtual addresses legitimately
// differ between the two substrates (different allocators, different
// bases), so observations are handle-indexed: reads compare the *values*
// stored through each handle, and errors compare by variant
// (`std::mem::discriminant`), which is exactly the part of an error that is
// independent of layout.

/// One per-thread heap operation; indices are reduced modulo live handles.
#[derive(Clone, Copy, Debug)]
enum TwinOp {
    Alloc { size: u16 },
    Write { idx: u8, value: u64 },
    Read { idx: u8 },
    Free { idx: u8 },
    /// Free of an odd (hence never-allocated) offset: `BadFree` on both
    /// substrates regardless of layout.
    BadFree { off: u32 },
    /// Translation far past the end of the pool.
    OobTranslate,
}

fn twin_op_strategy() -> OneOf<TwinOp> {
    one_of![
        4 => (8u16..384).prop_map(|size| TwinOp::Alloc { size }),
        4 => (any::<u8>(), any::<u64>()).prop_map(|(idx, value)| TwinOp::Write { idx, value }),
        4 => any::<u8>().prop_map(|idx| TwinOp::Read { idx }),
        2 => any::<u8>().prop_map(|idx| TwinOp::Free { idx }),
        1 => any::<u32>().prop_map(|off| TwinOp::BadFree { off }),
        1 => Just(TwinOp::OobTranslate),
    ]
}

type TwinTrace = Vec<Result<u64, std::mem::Discriminant<HeapError>>>;

/// Executes one step of a logical thread's script against `space`,
/// appending a layout-independent observation to `trace`.
fn twin_step(
    op: TwinOp,
    pool: PoolId,
    space: &mut AddressSpace,
    locs: &mut Vec<RelLoc>,
    trace: &mut TwinTrace,
) {
    use std::mem::discriminant;
    let entry = match op {
        TwinOp::Alloc { size } => match space.pmalloc(pool, u64::from(size)) {
            Ok(loc) => {
                // Stamp the payload immediately: a fresh block may hold
                // stale free-list words, which *are* layout-dependent.
                let stamp = ((locs.len() as u64) << 32) | u64::from(size);
                let va = space.ra2va(loc).unwrap();
                space.write_u64(va, stamp).unwrap();
                locs.push(loc);
                Ok(stamp)
            }
            Err(e) => Err(discriminant(&e)),
        },
        TwinOp::Write { idx, value } if !locs.is_empty() => {
            let loc = locs[idx as usize % locs.len()];
            space
                .ra2va(loc)
                .and_then(|va| space.write_u64(va, value))
                .map(|()| value)
                .map_err(|e| discriminant(&e))
        }
        TwinOp::Read { idx } if !locs.is_empty() => {
            let loc = locs[idx as usize % locs.len()];
            space.ra2va(loc).and_then(|va| space.read_u64(va)).map_err(|e| discriminant(&e))
        }
        TwinOp::Free { idx } if !locs.is_empty() => {
            let loc = locs.swap_remove(idx as usize % locs.len());
            space.pfree(loc).map(|()| 1).map_err(|e| discriminant(&e))
        }
        TwinOp::BadFree { off } => {
            space.pfree(RelLoc::new(pool, off | 1)).map(|()| 2).map_err(|e| discriminant(&e))
        }
        TwinOp::OobTranslate => {
            space.ra2va(RelLoc::new(pool, u32::MAX)).map(|_| 3).map_err(|e| discriminant(&e))
        }
        // Handle-indexed op with no live handles: observe a fixed token so
        // both substrates stay in lockstep.
        _ => Ok(0),
    };
    trace.push(entry);
}

/// The seeded interleaving through N spaces over one `SharedPool`, each
/// logical thread with its own slab-bound arena.
fn run_twin_sharded(scripts: &[Vec<TwinOp>], order: &[u32]) -> TwinTrace {
    let threads = scripts.len();
    let sp = SharedPool::create("twin", 8 << 20, 4).unwrap();
    let mut spaces = Vec::new();
    let mut pools = Vec::new();
    for t in 0..threads {
        let mut s = AddressSpace::new(0x7717 + t as u64);
        let pool = s.adopt_shared(&sp).unwrap();
        let slab = sp.carve_slab(256 << 10).unwrap();
        s.bind_arena_slab(pool, slab).unwrap();
        spaces.push(s);
        pools.push(pool);
    }
    let mut locs: Vec<Vec<RelLoc>> = vec![Vec::new(); threads];
    let mut trace = TwinTrace::new();
    for (t, j) in utpr_qc::sched::steps(order) {
        let t = t as usize;
        twin_step(scripts[t][j as usize], pools[t], &mut spaces[t], &mut locs[t], &mut trace);
    }
    trace
}

/// The identical interleaving through one plain single-threaded space:
/// logical threads keep separate handle lists but share the space.
fn run_twin_reference(scripts: &[Vec<TwinOp>], order: &[u32]) -> TwinTrace {
    let threads = scripts.len();
    let mut space = AddressSpace::new(0x7717);
    let pool = space.create_pool("twin-ref", 8 << 20).unwrap();
    let mut locs: Vec<Vec<RelLoc>> = vec![Vec::new(); threads];
    let mut trace = TwinTrace::new();
    for (t, j) in utpr_qc::sched::steps(order) {
        let t = t as usize;
        twin_step(scripts[t][j as usize], pool, &mut space, &mut locs[t], &mut trace);
    }
    trace
}

props! {
    #![cases(48)]

    /// Three per-thread scripts under a seeded interleaving: the sharded
    /// heap and the single-threaded reference return the same values and
    /// the same error identities at every step.
    #[test]
    fn sharded_heap_matches_single_threaded_reference(
        s0 in collection::vec(twin_op_strategy(), 1..40),
        s1 in collection::vec(twin_op_strategy(), 1..40),
        s2 in collection::vec(twin_op_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let scripts = vec![s0, s1, s2];
        let counts: Vec<u64> = scripts.iter().map(|s| s.len() as u64).collect();
        let order =
            utpr_qc::sched::schedule(utpr_qc::sched::Policy::Seeded(seed), &counts);
        let sharded = run_twin_sharded(&scripts, &order);
        let reference = run_twin_reference(&scripts, &order);
        prop_assert_eq!(&sharded, &reference);
    }
}

/// Sanity: the twin property exercises the per-thread arena path for real —
/// a sustained allocation run drains leases and refills them from the slab.
#[test]
fn sharded_twin_runs_refill_their_arenas() {
    let sp = SharedPool::create("twin-vac", 8 << 20, 4).unwrap();
    let mut space = AddressSpace::new(1);
    let pool = space.adopt_shared(&sp).unwrap();
    let slab = sp.carve_slab(512 << 10).unwrap();
    space.bind_arena_slab(pool, slab).unwrap();
    for _ in 0..200 {
        space.pmalloc(pool, 384).unwrap();
    }
    assert!(space.arena_refills(pool) > 1, "lease never refilled: arena layer is vacuous");
    assert!(sp.refills() > 1, "shared pool saw no refills: {}", sp.refills());
    assert_eq!(sp.slab_overflows(), 0, "slab sized to hold the whole run");
}

/// Sanity: the property above is not vacuous — a cached run of a
/// read-heavy sequence actually serves translations from the lookasides.
#[test]
fn cached_runs_actually_hit_the_lookasides() {
    let mut space = AddressSpace::new(0xFACE);
    let pool = space.create_pool("hit", 1 << 20).unwrap();
    let loc = space.pmalloc(pool, 64).unwrap();
    space.reset_trans_stats();
    for _ in 0..100 {
        let va = space.ra2va(loc).unwrap();
        let _ = space.read_u64(va).unwrap();
    }
    let s = space.trans_stats();
    assert!(s.spolb_hits >= 99, "sPOLB barely hit: {s:?}");
    assert!(s.svalb_hits >= 99, "sVALB barely hit: {s:?}");
}

/// The media-fault errors round-trip through the workspace facade: the
/// `utpr::Error` wrapper preserves their Display text and exposes the
/// heap error as `source()`.
#[test]
fn media_fault_errors_round_trip_through_the_facade() {
    use std::error::Error as _;

    let heap_err = utpr_heap::HeapError::MediaCorruption { pool: PoolId::new(3), page: 5 };
    let wrapped: utpr::Error = heap_err.clone().into();
    assert_eq!(wrapped.to_string(), heap_err.to_string());
    assert!(wrapped.to_string().contains("media corruption"));
    let src = wrapped.source().expect("facade keeps the heap error as source");
    assert_eq!(src.to_string(), heap_err.to_string());

    let heap_err = utpr_heap::HeapError::BadPoolHeader { reason: "unsupported format version" };
    let wrapped: utpr::Error = heap_err.clone().into();
    assert_eq!(wrapped.to_string(), heap_err.to_string());
    assert!(wrapped.to_string().contains("bad pool header"));
    assert!(wrapped.to_string().contains("unsupported format version"));
    let src = wrapped.source().expect("facade keeps the heap error as source");
    assert_eq!(src.to_string(), heap_err.to_string());
}
