//! Compiler-path integration: the IR kernels executed through the
//! interpreter (with the Fig. 4 semantics and dynamic-check accounting)
//! must agree with native Rust oracles, and the inference must keep the
//! residual-check fraction in the paper's neighbourhood (~42%).

use utpr_qc::prelude::*;
use utpr_cc::analysis::analyze_module;
use utpr_cc::interp::{Interp, Val};
use utpr_cc::kernels;
use utpr_heap::{AddressSpace, PoolId};
use utpr_ptr::UPtr;

fn with_pool(seed: u64) -> (AddressSpace, PoolId) {
    let mut s = AddressSpace::new(seed);
    let p = s.create_pool("cc-int", 8 << 20).unwrap();
    (s, p)
}

props! {
    #![cases(48)]

    /// list_build_and_sum(n) == n(n+1)/2 for arbitrary n.
    #[test]
    fn list_sum_matches_closed_form(n in 0i64..300) {
        let m = kernels::module();
        let (mut s, pool) = with_pool(5);
        let mut i = Interp::new(&mut s, pool, &m);
        let out = i.run("list_build_and_sum", vec![Val::Int(n)]).unwrap();
        prop_assert_eq!(out, Some(Val::Int(n * (n + 1) / 2)));
    }

    /// BST insert/contains agrees with a BTreeSet oracle on random keys.
    #[test]
    fn bst_matches_btreeset(keys in collection::vec(0i64..1000, 1..80)) {
        let m = kernels::module();
        let (mut s, pool) = with_pool(6);
        let slot = s.pmalloc(pool, 8).unwrap();
        let slot_ptr = Val::Ptr(UPtr::from_rel(slot));
        let mut interp = Interp::new(&mut s, pool, &m);
        let mut oracle = std::collections::BTreeSet::new();
        for k in &keys {
            if oracle.insert(*k) {
                interp.run("bst_insert", vec![slot_ptr, Val::Int(*k)]).unwrap();
            }
        }
        for probe in 0i64..1000 {
            let expect = i64::from(oracle.contains(&probe));
            let got = interp.run("bst_contains", vec![slot_ptr, Val::Int(probe)]).unwrap();
            prop_assert_eq!(got, Some(Val::Int(expect)), "probe {}", probe);
        }
    }

    /// Hash put/get agrees with a HashMap oracle (last write wins via
    /// prepend-and-first-match).
    #[test]
    fn hash_matches_hashmap(pairs in collection::vec((0i64..64, any::<i32>()), 1..60)) {
        let m = kernels::module();
        let (mut s, pool) = with_pool(7);
        let table = s.pmalloc(pool, 64).unwrap();
        let tp = Val::Ptr(UPtr::from_rel(table));
        let mut interp = Interp::new(&mut s, pool, &m);
        let mut oracle = std::collections::HashMap::new();
        for (k, v) in &pairs {
            oracle.insert(*k, i64::from(*v));
            interp
                .run("hash_put", vec![tp, Val::Int(7), Val::Int(*k), Val::Int(i64::from(*v))])
                .unwrap();
        }
        for (k, v) in &oracle {
            let got = interp.run("hash_get", vec![tp, Val::Int(7), Val::Int(*k)]).unwrap();
            prop_assert_eq!(got, Some(Val::Int(*v)));
        }
    }
}

/// The residual-check fraction lands near the paper's measured ~42%.
#[test]
fn inference_leaves_paper_like_residual_checks() {
    let m = kernels::module();
    let report = analyze_module(&m);
    let static_fraction = report.static_check_fraction();
    assert!(
        static_fraction > 0.25 && static_fraction < 0.75,
        "static residual fraction {static_fraction}"
    );

    // Dynamic fraction over a realistic op mix.
    let (mut s, pool) = with_pool(9);
    let mut interp = Interp::new(&mut s, pool, &m);
    interp.run("list_build_and_sum", vec![Val::Int(150)]).unwrap();
    let f = interp.stats().dynamic_check_fraction();
    assert!(f > 0.2 && f < 0.8, "dynamic residual fraction {f}");
}

/// The provenance→resolution mapping used by the data-structure sites is
/// consistent with the real dataflow analysis: alloc-result dereferences
/// resolve, parameter/loaded-pointer dereferences do not.
#[test]
fn provenance_mapping_consistent_with_dataflow() {
    use utpr_cc::ir::{FnBuilder, Operand::*};
    use utpr_ptr::Provenance;

    // Parameter deref.
    let mut b = FnBuilder::new("p", 1);
    let v = b.fresh();
    b.load(v, Reg(b.param(0)), 0);
    b.ret(Some(Reg(v)));
    let a = utpr_cc::analysis::analyze_function(&b.finish());
    assert_eq!(
        a.decisions.values().next().unwrap().resolved(),
        Provenance::Param.is_statically_resolved()
    );

    // Alloc-result deref.
    let mut b = FnBuilder::new("a", 0);
    let p = b.fresh();
    b.pmalloc(p, Imm(32));
    b.store(Reg(p), 0, Imm(1));
    b.ret(None);
    let a = utpr_cc::analysis::analyze_function(&b.finish());
    assert_eq!(
        a.decisions.values().next().unwrap().resolved(),
        Provenance::AllocResult.is_statically_resolved()
    );

    // Loaded-pointer deref.
    let mut b = FnBuilder::new("l", 0);
    let p = b.fresh();
    b.pmalloc(p, Imm(32));
    let q = b.fresh();
    b.load_ptr(q, Reg(p), 0);
    let v = b.fresh();
    b.load(v, Reg(q), 0);
    b.ret(Some(Reg(v)));
    let a = utpr_cc::analysis::analyze_function(&b.finish());
    let deref_of_loaded = a
        .decisions
        .iter()
        .last()
        .map(|(_, d)| d.resolved())
        .unwrap();
    assert_eq!(deref_of_loaded, Provenance::MemLoad.is_statically_resolved());
}

/// IR programs keep NVM-resident pointers in relative format (the paper's
/// stored-format soundness criterion, via the interpreter path).
#[test]
fn interpreter_stores_relative_pointers_in_nvm() {
    let m = kernels::module();
    let (mut s, pool) = with_pool(11);
    let slot = s.pmalloc(pool, 8).unwrap();
    let slot_ptr = Val::Ptr(UPtr::from_rel(slot));
    let mut interp = Interp::new(&mut s, pool, &m);
    for k in [5i64, 3, 8, 1] {
        interp.run("bst_insert", vec![slot_ptr, Val::Int(k)]).unwrap();
    }
    drop(interp);
    // Walk raw memory from the slot: all stored pointers must be relative.
    fn walk(s: &AddressSpace, node_bits: u64, count: &mut u32) {
        if node_bits == 0 {
            return;
        }
        assert_ne!(node_bits >> 63, 0, "stored BST pointer not relative");
        *count += 1;
        let p = UPtr::from_raw(node_bits);
        let va = s.ra2va(p.as_rel().unwrap()).unwrap();
        let left = s.read_u64(va.add(8)).unwrap();
        let right = s.read_u64(va.add(16)).unwrap();
        walk(s, left, count);
        walk(s, right, count);
    }
    let root_bits = s.read_u64(s.ra2va(slot).unwrap()).unwrap();
    let mut count = 0;
    walk(&s, root_bits, &mut count);
    assert_eq!(count, 4);
}
