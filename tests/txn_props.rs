//! Property tests for the persistent transaction layer: arbitrary
//! interleavings of transactional updates, commits, aborts, and crashes
//! must always leave the pool in a state some prefix of committed
//! transactions explains.

use utpr_qc::prelude::*;
use utpr_heap::{AddressSpace, PoolId, RelLoc, UndoLog};

const WORDS: usize = 8;

#[derive(Clone, Copy, Debug)]
enum TxnStep {
    /// Write `value` to word `slot` inside the open transaction.
    Write { slot: usize, value: u64 },
    /// Commit the open transaction.
    Commit,
    /// Abort the open transaction.
    Abort,
    /// Crash: restart the space and run recovery.
    Crash,
}

fn step_strategy() -> OneOf<TxnStep> {
    one_of![
        6 => (0usize..WORDS, any::<u64>()).prop_map(|(slot, value)| TxnStep::Write { slot, value }),
        2 => Just(TxnStep::Commit),
        1 => Just(TxnStep::Abort),
        1 => Just(TxnStep::Crash),
    ]
}

props! {
    #![cases(128)]

    /// After every step sequence, pool contents equal the model built from
    /// exactly the committed transactions.
    #[test]
    fn pool_state_reflects_committed_transactions(steps in collection::vec(step_strategy(), 1..60)) {
        let mut space = AddressSpace::new(0x7a7a);
        let pool: PoolId = space.create_pool("props", 1 << 20).unwrap();
        let base = space.pmalloc(pool, (WORDS * 8) as u64).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 256).unwrap();

        // The durable model (committed state) and the in-flight overlay.
        let mut committed = [0u64; WORDS];

        let write_word = |space: &mut AddressSpace, slot: usize, v: u64| {
            let loc = RelLoc::new(pool, base.offset + (slot * 8) as u32);
            let va = space.ra2va(loc).unwrap();
            space.write_u64(va, v).unwrap();
        };

        log.begin(&mut space).unwrap();
        let mut pending: Option<[u64; WORDS]> = Some(committed);

        for step in steps {
            match step {
                TxnStep::Write { slot, value } => {
                    if pending.is_none() {
                        log.begin(&mut space).unwrap();
                        pending = Some(committed);
                    }
                    let loc = RelLoc::new(pool, base.offset + (slot * 8) as u32);
                    log.log_word(&mut space, loc).unwrap();
                    write_word(&mut space, slot, value);
                    pending.as_mut().unwrap()[slot] = value;
                }
                TxnStep::Commit => {
                    if let Some(p) = pending.take() {
                        log.commit(&mut space).unwrap();
                        committed = p;
                    }
                }
                TxnStep::Abort => {
                    if pending.take().is_some() {
                        log.abort(&mut space).unwrap();
                    }
                }
                TxnStep::Crash => {
                    pending = None;
                    space.restart();
                    space.open_pool("props").unwrap();
                    UndoLog::recover(&mut space, pool).unwrap();
                }
            }
            // Invariant: words outside an open transaction equal the model.
            if pending.is_none() {
                for (slot, expect) in committed.iter().enumerate() {
                    let loc = RelLoc::new(pool, base.offset + (slot * 8) as u32);
                    let va = space.ra2va(loc).unwrap();
                    prop_assert_eq!(space.read_u64(va).unwrap(), *expect, "slot {}", slot);
                }
            }
        }

        // Final resolution: abort anything still open, then check the model.
        if pending.is_some() {
            log.abort(&mut space).unwrap();
        }
        for (slot, expect) in committed.iter().enumerate() {
            let loc = RelLoc::new(pool, base.offset + (slot * 8) as u32);
            let va = space.ra2va(loc).unwrap();
            prop_assert_eq!(space.read_u64(va).unwrap(), *expect, "final slot {}", slot);
        }
    }
}

/// B+ scan vs a BTreeMap range oracle on arbitrary key sets.
mod bplus_scan {
    use utpr_qc::prelude::*;
    use std::collections::BTreeMap;
    use utpr_ds::{BPlusTree, IndexCore, IndexOps};
    use utpr_heap::AddressSpace;
    use utpr_ptr::{ExecEnv, Mode};

    props! {
        #![cases(64)]

        #[test]
        fn scan_matches_btreemap_range(
            keys in collection::btree_set(0u64..5_000, 1..300),
            start in 0u64..5_000,
            limit in 1usize..40,
        ) {
            let mut space = AddressSpace::new(3);
            let pool = space.create_pool("scan", 16 << 20).unwrap();
            let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
            let mut t = BPlusTree::create(&mut env).unwrap();
            let mut model = BTreeMap::new();
            for k in &keys {
                t.insert(&mut env, *k, k * 3).unwrap();
                model.insert(*k, k * 3);
            }
            let got = t.scan(&mut env, start, limit).unwrap();
            let expect: Vec<(u64, u64)> =
                model.range(start..).take(limit).map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
