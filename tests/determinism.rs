//! Determinism guarantees: identical configurations produce bit-identical
//! results and cycle counts — the property that makes every figure in
//! EXPERIMENTS.md reproducible on any machine.

use utpr_kv::harness::{run_benchmark, Benchmark};
use utpr_kv::workload::WorkloadSpec;
use utpr_kv::ycsb::{generate_preset, Preset};
use utpr_kv::KvStore;
use utpr_ds::{BPlusTree, RbTree};
use utpr_heap::AddressSpace;
use utpr_ptr::{ExecEnv, Mode};
use utpr_sim::SimConfig;

fn spec() -> WorkloadSpec {
    WorkloadSpec { records: 300, operations: 1_200, read_fraction: 0.95, seed: 77 }
}

#[test]
fn identical_runs_produce_identical_cycles() {
    for mode in Mode::ALL {
        let a = run_benchmark(Benchmark::Rb, mode, SimConfig::table_iv(), &spec()).unwrap();
        let b = run_benchmark(Benchmark::Rb, mode, SimConfig::table_iv(), &spec()).unwrap();
        assert_eq!(a.cycles, b.cycles, "{} cycles differ", mode.label());
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.sim.branch_mispredicts, b.sim.branch_mispredicts);
        assert_eq!(a.ptr, b.ptr);
    }
}

#[test]
fn workload_generation_is_seed_deterministic() {
    let w1 = utpr_kv::generate(&spec());
    let w2 = utpr_kv::generate(&spec());
    assert_eq!(w1.load_keys, w2.load_keys);
    assert_eq!(w1.ops, w2.ops);
    // A different seed changes the stream.
    let mut other = spec();
    other.seed = 78;
    let w3 = utpr_kv::generate(&other);
    assert_ne!(w1.ops, w3.ops);
}

/// Soundness extends to the YCSB preset mixes: every build computes the
/// same summary for update-heavy and read-latest workloads, on both a
/// binary tree and the wide-node B+ tree.
#[test]
fn preset_workloads_agree_across_modes_and_structures() {
    for preset in [Preset::A, Preset::D] {
        let w = generate_preset(preset, 250, 1_000, 5);
        let mut summaries = Vec::new();
        for mode in Mode::ALL {
            // RB
            let mut space = AddressSpace::new(7);
            let pool = space.create_pool("det", 16 << 20).unwrap();
            let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
            let mut store: KvStore<RbTree> = KvStore::create(&mut env).unwrap();
            store.load(&mut env, &w).unwrap();
            let rb = store.run(&mut env, &w).unwrap();
            // B+
            let mut space = AddressSpace::new(7);
            let pool = space.create_pool("det", 16 << 20).unwrap();
            let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
            let mut store: KvStore<BPlusTree> = KvStore::create(&mut env).unwrap();
            store.load(&mut env, &w).unwrap();
            let bp = store.run(&mut env, &w).unwrap();
            assert_eq!(rb, bp, "structures disagree in {} on preset {}", mode.label(), preset.name());
            summaries.push(rb);
        }
        assert!(
            summaries.windows(2).all(|x| x[0] == x[1]),
            "modes disagree on preset {}",
            preset.name()
        );
    }
}
